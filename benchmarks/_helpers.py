"""Shared benchmark helpers.

Every benchmark regenerates one of the paper's evaluation artifacts
(Table 1 rows, Figure 1, or a theorem-derived figure), prints the
rows/series it measured, and asserts the paper's *shape* claim (who
wins, what the growth looks like).  Run with::

    pytest benchmarks/ --benchmark-only -s

to see the tables.  Timing itself is secondary — the simulator's
synchronous rounds are the paper's metric — so expensive pipelines are
benchmarked with ``pedantic`` single runs.
"""

from __future__ import annotations


def run_once(benchmark, fn):
    """Benchmark ``fn`` with a single measured execution and return its
    result (the paper's metric is rounds, not wall-clock; one run is
    enough for timing context)."""

    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
