"""Experiment ABL — ablations over the design choices DESIGN.md calls out.

* ABL-a: the MIS black box — plain Luby vs the [BEPS16]-style
  NMIS+Luby composite.
* ABL-b: matching formulation — Algorithm 2 on L(G) vs the footnote-5
  weight-group formulation directly on G.
* ABL-c: the big-bucket base β in the Appendix B.1 weighted pipeline.
* ABL-d: the ε knob of the (1+ε) algorithm — approximation vs rounds.
"""

from __future__ import annotations

from repro.experiments.bench import experiment_bench

test_ablation = experiment_bench("ablation")
