"""Experiment ABL — ablations over the design choices DESIGN.md calls out.

* ABL-a: the MIS black box (Theorem 2.3 parameterizes Algorithm 2 by
  MIS(G)) — plain Luby vs. the [BEPS16]-style NMIS+Luby composite.
* ABL-b: matching formulation — Algorithm 2 on L(G) (Thm 2.10) vs. the
  footnote-5 weight-group formulation directly on G.
* ABL-c: the big-bucket base β in the Appendix B.1 weighted pipeline.
* ABL-d: the ε knob of the (1+ε) algorithm — approximation vs rounds.
"""

from __future__ import annotations

from repro.analysis import approximation_ratio, render_table, summarize
from repro.core import (
    fast_matching_weighted_2eps,
    local_matching_1eps,
    matching_local_ratio,
    weight_group_matching,
)
from repro.graphs import (
    assign_edge_weights,
    gnp_graph,
    random_regular_graph,
)
from repro.matching import optimum_cardinality, optimum_weight
from repro.mis import luby_mis, nmis_plus_luby_mis

from _helpers import run_once


class TestMisEngineAblation:
    def test_luby_vs_composite(self, benchmark):
        def collect():
            rows = []
            for degree in (4, 8, 16):
                g = random_regular_graph(degree, 96, seed=1)
                luby_rounds = []
                composite_rounds = []
                for seed in range(3):
                    _, r1 = luby_mis(g, seed=seed)
                    luby_rounds.append(r1)
                    _, r2 = nmis_plus_luby_mis(g, seed=seed)
                    composite_rounds.append(r2)
                rows.append({
                    "delta": degree,
                    "luby_rounds": summarize(luby_rounds).mean,
                    "nmis+luby_rounds": summarize(composite_rounds).mean,
                })
            return rows

        rows = run_once(benchmark, collect)
        print()
        print(render_table(rows, title="ABL-a: MIS black box rounds "
                                       "(n=96 regular)"))
        # Both engines must stay well below the trivial n bound; the
        # composite pays the NMIS stage up front so it can be slower on
        # small graphs — the claim is comparability, not dominance.
        for row in rows:
            assert row["luby_rounds"] < 96
            assert row["nmis+luby_rounds"] < 96


class TestMatchingFormulationAblation:
    def test_line_graph_vs_weight_groups(self, benchmark):
        def collect():
            rows = []
            for seed in range(4):
                g = assign_edge_weights(gnp_graph(22, 0.2, seed=seed), 64,
                                        seed=seed + 1)
                opt = optimum_weight(g)
                via_lines = matching_local_ratio(g, method="layers",
                                                 seed=seed)
                direct = weight_group_matching(g, seed=seed)
                rows.append({
                    "seed": seed,
                    "lines_ratio": approximation_ratio(opt,
                                                       via_lines.weight),
                    "lines_rounds": via_lines.rounds,
                    "groups_ratio": approximation_ratio(opt,
                                                        direct.weight),
                    "groups_rounds": direct.rounds,
                })
            return rows

        rows = run_once(benchmark, collect)
        print()
        print(render_table(rows, title="ABL-b: L(G) formulation vs "
                                       "footnote-5 weight groups"))
        for row in rows:
            assert row["lines_ratio"] <= 2.0
            assert row["groups_ratio"] <= 2.0


class TestBucketBaseAblation:
    def test_beta_sweep(self, benchmark):
        def collect():
            g = assign_edge_weights(gnp_graph(22, 0.2, seed=5), 256,
                                    seed=6)
            opt = optimum_weight(g)
            rows = []
            for beta_bucket in (4, 16, 64):
                result = fast_matching_weighted_2eps(
                    g, eps=0.5, beta_bucket=beta_bucket, seed=7,
                )
                rows.append({
                    "beta": beta_bucket,
                    "ratio": approximation_ratio(opt, result.weight),
                    "rounds": result.rounds,
                })
            return rows

        rows = run_once(benchmark, collect)
        print()
        print(render_table(rows, title="ABL-c: big-bucket base β in the "
                                       "Appendix B.1 pipeline"))
        for row in rows:
            assert row["ratio"] <= 2.5


class TestEpsilonAblation:
    def test_eps_tradeoff(self, benchmark):
        def collect():
            g = gnp_graph(26, 0.18, seed=8)
            opt = optimum_cardinality(g)
            rows = []
            for eps in (1.0, 0.5, 0.34):
                result = local_matching_1eps(g, eps=eps, seed=9)
                rows.append({
                    "eps": eps,
                    "found": result.cardinality,
                    "opt": opt,
                    "rounds": result.rounds,
                })
            return rows

        rows = run_once(benchmark, collect)
        print()
        print(render_table(rows, title="ABL-d: ε vs quality/rounds for "
                                       "the (1+ε) algorithm"))
        # Tighter ε must not lose quality, and pays (weakly) more rounds.
        found = [r["found"] for r in rows]
        assert found == sorted(found)
        for row in rows:
            assert (1 + row["eps"]) * row["found"] >= row["opt"]
