"""Experiment BUD — anytime budget sweeps (quality-vs-round curves).

The paper's guarantees trade rounds for quality; the ``budgets``
experiment sweeps ``Instance.max_rounds`` (crossed with ε for the
(1+ε) matcher) through the anytime solve protocol and records the
empirical curves, asserting the anytime contract: truncated runs fit
their budget, more budget never hurts, and completed budgeted runs
match the unbounded run exactly.
"""

from __future__ import annotations

from repro.experiments.bench import experiment_bench

test_budgets = experiment_bench("budgets")
