"""Experiment CHURN — incremental warm-started re-solve under churn.

The ``churn`` experiment in :mod:`repro.experiments.catalog` streams
deterministic mutation batches over a base graph and re-solves every
version warm-started from the previous run's resume state
(``resume(..., allow=MutationCompat(batch))``), comparing the repair
cost — the cumulative-round delta — against solving each version from
scratch.  Checks gate that every incremental solution is certified
feasible on its own mutated graph, that objectives match scratch
within the algorithm's guarantee, that small batches beat scratch by
≥ 1.2× in rounds, and that the object and array backends agree
counter for counter.  Every measure is a round counter or flag —
never wall-clock — so the artifact is byte-deterministic at the fixed
seed and CI ``cmp``-gates the committed ``BENCH_churn.json``.
"""

from __future__ import annotations

from repro.experiments.bench import experiment_bench

test_churn = experiment_bench("churn")
