"""Experiment CMP — ours vs. prior-art baselines (the §1.3 landscape).

The paper positions its algorithms against maximal-matching/greedy
baselines: weight-oblivious maximal matching can lose a factor W on
weighted instances, while the local-ratio algorithms hold a factor 2;
the fast algorithms trade a little approximation (2+ε) for exponentially
better round scaling in Δ than O(log n)-round baselines.  This bench
makes those comparisons concrete on a family sweep.
"""

from __future__ import annotations

from repro.analysis import approximation_ratio, render_table
from repro.core import (
    fast_matching_2eps,
    fast_matching_weighted_2eps,
    matching_local_ratio,
)
from repro.graphs import (
    assign_edge_weights,
    gnp_graph,
    grid_graph,
    power_law_graph,
    random_regular_graph,
)
from repro.matching import (
    greedy_weighted_matching,
    israeli_itai_matching,
    matching_weight,
    optimum_cardinality,
    optimum_weight,
)

from _helpers import run_once


def workloads():
    yield "gnp", assign_edge_weights(gnp_graph(40, 0.1, seed=1), 64,
                                     scheme="uniform", seed=2)
    yield "regular6", assign_edge_weights(
        random_regular_graph(6, 40, seed=3), 64, scheme="uniform", seed=4)
    yield "grid", assign_edge_weights(grid_graph(6, 6), 64,
                                      scheme="uniform", seed=5)
    yield "powerlaw", assign_edge_weights(power_law_graph(40, seed=6), 64,
                                          scheme="uniform", seed=7)
    yield "bimodal", assign_edge_weights(gnp_graph(40, 0.1, seed=8), 512,
                                         scheme="bimodal", seed=9)


class TestWeightedComparison:
    def test_weighted_ratio_table(self, benchmark):
        rows = []
        for name, g in workloads():
            opt = optimum_weight(g)
            local_ratio = matching_local_ratio(g, method="layers", seed=1)
            fast = fast_matching_weighted_2eps(g, eps=0.5, seed=1)
            maximal, _ = israeli_itai_matching(g, seed=1)
            greedy = greedy_weighted_matching(g)
            rows.append({
                "family": name,
                "lr2_ratio": approximation_ratio(opt, local_ratio.weight),
                "fast2eps_ratio": approximation_ratio(opt, fast.weight),
                "maximal_ratio": approximation_ratio(
                    opt, matching_weight(g, maximal)),
                "greedy_ratio": approximation_ratio(
                    opt, matching_weight(g, greedy)),
            })
        print()
        print(render_table(rows, title="CMP-a: weighted approximation "
                                       "ratios (lower is better)"))
        for row in rows:
            assert row["lr2_ratio"] <= 2.0
            assert row["fast2eps_ratio"] <= 2.5
        # The separation workload: weight-oblivious maximal matching
        # must lose to the weight-aware algorithms on bimodal weights.
        bimodal = next(r for r in rows if r["family"] == "bimodal")
        assert bimodal["maximal_ratio"] > bimodal["lr2_ratio"]

        g = dict(workloads())["bimodal"]
        run_once(benchmark,
                 lambda: matching_local_ratio(g, method="layers", seed=1))

    def test_round_scaling_comparison(self, benchmark):
        """Fast (2+ε) rounds stay flat in n at fixed Δ; the (seed-mean)
        rounds may wiggle but must not grow systematically."""

        def collect():
            rows = []
            for n in (32, 64, 128, 256):
                g = random_regular_graph(4, n, seed=10)
                fast_rounds = []
                ratios = []
                for seed in (11, 12, 13):
                    fast = fast_matching_2eps(g, eps=0.5, seed=seed)
                    fast_rounds.append(fast.rounds)
                    ratios.append(approximation_ratio(
                        optimum_cardinality(g), len(fast.matching)))
                maximal, ii_rounds = israeli_itai_matching(g, seed=11)
                rows.append({
                    "n": n,
                    "fast_rounds": sum(fast_rounds) / len(fast_rounds),
                    "israeli_itai_rounds": ii_rounds,
                    "fast_ratio": max(ratios),
                    "maximal_ratio": approximation_ratio(
                        optimum_cardinality(g), len(maximal)),
                })
            return rows

        rows = run_once(benchmark, collect)
        print()
        print(render_table(rows, title="CMP-b: rounds vs n at fixed Δ=4 "
                                       "(the paper's point: Δ, not n, "
                                       "governs the fast algorithms)"))
        from repro.analysis import growth_exponent

        # Fixed Δ: an 8x node-count increase must leave rounds nearly
        # flat (n^0.3 over this range is a < 2x drift allowance).
        exponent = growth_exponent([r["n"] for r in rows],
                                   [r["fast_rounds"] for r in rows])
        assert exponent < 0.3, f"rounds grow like n^{exponent:.2f}"
        for row in rows:
            assert row["fast_ratio"] <= 2.5
