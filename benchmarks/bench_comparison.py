"""Experiment CMP — ours vs. prior-art baselines (the §1.3 landscape).

Weight-oblivious maximal matching can lose a factor W on weighted
instances while the local-ratio algorithms hold a factor 2; the fast
algorithms trade a little approximation (2+ε) for exponentially better
round scaling in Δ.  The ``comparison`` experiment makes both
comparisons concrete on a graph-family sweep.
"""

from __future__ import annotations

from repro.experiments.bench import experiment_bench

test_comparison = experiment_bench("comparison")
