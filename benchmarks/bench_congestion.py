"""Experiment FT28 — Theorem 2.8's congestion separation.

A naive line-graph simulation routes each L(G)-message between primary
endpoints, loading the busiest physical edge with Θ(Δ) messages per
round.  The aggregation mechanism keeps every physical edge at 2
messages per round.  We sweep Δ on stars and regular graphs, both
analytically (one broadcast round) and measured on a full Algorithm 2
execution over L(G).
"""

from __future__ import annotations

from repro.analysis import growth_exponent, render_table
from repro.congest import CongestionAudit
from repro.core import matching_local_ratio, theorem_2_8_simulation_cost
from repro.graphs import assign_edge_weights, random_regular_graph, star_graph

from _helpers import run_once


class TestCongestionSeparation:
    def test_single_round_cost_sweep(self, benchmark):
        rows = []
        for degree in (4, 8, 16, 32, 64):
            cost = theorem_2_8_simulation_cost(star_graph(degree))
            rows.append({
                "delta": degree,
                "naive_max": cost.naive_max_load,
                "aggregated_max": cost.aggregated_max_load,
            })
        print()
        print(render_table(rows, title="FT28a: per-edge load of one "
                                       "line-graph round on stars"))
        exponent = growth_exponent([r["delta"] for r in rows],
                                   [r["naive_max"] for r in rows])
        assert exponent > 0.7, "naive load must grow ~linearly in Δ"
        assert all(r["aggregated_max"] == 2 for r in rows)
        run_once(benchmark,
                 lambda: theorem_2_8_simulation_cost(star_graph(64)))

    def test_regular_graph_cost(self, benchmark):
        run_once(benchmark, lambda: None)
        rows = []
        for degree in (4, 8, 12):
            g = random_regular_graph(degree, 48, seed=1)
            cost = theorem_2_8_simulation_cost(g)
            rows.append({
                "delta": degree,
                "naive_max": cost.naive_max_load,
                "aggregated_max": cost.aggregated_max_load,
                "naive_total": cost.naive_total,
                "aggregated_total": cost.aggregated_total,
            })
        print()
        print(render_table(rows, title="FT28b: per-edge load on random "
                                       "regular graphs"))
        for row in rows:
            assert row["naive_max"] > row["aggregated_max"]

    def test_full_algorithm_2_audit(self, benchmark):
        run_once(benchmark, lambda: None)
        """Audit a complete 2-approx MWM execution on L(G)."""

        rows = []
        for leaves in (6, 12, 18):
            g = assign_edge_weights(star_graph(leaves), 16, seed=2)
            audit = CongestionAudit()
            matching_local_ratio(g, method="layers", seed=3, audit=audit)
            rows.append({
                "delta": leaves,
                "naive_max": audit.max_naive_load(),
                "aggregated_max": audit.max_aggregated_load(),
            })
        print()
        print(render_table(rows, title="FT28c: measured audit over a "
                                       "full Algorithm-2-on-L(G) run"))
        loads = [r["naive_max"] for r in rows]
        assert loads == sorted(loads)
        assert all(r["aggregated_max"] == 2 for r in rows)
