"""Experiment FT28 — Theorem 2.8's congestion separation.

A naive line-graph simulation loads the busiest physical edge with
Θ(Δ) messages per round; the aggregation mechanism keeps every
physical edge at 2.  The ``congestion`` experiment sweeps Δ on stars
and regular graphs, analytically and measured on a full Algorithm 2
execution over L(G).
"""

from __future__ import annotations

from repro.experiments.bench import experiment_bench

test_congestion = experiment_bench("congestion")
