"""Experiment FAULTS — seeded chaos drills and recovery guarantees.

The ``faults`` experiment in :mod:`repro.experiments.catalog` runs the
solver service under the deterministic fault-injection plane
(:mod:`repro.faults`): a transient-fault rate sweep against the
bounded-retry path, journal I/O faults against the degraded-health
breaker and garbage-tolerant recovery, a mid-solve graceful drain, and
a dispatcher-death drill.  Every measure is a counter or flag — never
wall-clock — so the artifact is byte-deterministic at the fixed seed
and CI ``cmp``-gates the committed ``BENCH_faults.json``.
"""

from __future__ import annotations

from repro.experiments.bench import experiment_bench

test_faults = experiment_bench("faults")
