"""Experiment F1 — reproduce Figure 1 (bipartite augmenting-path counts).

Figure 1 of the paper illustrates the forward/backward traversal on a
bipartite graph: black numbers are the per-node counts passed during the
forward traversal (the number of shortest augmenting paths ending at
each node), purple numbers are the backward shares (the number of paths
through each node).  We rebuild a layered bipartite instance of the same
flavor, run the Claim B.5/B.6 traversals, print both number sets, and
verify them against brute-force path enumeration.
"""

from __future__ import annotations

import networkx as nx

from repro.analysis import render_table
from repro.core import BipartiteAugmentingPhase, enumerate_augmenting_paths
from repro.graphs import random_bipartite_graph
from repro.matching import bipartite_sides

from _helpers import run_once


def figure1_instance():
    """A layered bipartite graph with a partial matching, mimicking the
    paper's Figure 1: free A-nodes on the left, free B-nodes on the
    right, three matched pairs in between, and multiple overlapping
    length-3 augmenting paths whose counts the traversal aggregates."""

    g = nx.Graph()
    a_nodes = [f"a{i}" for i in range(5)]
    b_nodes = [f"b{i}" for i in range(5)]
    for a in a_nodes:
        g.add_node(a, side="A")
    for b in b_nodes:
        g.add_node(b, side="B")
    edges = [
        # free A-nodes a0, a4 fan into the matched middle
        ("a0", "b0"), ("a0", "b1"), ("a4", "b1"), ("a4", "b2"),
        # matched pairs: (a1, b0), (a2, b1), (a3, b2)
        ("a1", "b0"), ("a2", "b1"), ("a3", "b2"),
        # matched A-nodes fan out to the free B-nodes b3, b4
        ("a1", "b3"), ("a1", "b4"), ("a2", "b3"), ("a3", "b4"),
    ]
    g.add_edges_from(edges)
    matching = {frozenset(("a1", "b0")), frozenset(("a2", "b1")),
                frozenset(("a3", "b2"))}
    return g, matching


class TestFigure1:
    def test_forward_counts_match_brute_force(self, benchmark):
        g, matching = figure1_instance()
        a_side, b_side = bipartite_sides(g)
        phase = BipartiteAugmentingPhase(g, a_side, b_side, matching,
                                         d=3, eps=0.5, seed=0)
        counts, contrib, raw = run_once(
            benchmark, lambda: phase._forward(phase.scope, use_alpha=False)
        )
        through = phase._backward(counts, contrib, raw)

        paths = enumerate_augmenting_paths(g, matching, 3)
        end_counts = {}
        node_counts = {}
        for p in paths:
            end = p[-1] if p[-1] in b_side else p[0]
            end_counts[end] = end_counts.get(end, 0) + 1
            for v in p:
                node_counts[v] = node_counts.get(v, 0) + 1

        rows = [
            {
                "node": v,
                "forward(B.5)": counts.get(v, 0.0),
                "through(B.6)": through.get(v, 0.0),
                "brute_force": node_counts.get(v, 0),
            }
            for v in sorted(g.nodes)
        ]
        print()
        print(render_table(
            rows,
            title="Figure 1 (reproduced): augmenting-path counts via "
                  "forward/backward traversal vs brute force",
        ))
        assert len(paths) >= 4, "the instance must have overlapping paths"
        for b, count in end_counts.items():
            assert counts.get(b, 0) == count
        for v, count in node_counts.items():
            assert abs(through.get(v, 0) - count) < 1e-9

    def test_random_instances_figure1_property(self, benchmark):
        """Claims B.5/B.6 hold on random bipartite graphs too."""

        run_once(benchmark, lambda: None)
        for seed in range(5):
            g = random_bipartite_graph(6, 6, 0.4, seed=seed)
            a_side, b_side = bipartite_sides(g)
            # Greedy maximal matching so length-3 paths are the shortest.
            matching, used = set(), set()
            for u, v in sorted(g.edges, key=repr):
                if u not in used and v not in used:
                    matching.add(frozenset((u, v)))
                    used |= {u, v}
            phase = BipartiteAugmentingPhase(g, a_side, b_side, matching,
                                             d=3, eps=0.5, seed=seed)
            counts, contrib, raw = phase._forward(phase.scope,
                                                  use_alpha=False)
            through = phase._backward(counts, contrib, raw)
            paths = enumerate_augmenting_paths(g, matching, 3)
            node_counts = {}
            for p in paths:
                for v in p:
                    node_counts[v] = node_counts.get(v, 0) + 1
            for v, count in node_counts.items():
                assert abs(through.get(v, 0) - count) < 1e-9
