"""Experiment F1 — reproduce Figure 1 (bipartite augmenting-path counts).

The ``figure1`` experiment rebuilds a layered bipartite instance of
the paper's Figure 1 flavor, runs the Claim B.5/B.6 forward/backward
traversals, and verifies the per-node counts against brute-force path
enumeration — on the curated instance and on random bipartite graphs.
"""

from __future__ import annotations

from repro.experiments.bench import experiment_bench

test_figure1 = experiment_bench("figure1")
