"""Experiment FLA1 — Lemma A.1's layer-emptying dynamics.

Lemma A.1: after one MIS phase on the locally-top layer, every node of
the top layer has its weight at least halved, so the top layer empties.
On the serializing layered-chain workload the topmost occupied layer
descends one step per selection phase, making the lemma's staircase
visible; on sparse random graphs local parallelism collapses several
layers per phase (the typical case).
"""

from __future__ import annotations

from repro.analysis import render_series, render_table
from repro.core import LayerTrace, maxis_local_ratio_layers
from repro.graphs import assign_node_weights, gnp_graph, layered_graph

from _helpers import run_once


def layered_workload(layers: int, width: int = 5, seed: int = 1):
    g = layered_graph(layers, width, seed=seed)
    for v, data in g.nodes(data=True):
        g.nodes[v]["weight"] = 2 ** data["layer"]
    return g


class TestLayerDynamics:
    def test_top_layer_staircase(self, benchmark):
        g = layered_workload(layers=11)
        trace = LayerTrace()
        run_once(benchmark,
                 lambda: maxis_local_ratio_layers(g, seed=3, trace=trace))
        series = trace.top_layer_series()
        print()
        print(render_series(list(range(len(series))), series,
                            x_label="phase", y_label="top_layer",
                            title="FLA1a: topmost occupied layer per "
                                  "selection phase (layered chain, "
                                  "W=1024)"))
        assert all(b <= a for a, b in zip(series, series[1:]))
        assert series[0] == max(series)
        # The staircase: every occupied layer appears as a step.
        drops = sum(1 for a, b in zip(series, series[1:]) if b < a)
        assert drops >= len(series) // 2 - 1

    def test_drop_count_scales_with_log_w(self, benchmark):
        def collect():
            rows = []
            for layers in (3, 7, 11):
                g = layered_workload(layers=layers)
                trace = LayerTrace()
                maxis_local_ratio_layers(g, seed=6, trace=trace)
                series = trace.top_layer_series()
                drops = sum(
                    1 for a, b in zip(series, series[1:]) if b < a
                )
                rows.append({
                    "W": 2 ** (layers - 1),
                    "log2W": layers - 1,
                    "initial_top": series[0] if series else 0,
                    "layer_drops": drops,
                    "phases": len(series),
                })
            return rows

        rows = run_once(benchmark, collect)
        print()
        print(render_table(rows, title="FLA1b: layer drops vs log W "
                                       "(layered chain)"))
        # Lemma A.1: the top layer can drop at most log W + 1 times, and
        # on the serializing chain it actually uses most of that budget.
        for row in rows:
            assert row["layer_drops"] <= row["log2W"] + 1
        drops = [r["layer_drops"] for r in rows]
        assert drops == sorted(drops)
        assert drops[-1] > drops[0]

    def test_typical_case_collapses_layers(self, benchmark):
        """Sparse random graphs: local parallelism empties several
        layers per phase, so the staircase is much shorter."""

        def collect():
            g = assign_node_weights(gnp_graph(80, 0.06, seed=1), 1024,
                                    scheme="log-uniform", seed=2)
            trace = LayerTrace()
            maxis_local_ratio_layers(g, seed=3, trace=trace)
            return trace.top_layer_series()

        series = run_once(benchmark, collect)
        print()
        print(render_series(list(range(len(series))), series,
                            x_label="phase", y_label="top_layer",
                            title="FLA1c: typical case (sparse G(n,p), "
                                  "W=1024)"))
        assert all(b <= a for a, b in zip(series, series[1:]))
        assert len(series) <= 11  # far fewer phases than layers
