"""Experiment FLA1 — Lemma A.1's layer-emptying dynamics.

Lemma A.1: after one MIS phase on the locally-top layer, every node of
the top layer has its weight at least halved, so the top layer empties.
The ``layers`` experiment shows the staircase on serializing layered
chains and the collapse on sparse random graphs.
"""

from __future__ import annotations

from repro.experiments.bench import experiment_bench

test_layers = experiment_bench("layers")
