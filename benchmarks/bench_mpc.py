"""Experiment MPC_SCALING — sublinear machines and sparsification.

The ``mpc_scaling`` experiment in :mod:`repro.experiments.catalog`
runs the two MPC-ported algorithms (``matching-proposal`` and
``maxis-greedy``) across machine counts, memory exponents δ and graph
families, pinning exact objective/solution parity against the
default-model ``solve()``, the per-machine ``O(n^δ)`` sublinearity
check, and the dense complete-graph configuration that passes only
because adaptive sparsification engages.  Every measure is a counter
or flag — never wall-clock — so the artifact is byte-deterministic at
the fixed seed and CI ``cmp``-gates the committed ``BENCH_mpc.json``.
"""

from __future__ import annotations

from repro.experiments.bench import experiment_bench

test_mpc = experiment_bench("mpc_scaling")
