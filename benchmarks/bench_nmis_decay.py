"""Experiment FT31 — Theorem 3.1's residual decay.

The theorem says: after β(log Δ/log K + K² log 1/δ) iterations, each
node fails to be covered (in or dominated) with probability ≤ δ.  We
measure the undecided-node fraction as a function of the iteration
budget for several update factors K and check:

* the fraction decays geometrically in the budget,
* larger K reaches low residual mass in fewer iterations on the
  log Δ/log K leg (the Section 3.1 improvement), while the K² log(1/δ)
  tail is the price.
"""

from __future__ import annotations

from repro.analysis import render_series, render_table
from repro.core import residual_decay_series, theorem_3_1_budget
from repro.graphs import random_regular_graph

from _helpers import run_once


class TestResidualDecay:
    def test_decay_curve(self, benchmark):
        g = random_regular_graph(8, 120, seed=1)
        series = run_once(
            benchmark,
            lambda: residual_decay_series(g, k=2, max_iterations=14,
                                          seeds=range(4)),
        )
        print()
        print(render_series(list(range(1, len(series) + 1)), series,
                            x_label="iters", y_label="residual",
                            title="FT31a: undecided fraction vs budget "
                                  "(K=2, Δ=8, n=120)"))
        assert series[0] > series[-1]
        assert series[-1] <= 0.05
        # Geometric-ish decay: the tail is below half the head quickly.
        midpoint = series[len(series) // 2]
        assert midpoint <= series[0]

    def test_k_sweep(self, benchmark):
        g = random_regular_graph(8, 120, seed=2)
        run_once(benchmark, lambda: None)
        rows = []
        for k in (2, 3, 4):
            series = residual_decay_series(g, k=k, max_iterations=10,
                                           seeds=range(3))
            rows.append({
                "K": k,
                "resid@3": series[2],
                "resid@6": series[5],
                "resid@10": series[9],
            })
        print()
        print(render_table(rows, title="FT31b: residual fraction by "
                                       "update factor K"))
        for row in rows:
            assert row["resid@10"] <= row["resid@3"] + 1e-9

    def test_golden_round_structure(self, benchmark):
        """Lemma B.1/B.2: nodes that survive accumulate golden rounds —
        type 1 (low effective degree at full probability, the node
        itself is likely to join) or type 2 (light neighbors carry
        enough mass, a neighbor is likely to join).  We measure how
        many nodes see each type during a run."""

        from repro.graphs import gnp_graph
        from repro.mis import GoldenRoundStats, nearly_maximal_is

        def collect():
            g = gnp_graph(120, 0.06, seed=5)
            stats = GoldenRoundStats()
            nearly_maximal_is(g, iterations=25, k=2, seed=6, stats=stats)
            return stats

        stats = run_once(benchmark, collect)
        type1_nodes = len(stats.type1)
        type2_nodes = len(stats.type2)
        type1_total = sum(stats.type1.values())
        type2_total = sum(stats.type2.values())
        print(f"\nFT31d: golden rounds — type1: {type1_nodes} nodes / "
              f"{type1_total} rounds, type2: {type2_nodes} nodes / "
              f"{type2_total} rounds")
        # Lemma B.1's dichotomy: golden rounds must actually occur.
        assert type1_total + type2_total > 0
        assert type1_nodes > 0

    def test_theorem_budget_suffices(self, benchmark):
        """Running for the Theorem 3.1 budget leaves ≈ δ residuals."""

        g = random_regular_graph(6, 100, seed=3)
        delta_failure = 0.05
        budget = theorem_3_1_budget(6, 2.0, delta_failure)
        from repro.mis import nearly_maximal_is

        def collect():
            total_nodes = 0
            residuals = 0
            for seed in range(5):
                _, residual, _ = nearly_maximal_is(
                    g, iterations=budget, k=2, seed=seed,
                )
                residuals += len(residual)
                total_nodes += g.number_of_nodes()
            return residuals / total_nodes

        rate = run_once(benchmark, collect)
        print(f"\nFT31c: budget={budget} iterations, measured residual "
              f"rate={rate:.4f} (δ={delta_failure})")
        assert rate <= 2 * delta_failure
