"""Experiment FT31 — Theorem 3.1's residual decay.

After β(log Δ/log K + K² log 1/δ) iterations each node fails to be
covered with probability ≤ δ.  The ``nmis_decay`` experiment measures
the undecided-node fraction against the iteration budget for several
update factors K, golden-round occurrence, and the analytic budget.
"""

from __future__ import annotations

from repro.experiments.bench import experiment_bench

test_nmis_decay = experiment_bench("nmis_decay")
