"""Experiment PERF — batch-engine and simulator wall-clock tracking.

The ``perf`` experiment in :mod:`repro.experiments.catalog` times
``solve_many`` (serial vs an 8-worker process pool) and full serial
simulator runs, recording p50/p95 wall-clock and trials/sec.  It is
the one deliberately non-byte-deterministic experiment: CI records its
``BENCH_perf.json`` artifact instead of gating on the timing values,
while the checks still assert the parallel backend computed exactly
the serial backend's results.
"""

from __future__ import annotations

from repro.experiments.bench import experiment_bench

test_perf = experiment_bench("perf")
