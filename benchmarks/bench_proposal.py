"""Experiment FB13 — the Appendix B.4 proposal algorithm.

Lemma B.13: after O(K log 1/ε + log Δ / log K) phases each left node is
matched/isolated except with probability ≤ ε/2.  We measure the unlucky
fraction against the phase budget, sweep K, and validate the Lemma B.14
general-graph wrapper's (2+ε) guarantee.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.core import (
    bipartite_proposal_matching,
    general_proposal_matching,
    lemma_b13_rounds,
    optimal_k,
)
from repro.graphs import bipartite_regular_graph, gnp_graph
from repro.matching import bipartite_sides, optimum_cardinality

from _helpers import run_once


class TestProposalBipartite:
    def test_unlucky_fraction_vs_phases(self, benchmark):
        g = bipartite_regular_graph(40, 5, seed=1)
        left, right = bipartite_sides(g)
        rows = []
        for phases in (1, 2, 4, 8, 16):
            unlucky = 0
            for seed in range(4):
                result = bipartite_proposal_matching(
                    g, left, right, seed=seed, phases=phases,
                )
                unlucky += len(result.unlucky & left)
            rows.append({
                "phases": phases,
                "unlucky_rate": unlucky / (4 * len(left)),
            })
        print()
        print(render_table(rows, title="FB13a: unlucky left-node rate "
                                       "vs phase budget (Δ=5)"))
        rates = [r["unlucky_rate"] for r in rows]
        assert rates[-1] <= rates[0]
        assert rates[-1] <= 0.05
        run_once(benchmark, lambda: bipartite_proposal_matching(
            g, left, right, seed=0, phases=8))

    def test_k_tradeoff(self, benchmark):
        run_once(benchmark, lambda: None)
        """Lemma B.13's K trade-off: the analytic budget is minimized at
        the optimized K."""

        eps = 0.25
        rows = []
        for delta in (8, 64, 1024, 2**15):
            k_star = optimal_k(delta, eps)
            rows.append({
                "delta": delta,
                "k_star": k_star,
                "budget_k2": lemma_b13_rounds(delta, eps, 2),
                "budget_kstar": lemma_b13_rounds(delta, eps, k_star),
            })
        print()
        print(render_table(rows, title="FB13b: analytic phase budget, "
                                       "K=2 vs optimized K"))
        for row in rows:
            assert row["budget_kstar"] <= row["budget_k2"]


class TestProposalGeneral:
    def test_lemma_b14_guarantee(self, benchmark):
        eps = 0.5
        rows = []
        for seed in range(4):
            g = gnp_graph(60, 0.08, seed=seed)
            matching, rounds, _ = general_proposal_matching(
                g, eps=eps, seed=seed,
            )
            opt = optimum_cardinality(g)
            rows.append({
                "seed": seed,
                "found": len(matching),
                "opt": opt,
                "rounds": rounds,
                "ok": (2 + eps) * len(matching) >= opt,
            })
        print()
        print(render_table(rows, title=f"FB14: general proposal "
                                       f"matching, ε={eps} (bound 2+ε)"))
        assert sum(1 for r in rows if r["ok"]) >= 3
        run_once(benchmark, lambda: general_proposal_matching(
            gnp_graph(60, 0.08, seed=0), eps=eps, seed=0))
