"""Experiment FB13 — the Appendix B.4 proposal algorithm.

Lemma B.13: after O(K log 1/ε + log Δ / log K) phases each left node
is matched/isolated except with probability ≤ ε/2.  The ``proposal``
experiment measures the unlucky fraction against the phase budget,
sweeps K analytically, and validates the Lemma B.14 general-graph
wrapper's (2+ε) guarantee.
"""

from __future__ import annotations

from repro.experiments.bench import experiment_bench

test_proposal = experiment_bench("proposal")
