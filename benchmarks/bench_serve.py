"""Experiment SERVE — solver-service load (throughput/latency/SLA).

The ``serve_load`` experiment in :mod:`repro.experiments.catalog`
drives the ``python -m repro serve`` job manager in-process: a mixed
job batch per worker count records throughput and the service's
p50/p95 latency, and a round-budget sweep records the truncated-vs-
complete ratio.  Like ``perf`` it is deliberately non-byte-
deterministic: CI records its ``BENCH_serve.json`` artifact and gates
only the schema plus the deterministic agreement checks (every
objective the service returns equals the direct facade solve).
"""

from __future__ import annotations

from repro.experiments.bench import experiment_bench

test_serve = experiment_bench("serve_load")
