"""Experiment T1.* — regenerate Table 1 (the paper's results table).

Each row of Table 1 is an algorithm with an approximation factor and a
round complexity.  For every row we measure, on concrete workloads:

* the approximation factor achieved (validated against exact oracles),
* the measured round count and how it scales with the parameter the
  paper's bound names (log W, Δ, log Δ).

Round bounds are worst-case: typical sparse instances finish much
faster because eligibility is local, so the scaling rows use the
*serializing* workloads (layered chains for the log W factor, cliques
with color-descending weights for the Δ factor) alongside typical-case
tables.  Absolute constants are simulator-specific; the growth shapes
and the guarantees are the reproduction targets.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    approximation_ratio,
    growth_exponent,
    pearson,
    render_table,
    summarize,
)
from repro.core import (
    congest_matching_1eps,
    fast_matching_2eps,
    fast_matching_weighted_2eps,
    local_matching_1eps,
    matching_local_ratio,
    maxis_local_ratio_coloring,
    maxis_local_ratio_layers,
)
from repro.graphs import (
    assign_edge_weights,
    assign_node_weights,
    complete_graph,
    gnp_graph,
    layered_graph,
    max_degree,
    random_regular_graph,
)
from repro.matching import optimum_cardinality, optimum_weight
from repro.mis import delta_plus_one_coloring, exact_mwis, mwis_weight

from _helpers import run_once


class TestRow1MaxISLayers:
    """Row 1: MaxIS Δ-approx in O(MIS(G) · log W) rounds, randomized."""

    def test_row1_rounds_scale_with_log_w(self, benchmark):
        def collect():
            rows = []
            for layers in (2, 4, 8, 12, 16):
                g = layered_graph(layers, 6, seed=1)
                for v, data in g.nodes(data=True):
                    g.nodes[v]["weight"] = 2 ** data["layer"]
                rounds = [
                    maxis_local_ratio_layers(g, seed=s).rounds
                    for s in range(3)
                ]
                rows.append({
                    "W": 2 ** (layers - 1),
                    "log2W": layers - 1,
                    "rounds": summarize(rounds).mean,
                })
            return rows

        rows = run_once(benchmark, collect)
        print()
        print(render_table(rows, title="T1.1a: Algorithm 2 rounds vs W "
                                       "(serializing layered chain)"))
        # Shape: rounds track log W linearly, i.e. far sublinear in W.
        correlation = pearson([r["log2W"] for r in rows],
                              [r["rounds"] for r in rows])
        exponent = growth_exponent([r["W"] for r in rows],
                                   [r["rounds"] for r in rows])
        assert correlation > 0.95, "rounds must track log W"
        assert exponent < 0.4, f"rounds grow like W^{exponent:.2f}"
        assert rows[-1]["rounds"] > rows[0]["rounds"]

    def test_row1_typical_case_parallelism(self, benchmark):
        """On sparse random graphs local eligibility lets many layers
        progress at once — rounds stay nearly flat in W (and this is a
        feature, not a bug: Theorem 2.3 is a worst-case bound)."""

        def collect():
            topology = gnp_graph(96, 0.05, seed=1)
            rows = []
            for w in (1, 16, 256, 4096):
                g = assign_node_weights(topology.copy(), w,
                                        scheme="log-uniform", seed=2)
                rounds = [
                    maxis_local_ratio_layers(g, seed=s).rounds
                    for s in range(3)
                ]
                rows.append({"W": w, "rounds": summarize(rounds).mean})
            return rows

        rows = run_once(benchmark, collect)
        print()
        print(render_table(rows, title="T1.1b: Algorithm 2 rounds vs W "
                                       "(typical sparse G(n,p))"))
        assert max(r["rounds"] for r in rows) <= 4 * max(
            1, rows[0]["rounds"]
        )

    def test_row1_rounds_scale_gently_with_n(self, benchmark):
        def collect():
            rows = []
            for n in (32, 64, 128, 256, 512):
                g = assign_node_weights(
                    gnp_graph(n, min(0.9, 6.0 / n), seed=3), 64,
                    scheme="log-uniform", seed=4,
                )
                rounds = [
                    maxis_local_ratio_layers(g, seed=s).rounds
                    for s in range(3)
                ]
                rows.append({"n": n, "rounds": summarize(rounds).mean})
            return rows

        rows = run_once(benchmark, collect)
        print()
        print(render_table(rows, title="T1.1c: Algorithm 2 rounds vs n "
                                       "(W=64, sparse G(n,p))"))
        exponent = growth_exponent([r["n"] for r in rows],
                                   [r["rounds"] for r in rows])
        assert exponent < 0.5, (
            f"rounds grow like n^{exponent:.2f}; expected logarithmic"
        )

    def test_row1_delta_approximation_holds(self, benchmark):
        def collect():
            rows = []
            for seed in range(6):
                g = assign_node_weights(gnp_graph(18, 0.25, seed=seed),
                                        64, seed=seed)
                optimum = mwis_weight(g, exact_mwis(g))
                found = maxis_local_ratio_layers(g, seed=seed).weight
                rows.append({
                    "seed": seed, "delta": max_degree(g),
                    "ratio": approximation_ratio(optimum, found),
                })
            return rows

        rows = run_once(benchmark, collect)
        print()
        print(render_table(rows, title="T1.1d: Algorithm 2 approximation "
                                       "ratio vs exact MWIS (bound: Δ)"))
        for row in rows:
            assert row["ratio"] <= row["delta"]


class TestRow2MaxISColoring:
    """Row 2: MaxIS Δ-approx in O(Δ + log* n) rounds, deterministic."""

    def test_row2_rounds_scale_with_delta(self, benchmark):
        def collect():
            rows = []
            for degree in (3, 5, 8, 12, 16):
                g = complete_graph(degree + 1)
                coloring = delta_plus_one_coloring(g)
                for v in g.nodes:
                    g.nodes[v]["weight"] = 2 ** (
                        coloring.palette - coloring.colors[v]
                    )
                result = maxis_local_ratio_coloring(g, coloring=coloring)
                rows.append({
                    "delta": degree,
                    "lr_rounds": result.local_ratio_rounds,
                    "accounted": result.accounted_rounds,
                })
            return rows

        rows = run_once(benchmark, collect)
        print()
        print(render_table(rows, title="T1.2a: Algorithm 3 rounds vs Δ "
                                       "(serializing clique workload)"))
        correlation = pearson([r["delta"] for r in rows],
                              [r["lr_rounds"] for r in rows])
        assert correlation > 0.95, "removal rounds must track Δ linearly"
        # The serializing clique realizes exactly Δ+1 removal sweeps.
        for row in rows:
            assert row["lr_rounds"] <= 2 * (row["delta"] + 1)

    def test_row2_typical_case(self, benchmark):
        def collect():
            rows = []
            for degree in (3, 5, 8, 12, 16):
                g = assign_node_weights(
                    random_regular_graph(degree, 60, seed=5), 32, seed=6,
                )
                result = maxis_local_ratio_coloring(g)
                rows.append({
                    "delta": degree,
                    "lr_rounds": result.local_ratio_rounds,
                    "accounted": result.accounted_rounds,
                })
            return rows

        rows = run_once(benchmark, collect)
        print()
        print(render_table(rows, title="T1.2b: Algorithm 3 rounds vs Δ "
                                       "(typical random regular)"))
        for row in rows:
            assert row["lr_rounds"] <= row["accounted"]

    def test_row2_deterministic_and_delta_approx(self, benchmark):
        def collect():
            rows = []
            for seed in range(5):
                g = assign_node_weights(gnp_graph(16, 0.3, seed=seed), 32,
                                        seed=seed + 1)
                first = maxis_local_ratio_coloring(g)
                second = maxis_local_ratio_coloring(g)
                assert first.independent_set == second.independent_set
                optimum = mwis_weight(g, exact_mwis(g))
                rows.append({
                    "seed": seed, "delta": max_degree(g),
                    "ratio": approximation_ratio(optimum, first.weight),
                })
            return rows

        rows = run_once(benchmark, collect)
        print()
        print(render_table(rows, title="T1.2c: Algorithm 3 determinism + "
                                       "ratio (bound: Δ)"))
        for row in rows:
            assert row["ratio"] <= row["delta"]


class TestRow12Matching:
    """Rows 1–2 matching column: MWM 2-approx via the line graph."""

    @pytest.mark.parametrize("method", ["layers", "coloring"])
    def test_mwm_2approx(self, benchmark, method):
        def collect():
            rows = []
            for seed in range(4):
                g = assign_edge_weights(gnp_graph(24, 0.15, seed=seed),
                                        64, seed=seed + 1)
                result = matching_local_ratio(g, method=method, seed=seed)
                rows.append({
                    "seed": seed,
                    "ratio": approximation_ratio(optimum_weight(g),
                                                 result.weight),
                    "rounds": result.rounds,
                })
            return rows

        rows = run_once(benchmark, collect)
        print()
        print(render_table(
            rows, title=f"T1.3({method}): MWM 2-approx on L(G) "
                        "(bound: 2)"))
        for row in rows:
            assert row["ratio"] <= 2.0


class TestRow3FastWeighted:
    """Row 3: MWM (2+ε)-approx in O(log Δ / log log Δ) rounds."""

    def test_row3_guarantee_and_rounds(self, benchmark):
        eps = 0.5

        def collect():
            rows = []
            for seed in range(4):
                g = assign_edge_weights(gnp_graph(22, 0.2, seed=seed), 32,
                                        seed=seed + 1)
                result = fast_matching_weighted_2eps(g, eps=eps, seed=seed)
                rows.append({
                    "seed": seed,
                    "ratio": approximation_ratio(optimum_weight(g),
                                                 result.weight),
                    "rounds": result.rounds,
                })
            return rows

        rows = run_once(benchmark, collect)
        print()
        print(render_table(rows, title=f"T1.4a: (2+ε) MWM, ε={eps} "
                                       f"(bound: {2 + eps})"))
        for row in rows:
            assert row["ratio"] <= 2 + eps

    def test_row3_nmis_rounds_flatten_with_k(self, benchmark):
        """The Section 3.1 improvement: the log Δ/log K term flattens
        as K grows (the K² log 1/δ term is the price)."""

        def collect():
            rows = []
            for degree in (4, 8, 16, 24):
                g = random_regular_graph(degree, 72, seed=7)
                by_k = {}
                for k in (2, 3, 4):
                    result = fast_matching_2eps(g, eps=0.5, seed=8, k=k)
                    by_k[f"rounds_k{k}"] = result.rounds
                rows.append({"delta": degree, **by_k})
            return rows

        rows = run_once(benchmark, collect)
        print()
        print(render_table(rows, title="T1.4b: (2+ε) MCM rounds vs Δ "
                                       "for update factors K"))
        for k in (2, 3, 4):
            exponent = growth_exponent(
                [r["delta"] for r in rows],
                [r[f"rounds_k{k}"] for r in rows],
            )
            assert exponent < 0.8, (
                f"K={k}: rounds grow like Δ^{exponent:.2f}"
            )


class TestRow4OneEps:
    """Row 4: MCM (1+ε)-approx in O(log Δ / log log Δ) rounds."""

    def test_row4_local_guarantee(self, benchmark):
        eps = 0.5

        def collect():
            rows = []
            for seed in range(4):
                g = gnp_graph(26, 0.18, seed=seed)
                result = local_matching_1eps(g, eps=eps, seed=seed)
                rows.append({
                    "seed": seed,
                    "found": result.cardinality,
                    "opt": optimum_cardinality(g),
                    "deactivated": len(result.deactivated),
                    "rounds": result.rounds,
                })
            return rows

        rows = run_once(benchmark, collect)
        print()
        print(render_table(rows, title=f"T1.5a: (1+ε) MCM LOCAL, ε={eps}"))
        for row in rows:
            effective = row["found"] + row["deactivated"]
            assert (1 + eps) * effective >= row["opt"]

    def test_row4_congest_guarantee(self, benchmark):
        eps = 0.5

        def collect():
            rows = []
            for seed in range(3):
                g = gnp_graph(20, 0.2, seed=seed)
                result = congest_matching_1eps(g, eps=eps, seed=seed)
                rows.append({
                    "seed": seed,
                    "found": result.cardinality,
                    "opt": optimum_cardinality(g),
                    "deactivated": len(result.deactivated),
                    "stages": result.stages,
                    "rounds": result.rounds,
                })
            return rows

        rows = run_once(benchmark, collect)
        print()
        print(render_table(rows,
                           title=f"T1.5b: (1+ε) MCM CONGEST, ε={eps}"))
        for row in rows:
            effective = row["found"] + row["deactivated"]
            assert (1 + eps) * effective >= row["opt"]


class TestTable1Summary:
    def test_print_table1(self, benchmark):
        """The regenerated Table 1: measured counterparts of each row."""

        def collect():
            g_is = assign_node_weights(gnp_graph(18, 0.25, seed=1), 64,
                                       seed=2)
            opt_is = mwis_weight(g_is, exact_mwis(g_is))
            g_m = assign_edge_weights(gnp_graph(18, 0.25, seed=1), 64,
                                      seed=2)
            opt_w = optimum_weight(g_m)
            opt_c = optimum_cardinality(g_m)

            alg2 = maxis_local_ratio_layers(g_is, seed=3)
            alg3 = maxis_local_ratio_coloring(g_is)
            mwm2 = matching_local_ratio(g_m, method="layers", seed=3)
            fast_w = fast_matching_weighted_2eps(g_m, eps=0.5, seed=3)
            one_eps = local_matching_1eps(g_m, eps=0.5, seed=3)

            return [
                {"row": "MaxIS Δ rand (Alg.2)",
                 "bound": max_degree(g_is),
                 "measured_ratio": approximation_ratio(opt_is,
                                                       alg2.weight),
                 "rounds": alg2.rounds},
                {"row": "MaxIS Δ det (Alg.3)",
                 "bound": max_degree(g_is),
                 "measured_ratio": approximation_ratio(opt_is,
                                                       alg3.weight),
                 "rounds": alg3.accounted_rounds},
                {"row": "MWM 2 (line graph)",
                 "bound": 2,
                 "measured_ratio": approximation_ratio(opt_w, mwm2.weight),
                 "rounds": mwm2.rounds},
                {"row": "MWM 2+eps (Thm 3.2/B.1)",
                 "bound": 2.5,
                 "measured_ratio": approximation_ratio(opt_w,
                                                       fast_w.weight),
                 "rounds": fast_w.rounds},
                {"row": "MCM 1+eps (Thm B.4)",
                 "bound": 1.5,
                 "measured_ratio": approximation_ratio(
                     opt_c,
                     one_eps.cardinality + len(one_eps.deactivated)),
                 "rounds": one_eps.rounds},
            ]

        rows = run_once(benchmark, collect)
        print()
        print(render_table(rows, title="Table 1 (regenerated, n=18 "
                                       "workload): bound vs measured"))
        for row in rows:
            assert row["measured_ratio"] <= row["bound"] + 1e-9
