"""Experiment T1.* — regenerate Table 1 (the paper's results table).

Each row of Table 1 is an algorithm with an approximation factor and a
round complexity.  The ``table1`` experiment in
:mod:`repro.experiments.catalog` measures, for every row, the
approximation factor achieved (validated against exact oracles) and
the measured round count's scaling in the parameter the paper's bound
names (log W, Δ, log Δ) — on both serializing worst-case workloads and
typical sparse instances.
"""

from __future__ import annotations

from repro.experiments.bench import experiment_bench

test_table1 = experiment_bench("table1")
