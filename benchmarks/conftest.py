"""Pytest configuration for the benchmark suite.

The benchmarks are thin declarations over the experiment registry in
:mod:`repro.experiments` — every ``bench_*.py`` file binds one
registered experiment via
:func:`repro.experiments.bench.experiment_bench`.  Run with::

    PYTHONPATH=src pytest benchmarks/ --benchmark-only -s

to see the regenerated tables.  The same experiments are available
outside pytest through ``python -m repro bench <name>``.

This conftest makes ``src/`` importable so the suite also works from a
plain checkout without an installed package.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
