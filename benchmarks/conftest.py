"""Pytest configuration for the benchmark suite (see _helpers.py)."""
