"""Walkthrough of the paper's Figure 1: counting augmenting paths by
message passing (Claims B.5 and B.6).

The CONGEST (1+ε) matching algorithm cannot enumerate augmenting paths
(there can be Δ^ℓ of them), so it *counts* them with two BFS-style
sweeps: a forward traversal that leaves, at every free B-node, the
number of shortest augmenting paths ending there, and a backward
traversal that splits those numbers proportionally so every node learns
how many paths run through it.  This script builds a Figure-1-style
instance, runs both traversals, prints the numbers next to a brute-force
enumeration, and then shows the attenuated version (path *probabilities*
instead of counts) that drives the real algorithm.

Run:  python examples/figure1_walkthrough.py
"""

from __future__ import annotations

import networkx as nx

from repro.analysis import render_table
from repro.core import BipartiteAugmentingPhase, enumerate_augmenting_paths
from repro.matching import bipartite_sides


def build_instance():
    g = nx.Graph()
    for i in range(5):
        g.add_node(f"a{i}", side="A")
        g.add_node(f"b{i}", side="B")
    g.add_edges_from([
        ("a0", "b0"), ("a0", "b1"), ("a4", "b1"), ("a4", "b2"),
        ("a1", "b0"), ("a2", "b1"), ("a3", "b2"),
        ("a1", "b3"), ("a1", "b4"), ("a2", "b3"), ("a3", "b4"),
    ])
    matching = {frozenset(("a1", "b0")), frozenset(("a2", "b1")),
                frozenset(("a3", "b2"))}
    return g, matching


def main() -> None:
    graph, matching = build_instance()
    a_side, b_side = bipartite_sides(graph)
    print("bipartite instance: free A = {a0, a4}, free B = {b3, b4}, "
          "matched pairs (a1,b0) (a2,b1) (a3,b2)")

    paths = enumerate_augmenting_paths(graph, matching, 3)
    print(f"\nbrute-force: {len(paths)} augmenting paths of length 3:")
    for p in paths:
        print("  " + " - ".join(p))

    phase = BipartiteAugmentingPhase(graph, a_side, b_side, matching,
                                     d=3, eps=0.5, seed=0)

    # --- Claim B.5/B.6 with α ≡ 1: exact counts -----------------------
    counts, contrib, raw = phase._forward(phase.scope, use_alpha=False)
    through = phase._backward(counts, contrib, raw)
    rows = [
        {"node": v,
         "ends_here (fwd, B.5)": counts.get(v, 0.0),
         "runs_through (bwd, B.6)": through.get(v, 0.0)}
        for v in sorted(graph.nodes)
    ]
    print()
    print(render_table(rows, title="traversal with attenuation 1 "
                                   "(= path counts, cf. Figure 1)"))

    # --- the attenuated version the algorithm actually runs -----------
    mass, contrib, raw = phase._forward(phase.scope)
    through_mass = phase._backward(mass, contrib, raw)
    rows = [
        {"node": v,
         "path_probability_mass": through_mass.get(v, 0.0),
         "attenuation": phase.alpha.get(v, 1.0)}
        for v in sorted(graph.nodes)
    ]
    print()
    print(render_table(rows, title="attenuated traversal (marking "
                                   "probabilities, α0 = 1/K on free "
                                   "A-nodes)"))

    # Sanity: counts match brute force.
    per_node = {}
    for p in paths:
        for v in p:
            per_node[v] = per_node.get(v, 0) + 1
    for v, count in per_node.items():
        assert abs(through.get(v, 0) - count) < 1e-9
    print("\nforward/backward counts match brute-force enumeration ✓")


if __name__ == "__main__":
    main()
