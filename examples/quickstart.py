"""Quickstart: the library in five minutes.

Builds a small weighted network and runs the paper's main algorithms —
all through the unified facade: one :class:`repro.api.Instance`, one
:func:`repro.api.solve` call per algorithm, one
:class:`repro.api.SolveReport` back.  ``report.compare()`` checks each
run against the exact optimum.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import Instance, solve
from repro.graphs import (
    assign_edge_weights,
    assign_node_weights,
    gnp_graph,
    max_degree,
)


def main() -> None:
    # A 24-node random network with node weights in [1, 64] (think:
    # value of activating each station) and edge weights in [1, 64]
    # (think: value of pairing two stations).
    graph = gnp_graph(24, 0.18, seed=7)
    assign_node_weights(graph, 64, seed=8)
    assign_edge_weights(graph, 64, seed=9)
    delta = max_degree(graph)
    print(f"network: n={graph.number_of_nodes()}, "
          f"m={graph.number_of_edges()}, Δ={delta}")

    # --- Maximum weight independent set, Δ-approximation -------------
    layered = solve(Instance(graph, seed=1), "maxis-layers")
    colored = solve(Instance(graph), "maxis-coloring")
    print("\nMaxIS (guarantee: Δ-approximation =", delta, ")")
    print(f"  Algorithm 2 (randomized): weight {layered.objective} "
          f"(ratio {layered.compare()['ratio']:.2f}) "
          f"in {layered.rounds} rounds")
    print(f"  Algorithm 3 (deterministic): weight {colored.objective} "
          f"(ratio {colored.compare()['ratio']:.2f}) "
          f"in {colored.rounds} rounds (accounted)")

    # --- Maximum weight matching, 2-approximation ---------------------
    two_approx = solve(Instance(graph, seed=2), "matching-lines")
    print("\nMWM via MaxIS on the line graph (guarantee: 2-approx)")
    print(f"  weight {two_approx.objective} "
          f"(ratio {two_approx.compare()['ratio']:.2f}) "
          f"in {two_approx.rounds} rounds")

    # --- Fast (2+ε) weighted matching ---------------------------------
    fast = solve(Instance(graph, eps=0.5, seed=3),
                 "matching-fast2eps-weighted")
    print("\nFast MWM (guarantee: (2+ε)-approx, ε=0.5, "
          "O(log Δ/log log Δ) rounds)")
    print(f"  weight {fast.objective} "
          f"(ratio {fast.compare()['ratio']:.2f}) "
          f"in {fast.rounds} rounds")

    # --- (1+ε) maximum cardinality matching ---------------------------
    one_eps = solve(Instance(graph, eps=0.5, seed=4), "matching-oneeps")
    comparison = one_eps.compare()
    print("\nMCM via Hopcroft–Karp phases (guarantee: (1+ε)-approx)")
    print(f"  {one_eps.size} edges vs optimum {comparison['optimum']} "
          f"({len(one_eps.extras['deactivated'])} nodes deactivated) "
          f"in {one_eps.rounds} rounds")


if __name__ == "__main__":
    main()
