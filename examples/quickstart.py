"""Quickstart: the library in five minutes.

Builds a small weighted network, runs the paper's main algorithms, and
prints what each one guarantees vs. what it achieved.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import approximation_ratio
from repro.core import (
    fast_matching_weighted_2eps,
    local_matching_1eps,
    matching_local_ratio,
    maxis_local_ratio_coloring,
    maxis_local_ratio_layers,
)
from repro.graphs import (
    assign_edge_weights,
    assign_node_weights,
    gnp_graph,
    max_degree,
)
from repro.matching import optimum_cardinality, optimum_weight
from repro.mis import exact_mwis, mwis_weight


def main() -> None:
    # A 24-node random network with node weights in [1, 64] (think:
    # value of activating each station) and edge weights in [1, 64]
    # (think: value of pairing two stations).
    graph = gnp_graph(24, 0.18, seed=7)
    assign_node_weights(graph, 64, seed=8)
    assign_edge_weights(graph, 64, seed=9)
    delta = max_degree(graph)
    print(f"network: n={graph.number_of_nodes()}, "
          f"m={graph.number_of_edges()}, Δ={delta}")

    # --- Maximum weight independent set, Δ-approximation -------------
    optimum = mwis_weight(graph, exact_mwis(graph))
    layered = maxis_local_ratio_layers(graph, seed=1)
    colored = maxis_local_ratio_coloring(graph)
    print("\nMaxIS (guarantee: Δ-approximation =", delta, ")")
    print(f"  Algorithm 2 (randomized): weight {layered.weight} "
          f"(ratio {approximation_ratio(optimum, layered.weight):.2f}) "
          f"in {layered.rounds} rounds")
    print(f"  Algorithm 3 (deterministic): weight {colored.weight} "
          f"(ratio {approximation_ratio(optimum, colored.weight):.2f}) "
          f"in {colored.accounted_rounds} rounds (accounted)")

    # --- Maximum weight matching, 2-approximation ---------------------
    opt_weight = optimum_weight(graph)
    two_approx = matching_local_ratio(graph, method="layers", seed=2)
    print("\nMWM via MaxIS on the line graph (guarantee: 2-approx)")
    print(f"  weight {two_approx.weight} "
          f"(ratio {approximation_ratio(opt_weight, two_approx.weight):.2f}) "
          f"in {two_approx.rounds} rounds")

    # --- Fast (2+ε) weighted matching ---------------------------------
    fast = fast_matching_weighted_2eps(graph, eps=0.5, seed=3)
    print("\nFast MWM (guarantee: (2+ε)-approx, ε=0.5, "
          "O(log Δ/log log Δ) rounds)")
    print(f"  weight {fast.weight} "
          f"(ratio {approximation_ratio(opt_weight, fast.weight):.2f}) "
          f"in {fast.rounds} rounds")

    # --- (1+ε) maximum cardinality matching ---------------------------
    opt_card = optimum_cardinality(graph)
    one_eps = local_matching_1eps(graph, eps=0.5, seed=4)
    print("\nMCM via Hopcroft–Karp phases (guarantee: (1+ε)-approx)")
    print(f"  {one_eps.cardinality} edges vs optimum {opt_card} "
          f"({len(one_eps.deactivated)} nodes deactivated) "
          f"in {one_eps.rounds} rounds")


if __name__ == "__main__":
    main()
