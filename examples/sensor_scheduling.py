"""Sensor activation scheduling via distributed MaxIS.

Scenario: a field of battery-powered sensors with overlapping coverage.
Two overlapping sensors interfere, so the active set must be independent
in the interference graph; each sensor's weight is its remaining battery
times its coverage value.  Activating a Δ-approximate maximum weight
independent set — computed *by the sensors themselves* in a few
communication rounds — is exactly the paper's Algorithm 2/3.

The script also demonstrates the Section 1.1 pitfall: letting every
sensor apply the local-ratio reduction simultaneously (no independent
set discipline) can end with *nothing* activated on a star-shaped
interference pattern, which is why the algorithms select an independent
set of reducers per phase.

Run:  python examples/sensor_scheduling.py
"""

from __future__ import annotations

import networkx as nx

from repro.api import Instance, solve
from repro.graphs import assign_node_weights, max_degree, star_graph
from repro.mis import mwis_weight
from repro.utils import stable_rng


def build_sensor_field(n: int = 60, radius: float = 0.18,
                       seed: int = 5) -> nx.Graph:
    """Random geometric interference graph with battery-value weights."""

    rng = stable_rng(seed, "sensors")
    positions = {i: (rng.random(), rng.random()) for i in range(n)}
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            dx = positions[u][0] - positions[v][0]
            dy = positions[u][1] - positions[v][1]
            if dx * dx + dy * dy <= radius * radius:
                graph.add_edge(u, v)
    for v in range(n):
        battery = rng.randint(1, 8)
        value = rng.randint(1, 8)
        graph.nodes[v]["weight"] = battery * value
    return graph


def naive_simultaneous_reduction(graph: nx.Graph) -> set:
    """The §1.1 anti-pattern: every node reduces at once.

    Every node subtracts, in one shot, the weights of all its neighbors
    from its own; only nodes left positive activate.  On a star whose
    hub outweighs each leaf but not their sum, *nobody* survives.
    """

    from repro.graphs import node_weight

    survivors = set()
    for v in graph.nodes:
        reduced = node_weight(graph, v) - sum(
            node_weight(graph, u) for u in graph.neighbors(v)
        )
        if reduced > 0:
            survivors.add(v)
    # Survivors might conflict; keep a greedy independent subset.
    chosen = set()
    for v in sorted(survivors, key=repr):
        if not any(u in chosen for u in graph.neighbors(v)):
            chosen.add(v)
    return chosen


def main() -> None:
    field = build_sensor_field()
    delta = max_degree(field)
    print(f"sensor field: {field.number_of_nodes()} sensors, "
          f"{field.number_of_edges()} interference pairs, Δ={delta}")

    layered = solve(Instance(field, seed=1), "maxis-layers")
    colored = solve(Instance(field), "maxis-coloring")
    print(f"\nAlgorithm 2 activates {layered.size} sensors "
          f"(total value {layered.objective}) in {layered.rounds} rounds")
    print(f"Algorithm 3 activates {colored.size} sensors "
          f"(total value {colored.objective}), deterministic")

    if field.number_of_nodes() <= 60:
        comparison = layered.compare()
        print(f"exact optimum value: {comparison['optimum']} "
              f"(Alg.2 ratio {comparison['ratio']:.2f}, "
              f"guarantee {delta})")

    # ------------------------------------------------------------------
    print("\n--- the §1.1 pitfall on a star-shaped interference graph ---")
    star = assign_node_weights(star_graph(6), 40, scheme="star-trap")
    naive = naive_simultaneous_reduction(star)
    principled = solve(Instance(star, seed=2), "maxis-layers")
    print(f"naive simultaneous reduction activates: {sorted(naive)}  "
          f"(value {mwis_weight(star, naive)})")
    print(f"Algorithm 2 activates: "
          f"{sorted(principled.solution)}  "
          f"(value {principled.objective})")
    assert principled.objective > mwis_weight(star, naive), (
        "the independent-set discipline must beat the naive reduction"
    )


if __name__ == "__main__":
    main()
