"""Spectrum-sharing pairings via distributed weighted matching.

Scenario: radios in a mesh network can pair up to share a wideband
channel; the value of pairing two radios is their measured link quality
(a few links are exceptionally good — a bimodal weight profile).  The
controller-free way to pick pairings is distributed maximum weight
matching on the link graph.

This is the workload where *weight-oblivious* maximal matching (the
classical O(log n) baseline) does badly — it happily matches junk links
and blocks the good ones — while the paper's local-ratio 2-approximation
and the (2+ε) algorithm keep their guarantees.

Run:  python examples/spectrum_pairing.py
"""

from __future__ import annotations

from repro.analysis import approximation_ratio
from repro.api import Instance, solve
from repro.graphs import assign_edge_weights, gnp_graph
from repro.matching import matching_weight, optimum_weight


def main() -> None:
    mesh = assign_edge_weights(
        gnp_graph(40, 0.12, seed=21), 500, scheme="bimodal", seed=22,
    )
    print(f"mesh: {mesh.number_of_nodes()} radios, "
          f"{mesh.number_of_edges()} candidate links "
          f"(weights 1 or 500)")

    optimum = optimum_weight(mesh)
    print(f"\noracle (Edmonds): total link quality {optimum}")

    local_ratio = solve(Instance(mesh, seed=1), "matching-lines")
    print(f"local-ratio 2-approx (Thm 2.10): quality "
          f"{local_ratio.objective} "
          f"(ratio {local_ratio.compare()['ratio']:.2f})"
          f" in {local_ratio.rounds} rounds")

    fast = solve(Instance(mesh, eps=0.5, seed=2),
                 "matching-fast2eps-weighted")
    print(f"fast (2+ε)-approx (Appendix B.1): quality {fast.objective} "
          f"(ratio {fast.compare()['ratio']:.2f}) "
          f"in {fast.rounds} rounds")

    oblivious = solve(Instance(mesh, seed=3), "matching-israeli-itai")
    oblivious_weight = matching_weight(mesh, oblivious.solution)
    print(f"weight-oblivious maximal matching: quality "
          f"{oblivious_weight} "
          f"(ratio {approximation_ratio(optimum, oblivious_weight):.2f}) "
          f"in {oblivious.rounds} rounds")

    assert 2 * local_ratio.objective >= optimum
    assert 2.5 * fast.objective >= optimum
    if oblivious_weight < local_ratio.objective:
        gain = local_ratio.objective / max(1, oblivious_weight)
        print(f"\nweight-aware pairing carries {gain:.1f}x the quality "
              f"of the weight-oblivious schedule")


if __name__ == "__main__":
    main()
