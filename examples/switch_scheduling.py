"""Crossbar switch scheduling via distributed bipartite matching.

Scenario: an input-queued network switch must, every scheduling epoch,
connect input ports to output ports — a bipartite matching — and wants
to serve as many (or as heavily backlogged) queues as possible.  Port
controllers can only talk to ports they share a queue with, which is
exactly the CONGEST model on the bipartite demand graph.

This example schedules one epoch three ways:

* the Appendix B.4 proposal algorithm (a handful of rounds, (2+ε)),
* the Appendix B.3 (1+ε) augmenting-path algorithm,
* the sequential Hopcroft–Karp optimum as the oracle.

Run:  python examples/switch_scheduling.py
"""

from __future__ import annotations

import networkx as nx

from repro.api import Instance, solve
from repro.graphs import random_bipartite_graph
from repro.matching import bipartite_sides, hopcroft_karp
from repro.utils import stable_rng


def build_demand_graph(ports: int = 24, load: float = 0.2,
                       seed: int = 11) -> nx.Graph:
    """Bipartite demand graph: edge (i, o) ⇔ input i has cells for
    output o; edge weight = queue length."""

    graph = random_bipartite_graph(ports, ports, load, seed=seed)
    rng = stable_rng(seed, "queues")
    for u, v in graph.edges:
        graph.edges[u, v]["weight"] = rng.randint(1, 16)
    return graph


def main() -> None:
    demand = build_demand_graph()
    left, right = bipartite_sides(demand)
    print(f"switch: {len(left)}x{len(right)} ports, "
          f"{demand.number_of_edges()} non-empty queues")

    optimum = hopcroft_karp(demand)
    print(f"\noracle (sequential Hopcroft–Karp): {len(optimum)} "
          f"connections")

    proposal = solve(Instance(demand, eps=0.25, seed=1),
                     "matching-proposal-bipartite")
    print(f"proposal algorithm (Lemma B.13): {proposal.size} "
          f"connections in {proposal.rounds} rounds "
          f"({len(proposal.extras['unlucky'])} unlucky ports)")

    one_eps = solve(Instance(demand, eps=0.5, seed=2),
                    "matching-oneeps-bipartite")
    deactivated = one_eps.extras["deactivated"]
    print(f"(1+ε) augmenting-path algorithm (Appendix B.3): "
          f"{one_eps.size} connections "
          f"({len(deactivated)} ports deactivated)")

    # Sanity: the distributed schedules are real matchings and within
    # their factors of the oracle (report.bound is 2+ε and 1+ε).
    assert proposal.bound * proposal.size >= len(optimum)
    assert one_eps.bound * (one_eps.size + len(deactivated)) >= len(optimum)
    served = one_eps.size / max(1, len(optimum))
    print(f"\n(1+ε) schedule serves {served:.0%} of the optimal "
          f"connection count")


if __name__ == "__main__":
    main()
