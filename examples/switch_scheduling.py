"""Crossbar switch scheduling via distributed bipartite matching.

Scenario: an input-queued network switch must, every scheduling epoch,
connect input ports to output ports — a bipartite matching — and wants
to serve as many (or as heavily backlogged) queues as possible.  Port
controllers can only talk to ports they share a queue with, which is
exactly the CONGEST model on the bipartite demand graph.

This example schedules one epoch three ways:

* the Appendix B.4 proposal algorithm (a handful of rounds, (2+ε)),
* the Appendix B.3 (1+ε) augmenting-path algorithm,
* the sequential Hopcroft–Karp optimum as the oracle.

Run:  python examples/switch_scheduling.py
"""

from __future__ import annotations

import networkx as nx

from repro.core import bipartite_matching_1eps, bipartite_proposal_matching
from repro.graphs import random_bipartite_graph
from repro.matching import bipartite_sides, hopcroft_karp
from repro.utils import stable_rng


def build_demand_graph(ports: int = 24, load: float = 0.2,
                       seed: int = 11) -> nx.Graph:
    """Bipartite demand graph: edge (i, o) ⇔ input i has cells for
    output o; edge weight = queue length."""

    graph = random_bipartite_graph(ports, ports, load, seed=seed)
    rng = stable_rng(seed, "queues")
    for u, v in graph.edges:
        graph.edges[u, v]["weight"] = rng.randint(1, 16)
    return graph


def main() -> None:
    demand = build_demand_graph()
    left, right = bipartite_sides(demand)
    print(f"switch: {len(left)}x{len(right)} ports, "
          f"{demand.number_of_edges()} non-empty queues")

    optimum = hopcroft_karp(demand)
    print(f"\noracle (sequential Hopcroft–Karp): {len(optimum)} "
          f"connections")

    proposal = bipartite_proposal_matching(demand, left, right,
                                           eps=0.25, seed=1)
    print(f"proposal algorithm (Lemma B.13): {len(proposal.matching)} "
          f"connections in {proposal.rounds} rounds "
          f"({len(proposal.unlucky)} unlucky ports)")

    one_eps, deactivated = bipartite_matching_1eps(
        demand, left, right, eps=0.5, seed=2,
    )
    print(f"(1+ε) augmenting-path algorithm (Appendix B.3): "
          f"{len(one_eps)} connections "
          f"({len(deactivated)} ports deactivated)")

    # Sanity: the distributed schedules are real matchings and within
    # their factors of the oracle.
    assert 2.25 * len(proposal.matching) >= len(optimum)
    assert 1.5 * (len(one_eps) + len(deactivated)) >= len(optimum)
    served = len(one_eps) / max(1, len(optimum))
    print(f"\n(1+ε) schedule serves {served:.0%} of the optimal "
          f"connection count")


if __name__ == "__main__":
    main()
