"""Legacy setup shim.

Metadata lives in pyproject.toml (PEP 621); this file exists so that
``pip install -e .`` works in offline environments where PEP 517 build
isolation cannot download its build dependencies.
"""

from setuptools import setup

setup()
