"""repro — reproduction of Bar-Yehuda, Censor-Hillel, Ghaffari, Schwartzman:
*Distributed Approximation of Maximum Independent Set and Maximum Matching*
(PODC 2017, arXiv:1708.00276).

Subpackages
-----------
``repro.congest``   — synchronous LOCAL/CONGEST message-passing simulator.
``repro.graphs``    — workload generators, weights, validators.
``repro.mis``       — MIS/coloring substrates (Luby, Ghaffari, Linial, …).
``repro.matching``  — matching baselines and exact oracles.
``repro.core``      — the paper's algorithms (Algorithms 1–3, Theorems
                      2.8–2.10, 3.1–3.2, B.4, B.12, Lemmas B.13–B.14).
``repro.analysis``  — experiment statistics, tables and series builders.
``repro.api``       — the unified solver facade: ``Instance`` +
                      ``solve()`` + ``SolveReport`` over the algorithm
                      registry (the preferred entry point).
``repro.dynamic``   — dynamic graphs under churn: typed mutation
                      batches, the compatible-mutation resume policy
                      and the incremental re-solve driver.
``repro.experiments`` — experiment registry, deterministic runner and
                      versioned ``BENCH_*.json`` artifacts (imported
                      lazily; see ``python -m repro bench --list``).

Quickstart::

    from repro.api import Instance, solve
    from repro.graphs import gnp_graph, assign_node_weights

    g = assign_node_weights(gnp_graph(100, 0.05, seed=1), 64, seed=2)
    report = solve(Instance(g, seed=3), "maxis-layers")
    print(report.size, report.rounds)
"""

from . import analysis, congest, core, graphs, matching, mis
from . import api
from . import dynamic
from .errors import (
    AlgorithmContractViolation,
    BandwidthViolation,
    InvalidInstance,
    InvalidMutation,
    ReproError,
    RoundLimitExceeded,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "AlgorithmContractViolation",
    "BandwidthViolation",
    "InvalidInstance",
    "InvalidMutation",
    "ReproError",
    "RoundLimitExceeded",
    "SimulationError",
    "analysis",
    "api",
    "congest",
    "core",
    "dynamic",
    "graphs",
    "matching",
    "mis",
]
