"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``maxis``     run a MaxIS algorithm on a generated workload
``matching``  run a matching algorithm on a generated workload
``resume``    continue a truncated run from a ``--save-state`` file
``serve``     run the long-lived solver service (HTTP job daemon with
              SLA budgets, checkpoint streaming, crash-safe resume)
``bench``     run a registered experiment and emit a JSON artifact
``info``      print the library's algorithm inventory (``--json`` for
              the machine-readable :mod:`repro.api` registry)

The ``maxis`` and ``matching`` commands are thin views over the
:mod:`repro.api` algorithm registry: every ``--algorithm`` choice is a
registered :class:`~repro.api.AlgorithmSpec`, dispatched through
:func:`repro.api.solve`.  With ``--max-rounds`` a run may stop early
(``status=truncated``); adding ``--save-state FILE`` persists the
checkpoint, and ``python -m repro resume FILE`` warm-starts from it —
optionally under a new (cumulative) ``--max-rounds`` budget, hopping as
many times as needed until the run completes.  ``--backend array``
selects the vectorized simulator backend (results are bit-identical;
resume files are backend-agnostic).

Examples::

    python -m repro maxis --algorithm layers --nodes 60 --max-weight 64
    python -m repro maxis --nodes 200 --max-rounds 6 --save-state cp.json
    python -m repro resume cp.json --max-rounds 12 --save-state cp.json
    python -m repro resume cp.json
    python -m repro matching --algorithm fast2eps --nodes 40 --eps 0.5
    python -m repro matching --algorithm oneeps --nodes 30 --export out.csv
    python -m repro info --json
    python -m repro bench --list
    python -m repro bench smoke --json -
    python -m repro bench table1 --section t1_1a --output out/table1.json
    python -m repro bench --validate BENCH_smoke.json
    python -m repro bench --diff OLD_perf.json NEW_perf.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .analysis import render_artifact, render_table, write_rows
from .api import cli_names, list_algorithms, solve
from .api.persist import (
    RESUME_FILE_FORMAT,
    instance_from_workload,
    resume_envelope,
    write_envelope,
)
from .congest import BACKENDS

MAXIS_ALGORITHMS = cli_names("maxis")
MATCHING_ALGORITHMS = cli_names("matching")

#: Exact oracles are exponential (MWIS) or cubic (Edmonds); cap where we
#: compute reference optima by default.
ORACLE_NODE_LIMIT = 60


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed MaxIS / matching approximation "
                    "(Bar-Yehuda et al., PODC 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def run_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--export", type=str, default=None,
                       help="write the result row to a .csv/.json file")
        p.add_argument("--skip-oracle", action="store_true",
                       help="skip the exact-optimum comparison")
        p.add_argument("--max-rounds", type=int, default=None,
                       metavar="K",
                       help="hard round budget: the run stops at K "
                            "rounds with status=truncated instead of "
                            "finishing (cumulative across resume hops)")
        p.add_argument("--save-state", type=str, default=None,
                       metavar="FILE",
                       help="if the run truncates, persist its resume "
                            "state to FILE (continue it with "
                            "'python -m repro resume FILE')")
        p.add_argument("--backend", choices=BACKENDS, default=None,
                       help="simulator backend (default: object engine, "
                            "or the REPRO_BACKEND environment variable; "
                            "'array' vectorizes ported algorithms, "
                            "bit-identical results)")

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--nodes", type=int, default=40)
        p.add_argument("--edge-probability", type=float, default=0.12)
        p.add_argument("--max-weight", type=int, default=64)
        p.add_argument("--seed", type=int, default=0)
        run_options(p)

    maxis = sub.add_parser("maxis", help="maximum weight independent set")
    maxis.add_argument("--algorithm", choices=MAXIS_ALGORITHMS,
                       default="layers")
    common(maxis)

    matching = sub.add_parser("matching", help="maximum (weight) matching")
    matching.add_argument("--algorithm", choices=MATCHING_ALGORITHMS,
                          default="lines")
    matching.add_argument("--eps", type=float, default=0.5)
    common(matching)

    resume = sub.add_parser(
        "resume",
        help="continue a truncated run from a --save-state file",
        description="Warm-start a run persisted by --save-state: the "
                    "workload is regenerated deterministically from the "
                    "recipe in the file, and the algorithm continues "
                    "from the captured checkpoint as if it had never "
                    "stopped (--max-rounds extends the cumulative "
                    "budget; omit it to run to completion).",
    )
    resume.add_argument("state", metavar="FILE",
                        help="resume file written by --save-state")
    run_options(resume)

    bench = sub.add_parser(
        "bench",
        help="run a registered experiment and emit a BENCH_<name>.json "
             "artifact",
    )
    bench.add_argument("experiment", nargs="?", default=None,
                       help="experiment name (see --list)")
    bench.add_argument("--list", action="store_true", dest="list_specs",
                       help="list registered experiments and exit")
    bench.add_argument("--section", action="append", default=None,
                       help="run only this section (repeatable)")
    bench.add_argument("--json", dest="json_out", default=None,
                       metavar="PATH",
                       help="write the JSON artifact to PATH; '-' emits "
                            "pure JSON on stdout and suppresses the "
                            "rendered tables")
    bench.add_argument("--output", default=None, metavar="PATH",
                       help="artifact path (default BENCH_<name>.json; "
                            "alias of --json PATH, pass only one)")
    bench.add_argument("--no-artifact", action="store_true",
                       help="do not write any artifact file")
    bench.add_argument("--timing", action="store_true",
                       help="include wall-clock timing in the artifact "
                            "(breaks byte-determinism; off by default)")
    bench.add_argument("--workers", type=int, default=None, metavar="N",
                       help="fan trials across N worker processes "
                            "(default serial; artifacts are "
                            "byte-identical at any worker count)")
    bench.add_argument("--backend", choices=("process", "thread"),
                       default="process",
                       help="pool backend for --workers (default process)")
    bench.add_argument("--repeat", type=int, default=1, metavar="N",
                       help="with --timing, execute each section N times "
                            "and report p50/p95 instead of one sample")
    bench.add_argument("--validate", default=None, metavar="FILE",
                       help="validate an existing artifact file and exit")
    bench.add_argument("--render", default=None, metavar="FILE",
                       help="render an existing artifact file as tables "
                            "and exit (no experiment is run)")
    bench.add_argument("--diff", nargs=2, default=None,
                       metavar=("OLD", "NEW"),
                       help="diff two artifact files (check regressions, "
                            "row drift, timing trends) and exit; non-zero "
                            "exit iff a check regressed")

    info = sub.add_parser("info", help="print the algorithm inventory")
    info.add_argument("--json", action="store_true", dest="json_registry",
                      help="emit the machine-readable algorithm registry")

    serve = sub.add_parser(
        "serve",
        help="run the long-lived solver service (HTTP job daemon)",
        description="Async HTTP daemon over the anytime/resume stack: "
                    "POST /jobs submits a workload spec (optionally "
                    "with max_rounds / time_budget_s SLA budgets), "
                    "GET /jobs/<id> polls the latest checkpoint, "
                    "GET /jobs/<id>/stream follows per-phase progress, "
                    "and --state-dir journals every checkpoint so a "
                    "killed daemon restarts bit-identically.",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="bind port (default 8765; 0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=2, metavar="N",
                       help="solver worker threads (default 2)")
    serve.add_argument("--state-dir", default=None, metavar="DIR",
                       help="journal directory for crash-safe resume "
                            "(no persistence when omitted)")
    serve.add_argument("--cache-size", type=int, default=128,
                       metavar="N",
                       help="result-cache capacity (default 128; "
                            "0 disables caching)")
    serve.add_argument("--phase-delay", type=float, default=0.0,
                       metavar="SECONDS",
                       help="sleep after every checkpoint (test knob "
                            "for interruption scenarios; default 0)")
    serve.add_argument("--fault-plan", default=None, metavar="FILE",
                       help="arm the deterministic fault-injection "
                            "plane from a repro-fault-plan/1 JSON "
                            "file (chaos drills; default off)")
    serve.add_argument("--watchdog", type=float, default=None,
                       metavar="SECONDS",
                       help="truncate a job to its best certified "
                            "partial after this long without progress "
                            "(default: no watchdog)")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       metavar="SECONDS",
                       help="graceful-drain budget on SIGTERM/SIGINT: "
                            "running jobs checkpoint and journal "
                            "before exit (default 10)")
    serve.add_argument("--journal-retain", type=int, default=None,
                       metavar="N",
                       help="compact the journal on startup recovery: "
                            "keep at most N terminal-job files on disk "
                            "(default: keep everything)")
    return parser


def _instance_from_workload(workload: dict, args: argparse.Namespace):
    """Rebuild the CLI's deterministic instance from a workload recipe."""

    return instance_from_workload(workload, backend=args.backend,
                                  max_rounds=args.max_rounds)


def _oracle_wanted(workload: dict, args: argparse.Namespace) -> bool:
    return not args.skip_oracle and (
        workload["problem"] != "maxis"
        or workload["nodes"] <= ORACLE_NODE_LIMIT
    )


def _save_state(path: str, workload: dict, report) -> None:
    """Persist a truncated report's resume envelope (or explain why not)."""

    if report.status != "truncated":
        print(f"run completed; no state written to {path}")
        return
    if report.resume_state is None:
        print("truncated run carries no resume state; nothing written",
              file=sys.stderr)
        return
    write_envelope(path, resume_envelope(workload, report.resume_state))
    print(f"resume state written to {path} "
          f"(continue with: python -m repro resume {path})")


def _run_problem(args: argparse.Namespace, problem: str) -> dict:
    """Run one registered algorithm on a generated workload.

    Thin view over :func:`repro.api.solve`: the graph/weight/algorithm
    seed layout (``seed``, ``seed+1``, ``seed+2``) is preserved by
    :func:`repro.api.random_instance`, so results match the historical
    per-algorithm dispatch bit-for-bit.
    """

    workload = {
        "problem": problem,
        "nodes": args.nodes,
        "edge_probability": args.edge_probability,
        "max_weight": args.max_weight,
        "seed": args.seed,
        "eps": getattr(args, "eps", 0.5),
    }
    instance = _instance_from_workload(workload, args)
    report = solve(instance, args.algorithm, problem=problem)
    if args.save_state is not None:
        _save_state(args.save_state, workload, report)
    return report.as_row(oracle=_oracle_wanted(workload, args))


def _run_resume(args: argparse.Namespace) -> int:
    """``python -m repro resume FILE``: warm-start a persisted run."""

    from .api.persist import load_envelope, resume_envelope_report
    from .errors import ResumeError

    try:
        envelope = load_envelope(args.state)
        report = resume_envelope_report(envelope, backend=args.backend,
                                        max_rounds=args.max_rounds)
    except ResumeError as exc:
        print(f"resume: {exc}", file=sys.stderr)
        return 1
    workload = envelope["workload"]
    if args.save_state is not None:
        _save_state(args.save_state, workload, report)
    row = report.as_row(oracle=_oracle_wanted(workload, args))
    print(render_table([row]))
    if args.export:
        path = write_rows([row], args.export)
        print(f"exported to {path}")
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    from .experiments import (
        Runner,
        artifact_to_json,
        get_experiment,
        list_experiments,
        load_artifact,
        validate_artifact,
        write_artifact,
    )

    if args.diff is not None:
        from .experiments import diff_artifacts, render_diff

        artifacts = []
        for path in args.diff:
            try:
                artifacts.append(load_artifact(path))
            except (OSError, ValueError) as exc:
                print(f"bench: cannot read artifact {path!r}: {exc}",
                      file=sys.stderr)
                return 1
        diff = diff_artifacts(*artifacts)
        print(render_diff(diff))
        return 1 if diff["regression_count"] else 0

    if args.validate is not None or args.render is not None:
        path = args.validate if args.validate is not None else args.render
        try:
            artifact = load_artifact(path)
        except (OSError, ValueError) as exc:
            print(f"bench: cannot read artifact {path!r}: {exc}",
                  file=sys.stderr)
            return 1
        if args.render is not None:
            print(render_artifact(artifact))
            return 0
        problems = validate_artifact(artifact)
        if problems:
            for problem in problems:
                print(f"invalid: {problem}", file=sys.stderr)
            return 1
        print(f"{args.validate}: valid artifact")
        return 0

    if args.list_specs:
        rows = [
            {
                "experiment": spec.name,
                "sections": len(spec.sections),
                "tags": ",".join(spec.tags),
                "title": spec.title,
            }
            for spec in list_experiments()
        ]
        print(render_table(rows, title="registered experiments"))
        return 0

    if args.experiment is None:
        print("bench: name an experiment or pass --list / --validate",
              file=sys.stderr)
        return 2

    from .experiments import UnknownExperiment

    try:
        spec = get_experiment(args.experiment)
        for name in args.section or ():
            spec.section(name)  # validate names before running anything
    except (UnknownExperiment, KeyError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"bench: {message}", file=sys.stderr)
        return 2

    if args.json_out not in (None, "-") and args.output is not None:
        print("bench: pass either --json PATH or --output PATH, not both",
              file=sys.stderr)
        return 2

    if args.repeat != 1 and not args.timing:
        print("bench: --repeat only makes sense with --timing",
              file=sys.stderr)
        return 2

    artifact = Runner(spec, timing=args.timing, workers=args.workers,
                      backend=args.backend,
                      repeat=args.repeat).run(args.section)

    if args.json_out == "-":
        print(artifact_to_json(artifact), end="")
        return 0 if artifact["summary"]["passed"] else 1

    print(render_artifact(artifact))
    if not args.no_artifact:
        path = write_artifact(artifact, args.json_out or args.output)
        print(f"artifact written to {path}")
    return 0 if artifact["summary"]["passed"] else 1


def _info(as_json: bool = False) -> str:
    """Render the :mod:`repro.api` registry (table or JSON)."""

    from .api import registry_as_json

    if as_json:
        return json.dumps(registry_as_json(), indent=2, sort_keys=True)
    rows = [
        {
            "command": (f"{spec.problem} --algorithm {spec.cli}"
                        if spec.cli is not None
                        else f"solve(·, {spec.name!r})"),
            "paper": spec.paper,
            "guarantee": spec.guarantee,
        }
        for spec in list_algorithms()
    ]
    return render_table(rows, title="repro algorithm inventory")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "info":
        print(_info(as_json=args.json_registry))
        return 0
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "resume":
        return _run_resume(args)
    if args.command == "serve":
        from .serve import main as serve_main

        return serve_main(args)
    row = _run_problem(args, args.command)
    print(render_table([row]))
    if args.export:
        path = write_rows([row], args.export)
        print(f"exported to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
