"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``maxis``     run a MaxIS algorithm on a generated workload
``matching``  run a matching algorithm on a generated workload
``bench``     run a registered experiment and emit a JSON artifact
``info``      print the library's algorithm inventory

Examples::

    python -m repro maxis --algorithm layers --nodes 60 --max-weight 64
    python -m repro matching --algorithm fast2eps --nodes 40 --eps 0.5
    python -m repro matching --algorithm oneeps --nodes 30 --export out.csv
    python -m repro bench --list
    python -m repro bench smoke --json -
    python -m repro bench table1 --section t1_1a --output out/table1.json
    python -m repro bench --validate BENCH_smoke.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import (
    approximation_ratio,
    render_artifact,
    render_table,
    write_rows,
)
from .core import (
    fast_matching_2eps,
    fast_matching_weighted_2eps,
    general_proposal_matching,
    local_matching_1eps,
    matching_local_ratio,
    maxis_local_ratio_coloring,
    maxis_local_ratio_layers,
    weight_group_matching,
)
from .graphs import (
    assign_edge_weights,
    assign_node_weights,
    gnp_graph,
    max_degree,
)
from .matching import optimum_cardinality, optimum_weight
from .mis import exact_mwis, mwis_weight

MAXIS_ALGORITHMS = ("layers", "coloring")
MATCHING_ALGORITHMS = ("lines", "groups", "fast2eps", "fast2eps-weighted",
                       "oneeps", "proposal")

#: Exact oracles are exponential (MWIS) or cubic (Edmonds); cap where we
#: compute reference optima by default.
ORACLE_NODE_LIMIT = 60


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed MaxIS / matching approximation "
                    "(Bar-Yehuda et al., PODC 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--nodes", type=int, default=40)
        p.add_argument("--edge-probability", type=float, default=0.12)
        p.add_argument("--max-weight", type=int, default=64)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--export", type=str, default=None,
                       help="write the result row to a .csv/.json file")
        p.add_argument("--skip-oracle", action="store_true",
                       help="skip the exact-optimum comparison")

    maxis = sub.add_parser("maxis", help="maximum weight independent set")
    maxis.add_argument("--algorithm", choices=MAXIS_ALGORITHMS,
                       default="layers")
    common(maxis)

    matching = sub.add_parser("matching", help="maximum (weight) matching")
    matching.add_argument("--algorithm", choices=MATCHING_ALGORITHMS,
                          default="lines")
    matching.add_argument("--eps", type=float, default=0.5)
    common(matching)

    bench = sub.add_parser(
        "bench",
        help="run a registered experiment and emit a BENCH_<name>.json "
             "artifact",
    )
    bench.add_argument("experiment", nargs="?", default=None,
                       help="experiment name (see --list)")
    bench.add_argument("--list", action="store_true", dest="list_specs",
                       help="list registered experiments and exit")
    bench.add_argument("--section", action="append", default=None,
                       help="run only this section (repeatable)")
    bench.add_argument("--json", dest="json_out", default=None,
                       metavar="PATH",
                       help="write the JSON artifact to PATH; '-' emits "
                            "pure JSON on stdout and suppresses the "
                            "rendered tables")
    bench.add_argument("--output", default=None, metavar="PATH",
                       help="artifact path (default BENCH_<name>.json; "
                            "alias of --json PATH, pass only one)")
    bench.add_argument("--no-artifact", action="store_true",
                       help="do not write any artifact file")
    bench.add_argument("--timing", action="store_true",
                       help="include wall-clock timing in the artifact "
                            "(breaks byte-determinism; off by default)")
    bench.add_argument("--validate", default=None, metavar="FILE",
                       help="validate an existing artifact file and exit")
    bench.add_argument("--render", default=None, metavar="FILE",
                       help="render an existing artifact file as tables "
                            "and exit (no experiment is run)")

    sub.add_parser("info", help="print the algorithm inventory")
    return parser


def _run_maxis(args: argparse.Namespace) -> dict:
    graph = assign_node_weights(
        gnp_graph(args.nodes, args.edge_probability, seed=args.seed),
        args.max_weight, seed=args.seed + 1,
    )
    if args.algorithm == "layers":
        result = maxis_local_ratio_layers(graph, seed=args.seed + 2)
        rounds = result.rounds
        weight = result.weight
        size = len(result.independent_set)
    else:
        result = maxis_local_ratio_coloring(graph)
        rounds = result.accounted_rounds
        weight = result.weight
        size = len(result.independent_set)
    row = {
        "problem": "maxis",
        "algorithm": args.algorithm,
        "n": args.nodes,
        "delta": max_degree(graph),
        "size": size,
        "weight": weight,
        "rounds": rounds,
        "bound": max(1, max_degree(graph)),
    }
    if not args.skip_oracle and args.nodes <= ORACLE_NODE_LIMIT:
        optimum = mwis_weight(graph, exact_mwis(graph))
        row["optimum"] = optimum
        row["ratio"] = approximation_ratio(optimum, weight)
    return row


def _run_matching(args: argparse.Namespace) -> dict:
    graph = assign_edge_weights(
        gnp_graph(args.nodes, args.edge_probability, seed=args.seed),
        args.max_weight, seed=args.seed + 1,
    )
    weighted_objective = True
    if args.algorithm == "lines":
        result = matching_local_ratio(graph, method="layers",
                                      seed=args.seed + 2)
        matching, weight, rounds = (result.matching, result.weight,
                                    result.rounds)
        bound: float = 2.0
    elif args.algorithm == "groups":
        result = weight_group_matching(graph, seed=args.seed + 2)
        matching, weight, rounds = (result.matching, result.weight,
                                    result.rounds)
        bound = 2.0
    elif args.algorithm == "fast2eps-weighted":
        result = fast_matching_weighted_2eps(graph, eps=args.eps,
                                             seed=args.seed + 2)
        matching, weight, rounds = (result.matching, result.weight,
                                    result.rounds)
        bound = 2.0 + args.eps
    elif args.algorithm == "fast2eps":
        result = fast_matching_2eps(graph, eps=args.eps,
                                    seed=args.seed + 2)
        matching, weight, rounds = (result.matching,
                                    len(result.matching), result.rounds)
        bound = 2.0 + args.eps
        weighted_objective = False
    elif args.algorithm == "oneeps":
        result = local_matching_1eps(graph, eps=args.eps,
                                     seed=args.seed + 2)
        matching, weight, rounds = (result.matching,
                                    result.cardinality, result.rounds)
        bound = 1.0 + args.eps
        weighted_objective = False
    else:  # proposal
        matching, rounds, _ = general_proposal_matching(
            graph, eps=args.eps, seed=args.seed + 2,
        )
        weight = len(matching)
        bound = 2.0 + args.eps
        weighted_objective = False
    row = {
        "problem": "matching",
        "algorithm": args.algorithm,
        "n": args.nodes,
        "delta": max_degree(graph),
        "size": len(matching),
        "objective": weight,
        "rounds": rounds,
        "bound": bound,
    }
    if not args.skip_oracle:
        optimum = (optimum_weight(graph) if weighted_objective
                   else optimum_cardinality(graph))
        row["optimum"] = optimum
        row["ratio"] = approximation_ratio(optimum, weight)
    return row


def _run_bench(args: argparse.Namespace) -> int:
    from .experiments import (
        Runner,
        artifact_to_json,
        get_experiment,
        list_experiments,
        load_artifact,
        validate_artifact,
        write_artifact,
    )

    if args.validate is not None or args.render is not None:
        path = args.validate if args.validate is not None else args.render
        try:
            artifact = load_artifact(path)
        except (OSError, ValueError) as exc:
            print(f"bench: cannot read artifact {path!r}: {exc}",
                  file=sys.stderr)
            return 1
        if args.render is not None:
            print(render_artifact(artifact))
            return 0
        problems = validate_artifact(artifact)
        if problems:
            for problem in problems:
                print(f"invalid: {problem}", file=sys.stderr)
            return 1
        print(f"{args.validate}: valid artifact")
        return 0

    if args.list_specs:
        rows = [
            {
                "experiment": spec.name,
                "sections": len(spec.sections),
                "tags": ",".join(spec.tags),
                "title": spec.title,
            }
            for spec in list_experiments()
        ]
        print(render_table(rows, title="registered experiments"))
        return 0

    if args.experiment is None:
        print("bench: name an experiment or pass --list / --validate",
              file=sys.stderr)
        return 2

    from .experiments import UnknownExperiment

    try:
        spec = get_experiment(args.experiment)
        for name in args.section or ():
            spec.section(name)  # validate names before running anything
    except (UnknownExperiment, KeyError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"bench: {message}", file=sys.stderr)
        return 2

    if args.json_out not in (None, "-") and args.output is not None:
        print("bench: pass either --json PATH or --output PATH, not both",
              file=sys.stderr)
        return 2

    artifact = Runner(spec, timing=args.timing).run(args.section)

    if args.json_out == "-":
        print(artifact_to_json(artifact), end="")
        return 0 if artifact["summary"]["passed"] else 1

    print(render_artifact(artifact))
    if not args.no_artifact:
        path = write_artifact(artifact, args.json_out or args.output)
        print(f"artifact written to {path}")
    return 0 if artifact["summary"]["passed"] else 1


def _info() -> str:
    rows = [
        {"command": "maxis --algorithm layers",
         "paper": "Algorithm 2 (Thm 2.3)",
         "guarantee": "Δ-approx, O(MIS·log W) rounds"},
        {"command": "maxis --algorithm coloring",
         "paper": "Algorithm 3",
         "guarantee": "Δ-approx, O(Δ + log* n), deterministic"},
        {"command": "matching --algorithm lines",
         "paper": "Theorem 2.10",
         "guarantee": "2-approx MWM"},
        {"command": "matching --algorithm groups",
         "paper": "footnote 5",
         "guarantee": "2-approx MWM on G directly"},
        {"command": "matching --algorithm fast2eps",
         "paper": "Theorem 3.2",
         "guarantee": "(2+ε)-approx MCM, O(log Δ/log log Δ)"},
        {"command": "matching --algorithm fast2eps-weighted",
         "paper": "Appendix B.1",
         "guarantee": "(2+ε)-approx MWM"},
        {"command": "matching --algorithm oneeps",
         "paper": "Theorem B.4",
         "guarantee": "(1+ε)-approx MCM"},
        {"command": "matching --algorithm proposal",
         "paper": "Appendix B.4",
         "guarantee": "(2+ε)-approx MCM, proposal-based"},
    ]
    return render_table(rows, title="repro algorithm inventory")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "info":
        print(_info())
        return 0
    if args.command == "bench":
        return _run_bench(args)
    row = _run_maxis(args) if args.command == "maxis" else _run_matching(
        args
    )
    print(render_table([row]))
    if args.export:
        path = write_rows([row], args.export)
        print(f"exported to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
