"""Experiment statistics and rendering helpers."""

from .artifacts import render_artifact, render_section_result
from .export import read_rows, rows_to_csv, rows_to_json, write_rows
from .stats import (
    Summary,
    approximation_ratio,
    empirical_rate,
    growth_exponent,
    pearson,
    summarize,
)
from .tables import render_series, render_table

__all__ = [
    "Summary",
    "approximation_ratio",
    "empirical_rate",
    "growth_exponent",
    "pearson",
    "read_rows",
    "render_artifact",
    "render_section_result",
    "render_series",
    "render_table",
    "rows_to_csv",
    "rows_to_json",
    "summarize",
    "write_rows",
]
