"""Experiment statistics and rendering helpers."""

from .export import read_rows, rows_to_csv, rows_to_json, write_rows
from .stats import (
    Summary,
    approximation_ratio,
    empirical_rate,
    growth_exponent,
    pearson,
    summarize,
)
from .tables import render_series, render_table

__all__ = [
    "Summary",
    "approximation_ratio",
    "empirical_rate",
    "growth_exponent",
    "pearson",
    "read_rows",
    "render_series",
    "render_table",
    "rows_to_csv",
    "rows_to_json",
    "summarize",
    "write_rows",
]
