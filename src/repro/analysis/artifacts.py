"""Render benchmark artifacts (``repro-bench/1``) as ASCII tables.

The experiment runner emits machine-readable JSON; this module is the
human-facing consumer.  It renders a whole artifact — or one section
record — using the same :func:`~repro.analysis.tables.render_table` /
:func:`~repro.analysis.tables.render_series` primitives the original
hand-written benchmarks used, plus a check summary per section.
"""

from __future__ import annotations

from typing import Dict, List

from .tables import render_series, render_table

#: Artifact row keys that are internal bookkeeping, hidden from tables.
_HIDDEN_KEYS = ("top_layer_series", "series", "node_rows")


def _visible_rows(rows: List[Dict]) -> List[Dict]:
    return [
        {k: v for k, v in row.items() if k not in _HIDDEN_KEYS}
        for row in rows
    ]


def render_section_result(section: Dict) -> str:
    """Render one section record: its table/series plus check results."""

    rows = section.get("rows", [])
    parts = []
    if section.get("render") == "series" and rows:
        params = section.get("render_params", {})
        x_key = params.get("x", "x")
        y_key = params.get("y", "y")
        parts.append(render_series(
            [row[x_key] for row in rows],
            [row[y_key] for row in rows],
            x_label=x_key, y_label=y_key,
            title=section.get("title"),
        ))
    else:
        parts.append(render_table(_visible_rows(rows),
                                  title=section.get("title")))
    checks = section.get("checks", [])
    if checks:
        status = []
        for check in checks:
            mark = "ok" if check["passed"] else "FAIL"
            line = f"  [{mark}] {check['name']}"
            if not check["passed"] and check.get("detail"):
                line += f": {check['detail']}"
            status.append(line)
        parts.append("\n".join(status))
    return "\n".join(parts)


def render_artifact(artifact: Dict) -> str:
    """Render every section of an artifact plus the overall summary."""

    parts = [
        f"experiment: {artifact.get('experiment')} — "
        f"{artifact.get('title', '')}"
    ]
    for section in artifact.get("sections", []):
        parts.append("")
        parts.append(render_section_result(section))
    summary = artifact.get("summary", {})
    if summary:
        verdict = "PASSED" if summary.get("passed") else "FAILED"
        parts.append("")
        parts.append(
            f"{verdict}: {summary.get('trials', 0)} trials, "
            f"{summary.get('checks_total', 0)} checks, "
            f"{summary.get('checks_failed', 0)} failed"
        )
    return "\n".join(parts)
