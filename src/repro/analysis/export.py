"""Export experiment rows to CSV/JSON for downstream plotting.

The benchmark harness prints ASCII tables; users who want to plot with
their own tooling can funnel the same row dictionaries through these
helpers.  Column order follows first appearance, rows may be ragged
(missing cells export as empty), and floats are emitted with full
precision so re-analysis is lossless.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, List, Sequence


def rows_to_csv(rows: Sequence[Dict[str, object]]) -> str:
    """Render rows as CSV text (header from first-appearance order)."""

    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, restval="")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def rows_to_json(rows: Sequence[Dict[str, object]]) -> str:
    """Render rows as pretty-printed JSON."""

    return json.dumps(list(rows), indent=2, sort_keys=True, default=str)


def write_rows(rows: Sequence[Dict[str, object]], path: str | Path) -> Path:
    """Write rows to ``path``; the suffix picks the format (.csv/.json)."""

    path = Path(path)
    if path.suffix == ".csv":
        text = rows_to_csv(rows)
    elif path.suffix == ".json":
        text = rows_to_json(rows)
    else:
        raise ValueError(
            f"unsupported export suffix {path.suffix!r} (use .csv or .json)"
        )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


def read_rows(path: str | Path) -> List[Dict[str, str]]:
    """Read back a CSV/JSON export (CSV cells come back as strings)."""

    path = Path(path)
    if path.suffix not in (".csv", ".json"):
        raise ValueError(f"unsupported export suffix {path.suffix!r}")
    text = path.read_text(encoding="utf-8")
    if path.suffix == ".csv":
        return list(csv.DictReader(io.StringIO(text)))
    return json.loads(text)
