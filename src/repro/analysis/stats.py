"""Statistics helpers for the experiment harness.

The paper's claims are "with high probability" round bounds and
approximation factors; we reproduce them as seed-averaged measurements
with normal-approximation confidence intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Summary:
    """Five-number summary of a sample with a 95% CI on the mean."""

    mean: float
    std: float
    minimum: float
    maximum: float
    n: int

    @property
    def ci95(self) -> float:
        if self.n <= 1:
            return 0.0
        return 1.96 * self.std / math.sqrt(self.n)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.2f} ± {self.ci95:.2f} (n={self.n})"


def summarize(values: Iterable[float]) -> Summary:
    """Compute a :class:`Summary` of a non-empty sample."""

    data = [float(v) for v in values]
    if not data:
        raise ValueError("cannot summarize an empty sample")
    n = len(data)
    mean = sum(data) / n
    variance = sum((x - mean) ** 2 for x in data) / max(1, n - 1)
    return Summary(mean=mean, std=math.sqrt(variance),
                   minimum=min(data), maximum=max(data), n=n)


def approximation_ratio(optimum: float, found: float) -> float:
    """OPT / found for maximization problems (≥ 1; 1.0 means optimal).

    By convention an empty optimum gives ratio 1.0 (nothing to find) and
    a found value of 0 against a positive optimum gives ``inf``.
    """

    if optimum <= 0:
        return 1.0
    if found <= 0:
        return math.inf
    return optimum / found


def empirical_rate(events: Sequence[bool]) -> float:
    """Fraction of True entries (e.g. per-node unlucky frequencies)."""

    if not events:
        return 0.0
    return sum(1 for e in events if e) / len(events)


def growth_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) against log(x).

    A cheap shape test: round counts growing like log n against n give a
    slope near 0 on (x=log n, y=rounds) in log-log space; linear growth
    gives slope near 1.  Ignores non-positive entries.
    """

    points = [
        (math.log(x), math.log(y)) for x, y in zip(xs, ys)
        if x > 0 and y > 0
    ]
    if len(points) < 2:
        return 0.0
    mean_x = sum(p[0] for p in points) / len(points)
    mean_y = sum(p[1] for p in points) / len(points)
    num = sum((x - mean_x) * (y - mean_y) for x, y in points)
    den = sum((x - mean_x) ** 2 for x, _ in points)
    return 0.0 if den == 0 else num / den


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation, used to check round counts track a predictor."""

    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("pearson needs two equal-length samples (n >= 2)")
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    den_x = math.sqrt(sum((x - mean_x) ** 2 for x in xs))
    den_y = math.sqrt(sum((y - mean_y) ** 2 for y in ys))
    if den_x == 0 or den_y == 0:
        return 0.0
    return num / (den_x * den_y)
