"""Table/series rendering for the benchmark harness.

Benchmarks print the same row/series structure the paper reports
(Table 1's algorithm-vs-rounds rows, plus one measured series per
theorem-derived figure).  Rendering is plain ASCII so ``pytest -s`` and
the EXPERIMENTS.md snippets stay diffable.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def render_table(rows: List[Dict[str, object]],
                 columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Render a list of dict rows as an aligned ASCII table."""

    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(c) for c in columns]
    body = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body))
        for i in range(len(header))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def render_series(xs: Sequence[float], ys: Sequence[float],
                  x_label: str = "x", y_label: str = "y",
                  title: str | None = None, width: int = 40) -> str:
    """Render an (x, y) series with a proportional ASCII bar per row."""

    lines = []
    if title:
        lines.append(title)
    top = max((y for y in ys), default=0) or 1
    for x, y in zip(xs, ys):
        bar = "#" * max(0, round(width * y / top))
        lines.append(f"{x_label}={_fmt(x):>8}  {y_label}={_fmt(y):>10}  {bar}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
