"""``repro.api`` — the unified solver facade.

One call runs any of the library's MaxIS / matching / MIS algorithms
and returns one report type::

    from repro.api import Instance, solve

    inst = Instance(graph, seed=3, eps=0.5)
    report = solve(inst, "matching-fast2eps")
    print(report.size, report.rounds, report.bound)
    print(report.compare())          # exact optimum + achieved ratio

The moving parts:

* :class:`Instance` — graph + model (LOCAL/CONGEST) + ε + seed +
  round/bandwidth budgets, the canonical problem description;
* :class:`AlgorithmSpec` — one registry entry per algorithm (name,
  problem kind, paper anchor, guarantee, capability flags, runner),
  auto-populated from :mod:`repro.core`, :mod:`repro.mis` and
  :mod:`repro.matching` by :mod:`repro.api.algorithms`;
* :func:`solve` — the facade: resolves the spec, pins the model, runs,
  certifies the solution; with ``Instance.max_rounds`` set it enforces
  the budget and returns a ``status="truncated"`` report (best valid
  partial solution) instead of raising;
* :func:`solve_iter` — the anytime primitive under ``solve``: a
  generator yielding :class:`Checkpoint` objects (phase label, valid
  partial solution, objective, rounds/bits consumed) at the
  algorithm's phase boundaries and returning the final report;
* :func:`resume` / :func:`resume_iter` — the warm-start half of the
  anytime protocol: continue a truncated run from the JSON-safe
  ``resume_state`` its report/checkpoint carries (or from
  ``solve(..., warm_start=report)``), with round/traffic accounting
  continued — at a fixed seed the continuation is bit-for-bit the run
  that was never cut;
* :func:`solve_many` — the batch engine: fan an instance grid (×
  algorithms) across a process/thread pool with stable fingerprints,
  per-task failure isolation and a :class:`BatchReport` aggregate
  (see :mod:`repro.api.batch`);
* :class:`SolveReport` — solution set + objective + validity
  certificate + approximation-bound check + round ledger + simulator
  metrics, replacing the per-algorithm result zoo at the API boundary.

``python -m repro info --json`` emits :func:`registry_as_json`, and
``python -m repro maxis/matching`` are thin views over this registry.
The legacy entry points (``repro.core.maxis_local_ratio_layers`` and
friends) remain supported; prefer this facade in new code.
"""

from .anytime import COMPLETE, STATUSES, TRUNCATED, Checkpoint
from .batch import (
    BatchItem,
    BatchReport,
    execute_indexed,
    instance_fingerprint,
    solve_many,
)
from ..errors import NotResumable, ResumeError, ResumeMismatch
from .facade import RESUME_VERSION, resume, resume_iter, solve, solve_iter
from .instance import CONGEST, LOCAL, MODELS, MPC, Instance, random_instance
from .persist import (
    RESUME_FILE_FORMAT,
    instance_from_workload,
    load_envelope,
    resume_envelope,
    resume_envelope_report,
    workload_recipe,
    write_envelope,
)
from .serialize import from_jsonable, to_jsonable
from .registry import (
    AlgorithmSpec,
    UnknownAlgorithm,
    UnsupportedModel,
    algorithm,
    cli_names,
    get_algorithm,
    list_algorithms,
    register_algorithm,
    registry_as_json,
)
from .report import SolveReport

from . import algorithms  # noqa: F401  (registers the specs on import)

__all__ = [
    "AlgorithmSpec",
    "BatchItem",
    "BatchReport",
    "CONGEST",
    "COMPLETE",
    "Checkpoint",
    "Instance",
    "LOCAL",
    "MODELS",
    "MPC",
    "NotResumable",
    "RESUME_FILE_FORMAT",
    "RESUME_VERSION",
    "ResumeError",
    "ResumeMismatch",
    "STATUSES",
    "SolveReport",
    "TRUNCATED",
    "UnknownAlgorithm",
    "UnsupportedModel",
    "algorithm",
    "cli_names",
    "execute_indexed",
    "from_jsonable",
    "get_algorithm",
    "instance_fingerprint",
    "instance_from_workload",
    "list_algorithms",
    "load_envelope",
    "random_instance",
    "register_algorithm",
    "registry_as_json",
    "resume",
    "resume_envelope",
    "resume_envelope_report",
    "resume_iter",
    "solve",
    "solve_iter",
    "solve_many",
    "to_jsonable",
    "workload_recipe",
    "write_envelope",
]
