"""Registry entries for every solver the library ships.

Each ``@algorithm`` block below wraps one legacy entry point from
:mod:`repro.core`, :mod:`repro.mis` or :mod:`repro.matching` behind
the uniform ``run(instance, **options) -> SolveReport`` signature.
The wrappers are deliberately thin — same seeds, same defaults, same
simulator construction as the historical call sites — so a facade run
reproduces the legacy entry point bit-for-bit (the parity test suite
``tests/api/test_facade_parity.py`` pins this).

``**options`` carries the algorithm-specific knobs that are not
instance data (an audit recorder, a layer trace, the NMIS ``k``, …);
anything an experiment could previously pass to an adapter remains
reachable here.
"""

from __future__ import annotations

from typing import Optional

from ..congest import RoundLedger
from ..core import (
    bipartite_matching_1eps,
    bipartite_matching_1eps_phases,
    bipartite_proposal_matching,
    bipartite_proposal_phases,
    congest_matching_1eps,
    congest_matching_1eps_stages,
    fast_matching_2eps,
    fast_matching_weighted_2eps,
    general_proposal_matching,
    general_proposal_phases,
    greedy_mis,
    greedy_mis_phases,
    improved_nearly_maximal_is,
    local_matching_1eps,
    local_matching_1eps_phases,
    matching_lines_phases,
    matching_local_ratio,
    maxis_coloring_phases,
    maxis_layers_phases,
    maxis_local_ratio_coloring,
    maxis_local_ratio_layers,
    nearly_maximal_hypergraph_matching,
    nearly_maximal_matching,
    weight_group_matching,
)
from ..core.maxis_layers import default_round_budget
from ..matching import (
    bipartite_sides,
    greedy_weighted_matching,
    israeli_itai_matching,
    matching_weight,
)
from ..mis import luby_mis
from ..mpc import MPCNetwork, mpc_general_proposal_phases, mpc_greedy_mis
from .anytime import COMPLETE, TRUNCATED, Checkpoint
from .instance import CONGEST, LOCAL, MPC, Instance
from .registry import algorithm
from .report import SolveReport


def _mpc_network(instance: Instance, capacity_factor: float,
                 sparsify: bool) -> MPCNetwork:
    """The MPC fleet for an ``Instance(model="mpc", ...)`` run."""

    return MPCNetwork(
        instance.graph, machines=instance.machines, delta=instance.delta,
        seed=instance.seed, capacity_factor=capacity_factor,
        sparsify=sparsify,
    )


def _report(instance: Instance, solution, objective, rounds,
            ledger: Optional[RoundLedger] = None, metrics=None,
            status: str = COMPLETE, **extras) -> SolveReport:
    """Assemble the run-specific half of a :class:`SolveReport`.

    The registry identity (algorithm name, problem kind, guarantee
    bound, weighted flag, model) is stamped by :func:`repro.api.solve`
    from the resolved spec — the single source of truth — so runners
    cannot mislabel their own reports.
    """

    return SolveReport(
        algorithm="",
        problem="",
        instance=instance,
        solution=frozenset(solution),
        objective=objective,
        weighted=False,
        rounds=rounds,
        model=instance.model or "",
        status=status,
        ledger=ledger,
        metrics=metrics,
        extras=extras,
    )


# ----------------------------------------------------------------------
# MaxIS (Algorithms 2 and 3) and the MIS baseline
# ----------------------------------------------------------------------
def _drive_simulator_phases(phases, network, phase_label: str,
                            resume_state, solution_key: str,
                            aux_key: str = "weight", initial_aux=0,
                            objective_of=None, extras_of=None):
    """Drive a simulator-backed ``(rounds, solution, aux, final,
    state)`` phase generator into checkpoints; shared by the MaxIS,
    line-graph and bipartite-proposal anytime runners.

    ``aux`` is whatever the runner tracks next to the solution — the
    weight for the weighted runners (and then it *is* the objective),
    the unlucky-node set for the proposal matcher; ``objective_of(
    solution, aux)`` / ``extras_of(aux)`` derive the checkpoint fields
    from it, and ``aux_key`` names it inside the resume payload.

    Opens the stream with the initial (or restored) state, forwards
    per-phase snapshots as checkpoints with the raw resume state
    attached, and returns ``(core_result, last_snapshot)`` where
    ``core_result`` is ``None`` when the budget interrupted the
    generator cooperatively.  ``network`` may be ``None`` when the
    simulator lives inside the core generator (the line-graph runner):
    per-phase bit accounting is then unavailable and reported as 0,
    matching the historical report shape of those algorithms.
    """

    if objective_of is None:
        def objective_of(solution, aux):
            return aux
    if extras_of is None:
        def extras_of(aux):
            return {}
    if resume_state is None:
        last = (0, frozenset(), initial_aux, False, None)
        yield Checkpoint(phase="init", solution=frozenset(),
                         objective=objective_of(frozenset(), initial_aux),
                         rounds=0, extras=extras_of(initial_aux))
    else:
        restored = frozenset(resume_state[solution_key])
        aux = resume_state[aux_key]
        last = (resume_state["rounds"], restored, aux, False, resume_state)
        yield Checkpoint(phase="resume", solution=restored,
                         objective=objective_of(restored, aux),
                         rounds=resume_state["rounds"],
                         bits=(resume_state["sim"]["metrics"]["bits"]
                               if network else 0),
                         extras=extras_of(aux),
                         resume_state=resume_state)
    index = 1
    while True:
        try:
            last = next(phases)
        except StopIteration as stop:
            return stop.value, last
        rounds, solution, aux, final, state = last
        yield Checkpoint(phase=f"{phase_label}-{index}", solution=solution,
                         objective=objective_of(solution, aux),
                         rounds=rounds,
                         bits=network.metrics.bits if network else 0,
                         final=final, extras=extras_of(aux),
                         resume_state=state)
        index += 1


def _iter_maxis_layers(instance: Instance, trace=None, resume_state=None):
    """Anytime Algorithm 2: one checkpoint per selection phase.

    ``instance.max_rounds``, when set, *replaces* the Theorem 2.3
    paper budget (same as the legacy runner: an explicit budget wins
    in both directions), and the run stops cooperatively at that cap —
    a truncated run never simulates a round past the budget.  The
    partial independent set is valid at every phase boundary (stack
    discipline), so every checkpoint is adoptable.  On budgeted runs
    the final checkpoint captures the full simulator state
    (``resume_state``), and ``resume_state=`` warm-starts the protocol
    from such a capture with accounting continued.
    """

    network = instance.network()
    budget = (instance.max_rounds if instance.max_rounds is not None
              else default_round_budget(instance.graph))
    phases = maxis_layers_phases(
        instance.graph, seed=instance.seed, network=network,
        max_rounds=budget, trace=trace,
        capture_state=instance.max_rounds is not None,
        resume=resume_state,
    )
    result, last = yield from _drive_simulator_phases(
        phases, network, "selection", resume_state, "chosen",
    )
    if result is None:
        rounds, chosen, weight, _final, _state = last
        return _report(instance, chosen, weight, rounds,
                       metrics=network.metrics, status=TRUNCATED,
                       trace=trace)
    return _report(instance, result.independent_set,
                   result.weight, result.rounds, metrics=network.metrics,
                   trace=trace)


@algorithm(name="maxis-layers", problem="maxis", cli="layers",
           paper="Algorithm 2 (Thm 2.3)",
           guarantee="Δ-approx MWIS, O(MIS·log W) rounds",
           bound=lambda inst: float(max(1, inst.max_degree)),
           weighted=True, tags=("paper",), run_iter=_iter_maxis_layers,
           array_kernel=True)
def _run_maxis_layers(instance: Instance, trace=None) -> SolveReport:
    network = instance.network()
    result = maxis_local_ratio_layers(
        instance.graph, seed=instance.seed, network=network,
        max_rounds=instance.max_rounds, trace=trace,
    )
    return _report(instance, result.independent_set,
                   result.weight, result.rounds, metrics=network.metrics,
                   trace=trace)


def _iter_maxis_coloring(instance: Instance, coloring=None,
                         resume_state=None):
    """Anytime Algorithm 3: one checkpoint per local-ratio sweep.

    Checkpoint ``rounds`` follow the paper's accounting — the
    O(Δ + log* n) coloring charge up front, then one round per sweep —
    so ``instance.max_rounds`` budgets the same quantity the complete
    report's ``rounds`` measures; a budget below the coloring charge
    truncates at the (empty) initial state without simulating.  The
    coloring is deterministic and recomputed on resume, never
    serialized.
    """

    network = instance.network()
    phases = maxis_coloring_phases(
        instance.graph, network=network, coloring=coloring,
        max_rounds=instance.max_rounds,
        capture_state=instance.max_rounds is not None,
        resume=resume_state,
    )
    result, last = yield from _drive_simulator_phases(
        phases, network, "sweep", resume_state, "chosen",
    )
    if result is None:
        rounds, chosen, weight, _final, _state = last
        return _report(instance, chosen, weight, rounds,
                       metrics=network.metrics, status=TRUNCATED)
    return _report(instance, result.independent_set,
                   result.weight, result.accounted_rounds,
                   metrics=network.metrics,
                   local_ratio_rounds=result.local_ratio_rounds,
                   accounted_rounds=result.accounted_rounds,
                   measured_rounds=result.measured_rounds,
                   coloring=result.coloring)


@algorithm(name="maxis-coloring", problem="maxis", cli="coloring",
           paper="Algorithm 3",
           guarantee="Δ-approx MWIS, O(Δ + log* n), deterministic",
           bound=lambda inst: float(max(1, inst.max_degree)),
           weighted=True, deterministic=True, tags=("paper",),
           run_iter=_iter_maxis_coloring, array_kernel=True)
def _run_maxis_coloring(instance: Instance, coloring=None) -> SolveReport:
    network = instance.network()
    result = maxis_local_ratio_coloring(
        instance.graph, network=network, coloring=coloring,
        max_rounds=instance.max_rounds,
    )
    return _report(instance, result.independent_set,
                   result.weight, result.accounted_rounds,
                   metrics=network.metrics,
                   local_ratio_rounds=result.local_ratio_rounds,
                   accounted_rounds=result.accounted_rounds,
                   measured_rounds=result.measured_rounds,
                   coloring=result.coloring)


def _iter_greedy_mis(instance: Instance, resume_state=None,
                     capacity_factor: float = 8.0,
                     sparsify: bool = True):
    """Anytime greedy MWIS: one checkpoint per peeling sweep.

    Under ``Instance(model="mpc")`` the peeling runs as the
    joined/excluded message protocol on the MPC fleet (coarse
    begin/end checkpoints; the protocol is deterministic, so a
    restart-style resume reproduces it), with the per-machine ledger
    summary attached as ``extras["mpc"]``.  The chosen set is the same
    unique greedy set either way.
    """

    if instance.model == MPC:
        yield Checkpoint(phase="init", solution=frozenset(), objective=0,
                         rounds=0)
        network = _mpc_network(instance, capacity_factor, sparsify)
        chosen, weight, rounds, _ = mpc_greedy_mis(
            instance.graph, network=network,
        )
        yield Checkpoint(phase="mpc-peel", solution=chosen,
                         objective=weight, rounds=rounds, final=True)
        return _report(instance, chosen, weight, rounds,
                       mpc=network.summary())
    phases = greedy_mis_phases(
        instance.graph, max_rounds=instance.max_rounds,
        capture_state=instance.max_rounds is not None,
        resume=resume_state,
    )
    result, last = yield from _drive_simulator_phases(
        phases, None, "peel", resume_state, "chosen",
    )
    if result is None:
        rounds, chosen, weight, _final, _state = last
        return _report(instance, chosen, weight, rounds,
                       status=TRUNCATED)
    return _report(instance, result.independent_set, result.weight,
                   result.rounds, ledger=result.ledger)


@algorithm(name="maxis-greedy", problem="maxis", cli="greedy",
           paper="folklore",
           guarantee="Δ-approx MWIS, deterministic parallel peeling",
           bound=lambda inst: float(max(1, inst.max_degree)),
           weighted=True, deterministic=True,
           models=(CONGEST, LOCAL, MPC), tags=("baseline",),
           run_iter=_iter_greedy_mis)
def _run_greedy_mis(instance: Instance, capacity_factor: float = 8.0,
                    sparsify: bool = True) -> SolveReport:
    if instance.model == MPC:
        network = _mpc_network(instance, capacity_factor, sparsify)
        chosen, weight, rounds, _ = mpc_greedy_mis(
            instance.graph, network=network,
        )
        return _report(instance, chosen, weight, rounds,
                       mpc=network.summary())
    result = greedy_mis(instance.graph)
    return _report(instance, result.independent_set, result.weight,
                   result.rounds, ledger=result.ledger)


@algorithm(name="mis-luby", problem="mis",
           paper="Luby 1986",
           guarantee="maximal independent set, O(log n) rounds w.h.p.",
           tags=("baseline",))
def _run_mis_luby(instance: Instance) -> SolveReport:
    network = instance.network()
    mis, rounds = luby_mis(instance.graph, seed=instance.seed,
                           network=network)
    return _report(instance, mis, len(mis), rounds,
                   metrics=network.metrics)


# ----------------------------------------------------------------------
# 2-approximate weighted matchings (Theorem 2.10 / footnote 5)
# ----------------------------------------------------------------------
def _iter_matching_lines(instance: Instance, method: str = "layers",
                         audit=None, resume_state=None):
    """Anytime Theorem 2.10: one checkpoint per MaxIS selection phase
    on the line graph.  The line graph is rebuilt deterministically on
    resume; the payload pins which MaxIS engine (``method``) produced
    it, and that engine wins over the ``method`` default when resuming.
    """

    if resume_state is not None:
        method = resume_state["method"]
    lines = matching_lines_phases(
        instance.graph, method=method, seed=instance.seed, audit=audit,
        max_rounds=instance.max_rounds,
        capture_state=instance.max_rounds is not None,
        resume=resume_state,
    )
    result, last = yield from _drive_simulator_phases(
        lines, None, "selection", resume_state, "matching",
    )
    if result is None:
        rounds, matching, weight, _final, _state = last
        return _report(instance, matching, weight, rounds,
                       status=TRUNCATED, audit=audit, method=method)
    return _report(instance, result.matching,
                   result.weight, result.rounds, audit=result.audit,
                   method=method)


@algorithm(name="matching-lines", problem="matching", cli="lines",
           paper="Theorem 2.10",
           guarantee="2-approx MWM via MaxIS on L(G)",
           bound=lambda inst: 2.0, weighted=True, tags=("paper",),
           run_iter=_iter_matching_lines)
def _run_matching_lines(instance: Instance, method: str = "layers",
                        audit=None) -> SolveReport:
    result = matching_local_ratio(instance.graph, method=method,
                                  seed=instance.seed, audit=audit,
                                  max_rounds=instance.max_rounds)
    return _report(instance, result.matching,
                   result.weight, result.rounds, audit=result.audit,
                   method=method)


@algorithm(name="matching-groups", problem="matching", cli="groups",
           paper="footnote 5",
           guarantee="2-approx MWM on G directly (weight groups)",
           bound=lambda inst: 2.0, weighted=True, tags=("paper",))
def _run_matching_groups(instance: Instance,
                         mm_rounds_charge=None) -> SolveReport:
    result = weight_group_matching(instance.graph, seed=instance.seed,
                                   mm_rounds_charge=mm_rounds_charge)
    return _report(instance, result.matching,
                   result.weight, result.rounds, ledger=result.ledger,
                   iterations=result.iterations)


# ----------------------------------------------------------------------
# Fast (2+ε) matchings (Section 3 / Appendix B.1)
# ----------------------------------------------------------------------
@algorithm(name="matching-fast2eps", problem="matching", cli="fast2eps",
           paper="Theorem 3.2",
           guarantee="(2+ε)-approx MCM, O(log Δ/log log Δ) rounds",
           bound=lambda inst: 2.0 + inst.eps, uses_eps=True,
           tags=("paper",))
def _run_fast2eps(instance: Instance, k=None, beta: float = 4.0
                  ) -> SolveReport:
    kwargs = {} if k is None else {"k": k}
    result = fast_matching_2eps(instance.graph, eps=instance.eps,
                                seed=instance.seed, beta=beta, **kwargs)
    return _report(instance, result.matching,
                   len(result.matching), result.rounds,
                   ledger=result.ledger,
                   unlucky_edges=result.unlucky_edges)


@algorithm(name="matching-fast2eps-weighted", problem="matching",
           cli="fast2eps-weighted", paper="Appendix B.1",
           guarantee="(2+ε)-approx MWM",
           bound=lambda inst: 2.0 + inst.eps, weighted=True,
           uses_eps=True, tags=("paper",))
def _run_fast2eps_weighted(instance: Instance, beta_bucket=None
                           ) -> SolveReport:
    kwargs = {} if beta_bucket is None else {"beta_bucket": beta_bucket}
    result = fast_matching_weighted_2eps(instance.graph, eps=instance.eps,
                                         seed=instance.seed, **kwargs)
    return _report(instance, result.matching,
                   result.weight, result.rounds, ledger=result.ledger,
                   unlucky_edges=result.unlucky_edges)


# ----------------------------------------------------------------------
# (1+ε) matchings (Appendix B.3 / Theorems B.4, B.12)
# ----------------------------------------------------------------------
def _checkpoint_matching_phases(phases, label: str):
    """Drive a core ``(rounds, matching, extras, state)`` phase
    generator into checkpoints; shared by the three (1+ε) anytime
    runners.  The raw resume state rides along on each checkpoint
    (the facade wraps it into the persistable envelope).

    Returns ``(core_result, last_snapshot)`` where ``core_result`` is
    ``None`` when the budget interrupted the generator cooperatively.
    """

    last = (0, frozenset(), {}, None)
    index = 0
    while True:
        try:
            last = next(phases)
        except StopIteration as stop:
            return stop.value, last
        rounds, matching, extras, state = last
        yield Checkpoint(phase=f"{label}-{index}", solution=matching,
                         objective=len(matching), rounds=rounds,
                         extras=extras, resume_state=state)
        index += 1


def _iter_oneeps_local(instance: Instance, k: float = 2.0,
                       failure_delta=None, path_cap: int = 200_000,
                       initial_matching=None, resume_state=None):
    """Anytime Theorem B.4: one checkpoint per Hopcroft–Karp phase;
    stops cooperatively before any phase past ``max_rounds``."""

    phases = local_matching_1eps_phases(
        instance.graph, eps=instance.eps, seed=instance.seed, k=k,
        failure_delta=failure_delta, path_cap=path_cap,
        initial_matching=initial_matching,
        max_rounds=instance.max_rounds,
        capture_state=instance.max_rounds is not None,
        resume=resume_state,
    )
    result, last = yield from _checkpoint_matching_phases(phases, "hk-phase")
    if result is None:
        rounds, matching, extras, _state = last
        return _report(instance, matching, len(matching), rounds,
                       status=TRUNCATED, **extras)
    return _report(instance, result.matching,
                   result.cardinality, result.rounds, ledger=result.ledger,
                   deactivated=result.deactivated,
                   truncated_phases=result.truncated_phases)


@algorithm(name="matching-oneeps", problem="matching", cli="oneeps",
           paper="Theorem B.4",
           guarantee="(1+ε)-approx MCM, LOCAL model",
           bound=lambda inst: 1.0 + inst.eps, uses_eps=True,
           models=(LOCAL,), tags=("paper",), run_iter=_iter_oneeps_local)
def _run_oneeps_local(instance: Instance, k: float = 2.0,
                      failure_delta=None, path_cap: int = 200_000,
                      initial_matching=None) -> SolveReport:
    result = local_matching_1eps(
        instance.graph, eps=instance.eps, seed=instance.seed, k=k,
        failure_delta=failure_delta, path_cap=path_cap,
        initial_matching=initial_matching,
    )
    return _report(instance, result.matching,
                   result.cardinality, result.rounds, ledger=result.ledger,
                   deactivated=result.deactivated,
                   truncated_phases=result.truncated_phases)


def _iter_oneeps_congest(instance: Instance, k: float = 2.0,
                         failure_delta=None, stages=None,
                         max_iterations=None, resume_state=None,
                         notify_wave: bool = False):
    """Anytime Theorem B.12: one checkpoint per bipartition stage;
    stops cooperatively before any stage past ``max_rounds``.
    ``notify_wave=True`` adds the simulator-backed waiting-phase probe
    wave at every stage boundary (rounds ledgered, matching
    untouched)."""

    phases = congest_matching_1eps_stages(
        instance.graph, eps=instance.eps, seed=instance.seed, k=k,
        failure_delta=failure_delta, stages=stages,
        max_iterations=max_iterations, max_rounds=instance.max_rounds,
        capture_state=instance.max_rounds is not None,
        resume=resume_state, notify_wave=notify_wave,
    )
    result, last = yield from _checkpoint_matching_phases(phases, "stage")
    if result is None:
        rounds, matching, extras, _state = last
        return _report(instance, matching, len(matching), rounds,
                       status=TRUNCATED, **extras)
    return _report(instance, result.matching,
                   result.cardinality, result.rounds, ledger=result.ledger,
                   deactivated=result.deactivated, stages=result.stages)


@algorithm(name="matching-oneeps-congest", problem="matching",
           cli="oneeps-congest", paper="Theorem B.12",
           guarantee="(1+ε)-approx MCM, CONGEST model",
           bound=lambda inst: 1.0 + inst.eps, uses_eps=True,
           models=(CONGEST,), tags=("paper",),
           run_iter=_iter_oneeps_congest)
def _run_oneeps_congest(instance: Instance, k: float = 2.0,
                        failure_delta=None, stages=None,
                        max_iterations=None,
                        notify_wave: bool = False) -> SolveReport:
    result = congest_matching_1eps(
        instance.graph, eps=instance.eps, seed=instance.seed, k=k,
        failure_delta=failure_delta, stages=stages,
        max_iterations=max_iterations, notify_wave=notify_wave,
    )
    return _report(instance, result.matching,
                   result.cardinality, result.rounds, ledger=result.ledger,
                   deactivated=result.deactivated, stages=result.stages)


def _iter_oneeps_bipartite(instance: Instance, k: float = 2.0,
                           failure_delta=None, initial_matching=None,
                           max_iterations=None, resume_state=None):
    """Anytime Appendix B.3 (bipartite): one checkpoint per length-d
    phase; stops cooperatively before any phase past ``max_rounds``."""

    left, right = bipartite_sides(instance.graph)
    ledger = RoundLedger()
    phases = bipartite_matching_1eps_phases(
        instance.graph, left, right, eps=instance.eps, seed=instance.seed,
        k=k, failure_delta=failure_delta,
        initial_matching=initial_matching, ledger=ledger,
        max_iterations=max_iterations, max_rounds=instance.max_rounds,
        capture_state=instance.max_rounds is not None,
        resume=resume_state,
    )
    result, last = yield from _checkpoint_matching_phases(phases, "length")
    if result is None:
        rounds, matching, extras, _state = last
        return _report(instance, matching, len(matching), rounds,
                       status=TRUNCATED, **extras)
    matching, deactivated = result
    return _report(instance, matching,
                   len(matching), ledger.total, ledger=ledger,
                   deactivated=deactivated)


@algorithm(name="matching-oneeps-bipartite", problem="matching",
           paper="Appendix B.3",
           guarantee="(1+ε)-approx MCM on bipartite instances",
           bound=lambda inst: 1.0 + inst.eps, uses_eps=True,
           requires_bipartite=True, tags=("paper",),
           run_iter=_iter_oneeps_bipartite)
def _run_oneeps_bipartite(instance: Instance, k: float = 2.0,
                          failure_delta=None, initial_matching=None,
                          max_iterations=None) -> SolveReport:
    left, right = bipartite_sides(instance.graph)
    ledger = RoundLedger()
    matching, deactivated = bipartite_matching_1eps(
        instance.graph, left, right, eps=instance.eps, seed=instance.seed,
        k=k, failure_delta=failure_delta,
        initial_matching=initial_matching, ledger=ledger,
        max_iterations=max_iterations,
    )
    return _report(instance, matching,
                   len(matching), ledger.total, ledger=ledger,
                   deactivated=deactivated)


# ----------------------------------------------------------------------
# Proposal matchings (Appendix B.4)
# ----------------------------------------------------------------------
def _iter_proposal(instance: Instance, k=None, repetitions=None,
                   resume_state=None, capacity_factor: float = 8.0,
                   sparsify: bool = True):
    """Anytime Lemma B.14: one checkpoint per bipartition repetition;
    stops cooperatively before any repetition past ``max_rounds``.

    Under ``Instance(model="mpc")`` the repetitions execute on the MPC
    fleet instead of the object simulator — same matching and round
    count (the port replays the exact per-node RNG streams), with the
    per-machine ledger summary attached as ``extras["mpc"]``.
    """

    network = None
    if instance.model == MPC:
        network = _mpc_network(instance, capacity_factor, sparsify)
        phases = mpc_general_proposal_phases(
            instance.graph, eps=instance.eps, k=k, seed=instance.seed,
            repetitions=repetitions, max_rounds=instance.max_rounds,
            capture_state=instance.max_rounds is not None,
            resume=resume_state, network=network,
        )
    else:
        phases = general_proposal_phases(
            instance.graph, eps=instance.eps, k=k, seed=instance.seed,
            repetitions=repetitions, max_rounds=instance.max_rounds,
            capture_state=instance.max_rounds is not None,
            resume=resume_state, backend=instance.backend,
        )
    last = (0, frozenset(), False, None)
    index = 0
    while True:
        try:
            last = next(phases)
        except StopIteration as stop:
            result = stop.value
            break
        rounds, matching, final, state = last
        yield Checkpoint(phase=f"repetition-{index}", solution=matching,
                         objective=len(matching), rounds=rounds,
                         final=final, resume_state=state)
        index += 1
    extras = {} if network is None else {"mpc": network.summary()}
    if result is None:
        rounds, matching, _final, _state = last
        return _report(instance, matching, len(matching), rounds,
                       status=TRUNCATED, **extras)
    matching, rounds, ledger = result
    return _report(instance, matching, len(matching),
                   rounds, ledger=ledger, **extras)


@algorithm(name="matching-proposal", problem="matching", cli="proposal",
           paper="Lemma B.14",
           guarantee="(2+ε)-approx MCM, proposal-based",
           bound=lambda inst: 2.0 + inst.eps, uses_eps=True,
           models=(CONGEST, LOCAL, MPC), tags=("paper",),
           run_iter=_iter_proposal, array_kernel=True)
def _run_proposal(instance: Instance, k=None, repetitions=None,
                  capacity_factor: float = 8.0, sparsify: bool = True
                  ) -> SolveReport:
    if instance.model == MPC:
        from ..mpc import mpc_general_proposal_matching

        network = _mpc_network(instance, capacity_factor, sparsify)
        matching, rounds, ledger = mpc_general_proposal_matching(
            instance.graph, eps=instance.eps, k=k, seed=instance.seed,
            repetitions=repetitions, network=network,
        )
        return _report(instance, matching, len(matching),
                       rounds, ledger=ledger, mpc=network.summary())
    matching, rounds, ledger = general_proposal_matching(
        instance.graph, eps=instance.eps, k=k, seed=instance.seed,
        repetitions=repetitions, backend=instance.backend,
    )
    return _report(instance, matching, len(matching),
                   rounds, ledger=ledger)


def _iter_proposal_bipartite(instance: Instance, k=None, phases=None,
                             resume_state=None):
    """Anytime Lemma B.13: one checkpoint per propose/respond phase
    (two simulator rounds); the simulator stops cooperatively at the
    budget.  The payload pins the derived K and phase count, so a
    resumed run replays the identical deadline."""

    left, right = bipartite_sides(instance.graph)
    network = instance.network()
    stream = bipartite_proposal_phases(
        instance.graph, left, right, eps=instance.eps, k=k,
        seed=instance.seed, network=network, phases=phases,
        max_rounds=instance.max_rounds,
        capture_state=instance.max_rounds is not None,
        resume=resume_state,
    )
    result, last = yield from _drive_simulator_phases(
        stream, network, "proposal", resume_state, "matching",
        aux_key="unlucky", initial_aux=set(),
        objective_of=lambda solution, aux: len(solution),
        extras_of=lambda aux: {"unlucky": set(aux)},
    )
    if result is None:
        rounds, matching, unlucky, _final, _state = last
        return _report(instance, matching, len(matching), rounds,
                       metrics=network.metrics, status=TRUNCATED,
                       unlucky=set(unlucky))
    return _report(instance, result.matching,
                   len(result.matching), result.rounds,
                   metrics=network.metrics, unlucky=result.unlucky,
                   phases=result.phases)


@algorithm(name="matching-proposal-bipartite", problem="matching",
           paper="Lemma B.13",
           guarantee="(2+ε)-approx MCM on bipartite instances",
           bound=lambda inst: 2.0 + inst.eps, uses_eps=True,
           requires_bipartite=True, tags=("paper",),
           run_iter=_iter_proposal_bipartite, array_kernel=True)
def _run_proposal_bipartite(instance: Instance, k=None, phases=None
                            ) -> SolveReport:
    left, right = bipartite_sides(instance.graph)
    network = instance.network()
    result = bipartite_proposal_matching(
        instance.graph, left, right, eps=instance.eps, k=k,
        seed=instance.seed, network=network, phases=phases,
    )
    return _report(instance, result.matching,
                   len(result.matching), result.rounds,
                   metrics=network.metrics, unlucky=result.unlucky,
                   phases=result.phases)


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
@algorithm(name="matching-israeli-itai", problem="matching",
           cli="israeli-itai", paper="Israeli–Itai 1986",
           guarantee="maximal matching (2-approx MCM), O(log n) rounds",
           bound=lambda inst: 2.0, tags=("baseline",))
def _run_israeli_itai(instance: Instance) -> SolveReport:
    network = instance.network()
    matching, rounds = israeli_itai_matching(instance.graph,
                                             seed=instance.seed,
                                             network=network)
    return _report(instance, matching,
                   len(matching), rounds, metrics=network.metrics)


@algorithm(name="matching-greedy", problem="matching", cli="greedy",
           paper="folklore",
           guarantee="2-approx MWM, sequential greedy baseline",
           bound=lambda inst: 2.0, weighted=True, deterministic=True,
           tags=("baseline", "sequential"))
def _run_greedy(instance: Instance) -> SolveReport:
    matching = greedy_weighted_matching(instance.graph)
    return _report(instance, matching,
                   matching_weight(instance.graph, matching), 0)


# ----------------------------------------------------------------------
# Promoted sub-procedures (Section 3.1 / Appendix B.2)
# ----------------------------------------------------------------------
# These two used to be internal building blocks only; they now ride the
# anytime protocol as first-class registry entries (ROADMAP open item).
@algorithm(name="matching-nearly-maximal", problem="matching",
           cli="nearly-maximal", paper="Theorem 3.1 on L(G)",
           guarantee="nearly-maximal matching, O(log Δ/log log Δ) rounds",
           tags=("paper", "subprocedure"))
def _run_nearly_maximal_matching(instance: Instance, failure_delta=0.05,
                                 k=None, beta: float = 4.0) -> SolveReport:
    matching, unlucky, rounds = nearly_maximal_matching(
        instance.graph, failure_delta=failure_delta, k=k, beta=beta,
        seed=instance.seed,
    )
    return _report(instance, matching, len(matching), rounds,
                   unlucky_edges=unlucky)


@algorithm(name="matching-hypergraph", problem="matching",
           cli="hypergraph", paper="Appendix B.2 (rank d=2)",
           guarantee="nearly-maximal matching via hypergraph NMM "
                     "at rank 2",
           tags=("paper", "subprocedure"))
def _run_matching_hypergraph(instance: Instance, k: float = 2.0,
                             failure_delta: float = 0.05,
                             max_iterations=None,
                             good_cap=None) -> SolveReport:
    # Graph edges as rank-2 hyperedges in the deterministic repr order,
    # so the index-based result maps back stably.
    hyperedges = [
        frozenset(edge) for edge in sorted(
            (tuple(sorted(e, key=repr)) for e in instance.graph.edges),
            key=repr,
        )
    ]
    result = nearly_maximal_hypergraph_matching(
        hyperedges, rank=2, k=k, failure_delta=failure_delta,
        seed=instance.seed, max_iterations=max_iterations,
        good_cap=good_cap,
    )
    matching = frozenset(hyperedges[i] for i in result.matched_edges)
    ledger = RoundLedger()
    ledger.charge(result.iterations, "nmm-iterations")
    return _report(instance, matching, len(matching), result.iterations,
                   ledger=ledger, deactivated=result.deactivated,
                   drained=result.drained)


@algorithm(name="mis-nearly-maximal", problem="mis",
           paper="Theorem 3.1",
           guarantee="nearly-maximal IS (each node in/dominated w.p. "
                     "≥ 1-δ), O(log Δ/log K + K² log 1/δ) rounds",
           tags=("paper", "subprocedure"))
def _run_mis_nearly_maximal(instance: Instance, failure_delta=0.05,
                            k=None, beta: float = 4.0,
                            collect_stats: bool = False) -> SolveReport:
    network = instance.network()
    result = improved_nearly_maximal_is(
        instance.graph, failure_delta=failure_delta, k=k, beta=beta,
        seed=instance.seed, network=network, collect_stats=collect_stats,
    )
    return _report(instance, result.independent_set,
                   len(result.independent_set), result.rounds,
                   metrics=network.metrics, residual=result.residual,
                   iterations=result.iterations, k=result.k,
                   stats=result.stats)
