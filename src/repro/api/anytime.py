"""The anytime solve protocol: typed checkpoints and run statuses.

The paper's guarantees are round-for-quality trade-offs — Algorithm 2's
round cost scales with the accuracy it reaches, and the MaxIS analysis
is explicitly "expected value by round T" — so execution is modeled as
a *stream of checkpoints* rather than an all-or-nothing call:

* :class:`Checkpoint` — one phase boundary of a running algorithm: the
  phase label, the partial solution (valid by construction at every
  boundary the runners emit), the objective so far, and the rounds /
  bits consumed to reach it;
* :data:`COMPLETE` / :data:`TRUNCATED` — the two terminal statuses a
  :class:`~repro.api.SolveReport` can carry.  A run that exhausts
  ``Instance.max_rounds`` is *truncated*: it returns the best valid
  partial solution observed within the budget instead of raising.

:func:`repro.api.solve_iter` yields these checkpoints;
:func:`repro.api.solve` is a thin driver over it.  Phase-structured
algorithms (``maxis-layers``, the (1+ε) matchers) emit one checkpoint
per paper phase and stop cooperatively when the budget runs out; every
other registered algorithm rides a coarse begin/end adapter, so the
whole registry is interruptible through one protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: The run finished inside its budgets (or had none): the algorithm's
#: guarantee applies.
COMPLETE = "complete"
#: The ``Instance.max_rounds`` budget ran out first: the report carries
#: the best valid partial solution and no guarantee bound.
TRUNCATED = "truncated"
STATUSES = (COMPLETE, TRUNCATED)


@dataclass(frozen=True)
class Checkpoint:
    """One phase boundary of an anytime execution.

    ``solution`` is the partial solution at this boundary — a frozenset
    of nodes (MaxIS/MIS) or of 2-node frozensets (matching) — and
    ``valid`` records whether it satisfies the problem's feasibility
    constraints (every checkpoint the built-in runners emit is valid;
    the flag exists so custom runners can stream infeasible
    intermediate states without the driver adopting them).
    ``rounds`` / ``bits`` are the cumulative communication consumed to
    reach this state.  ``final`` is a best-effort hint: it is set when
    the runner can *tell at emission time* that no further checkpoint
    follows (the coarse begin/end adapter's ``end``, the simulator's
    last snapshot); runners whose phase count is data-dependent (the
    (1+ε) matchers' phase loops) end their stream without a
    final-flagged checkpoint, so the authoritative end-of-stream
    signal is always ``StopIteration``.  ``extras`` carries
    algorithm-specific state (deactivated nodes, stage counters, …)
    that a truncated report preserves.

    ``resume_state``, when present, is a self-describing JSON-safe
    warm-start payload (version, algorithm name, budget-agnostic
    instance fingerprint, consumed rounds, and the algorithm's state
    at this boundary): feed it — or the checkpoint carrying it — to
    :func:`repro.api.resume` to continue the run as if it had never
    stopped.  Runners attach state when the instance carries a round
    budget (an unbudgeted run cannot be cut, so the common path pays
    nothing extra); a stream's first checkpoint always carries at
    least the fresh-start marker.
    """

    phase: str
    solution: frozenset
    objective: int
    rounds: int
    bits: int = 0
    valid: bool = True
    final: bool = False
    extras: Dict[str, Any] = field(default_factory=dict)
    resume_state: Optional[Dict[str, Any]] = None


__all__ = ["COMPLETE", "Checkpoint", "STATUSES", "TRUNCATED"]
