"""Batch execution: ``solve_many`` over an instance grid.

This module is the API layer of the batch execution engine.  It owns
two things:

* :func:`execute_indexed` — the generic fan-out core shared with the
  experiment runner (``repro.experiments.runner``): run a picklable
  task function over an indexed task list on a serial, thread or
  process backend, with chunking, per-task failure isolation and
  results returned **in submission order** regardless of completion
  order;
* :func:`solve_many` — fan a grid of :class:`~repro.api.Instance`
  objects (optionally crossed with several algorithms) across that
  core and aggregate the :class:`~repro.api.SolveReport` results into
  one :class:`BatchReport`.

Determinism contract
--------------------
Each task is identified by a stable :func:`instance_fingerprint`
(SHA-256 over the graph structure, weights and every solve-relevant
``Instance`` field) plus the algorithm name.  Results are merged by
submission index, so the items of a :class:`BatchReport` are in the
same order for any backend and any worker count; the per-item
``seconds`` wall-clock field is the only non-deterministic data.  With
``isolate_seeds=True`` every task re-derives its instance seed through
:func:`repro.utils.stable_rng` keyed by ``(seed, task index,
algorithm)``, so no two tasks of the batch share a random stream even
when the caller submits the same instance object many times.

A crashing task never sinks the batch: its :class:`BatchItem` records
the error string and ``report=None``; healthy tasks are unaffected
(``BatchReport.failures`` lists the casualties).

Resilience plane (PR 8): ``solve_many(retry=...)`` arms bounded
in-worker retries for failures classified transient
(:class:`~repro.errors.TransientFault`), with deterministic backoff
from :class:`~repro.faults.RetryPolicy`; ``solve_many(fault_plan=...)``
threads the seeded fault-injection plane into every task for chaos
drills.  Both default to off, leaving the historical behaviour —
and the historical ``BatchItem`` shapes — untouched.
"""

from __future__ import annotations

import hashlib
import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Executor,
    wait,
)
from dataclasses import dataclass, field, replace
from statistics import median
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .instance import Instance
from .report import SolveReport

#: Recognised executor backends.
SERIAL = "serial"
THREAD = "thread"
PROCESS = "process"
BACKENDS = (SERIAL, THREAD, PROCESS)

#: At most this many chunks are in flight per worker; bounding the
#: backlog keeps memory flat on huge grids without starving the pool.
_IN_FLIGHT_PER_WORKER = 4


# ----------------------------------------------------------------------
# the generic fan-out core (shared with the experiment runner)
# ----------------------------------------------------------------------
def _default_chunksize(n_tasks: int, workers: int) -> int:
    """Aim for ~4 chunks per worker so stragglers can rebalance."""

    return max(1, n_tasks // max(1, workers * 4))


def _run_chunk(fn: Callable, chunk: Sequence[Tuple[int, object]]) -> List[tuple]:
    """Execute one chunk of ``(index, task)`` pairs, isolating failures.

    Runs in the worker process/thread.  Returns ``(index, result,
    error)`` triples; ``error`` is ``None`` on success, else
    ``"ExcType: message"`` with the result set to ``None``.
    """

    out = []
    for index, task in chunk:
        try:
            out.append((index, fn(task), None))
        except Exception as exc:  # noqa: BLE001 — failure isolation
            out.append((index, None, f"{type(exc).__name__}: {exc}"))
    return out


def _make_executor(backend: str, workers: int) -> Executor:
    if backend == THREAD:
        from concurrent.futures import ThreadPoolExecutor

        return ThreadPoolExecutor(max_workers=workers)
    from concurrent.futures import ProcessPoolExecutor

    return ProcessPoolExecutor(max_workers=workers)


def execute_indexed(
    fn: Callable,
    tasks: Sequence[object],
    executor: Union[str, Executor, None] = None,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> List[Tuple[object, Optional[str]]]:
    """Run ``fn`` over ``tasks``; return ``(result, error)`` pairs in order.

    ``executor`` is a backend name (``"serial"`` / ``"thread"`` /
    ``"process"``), an already-constructed
    :class:`concurrent.futures.Executor` (not shut down by us), or
    ``None`` meaning serial for ``workers in (None, 0, 1)`` and a
    process pool otherwise.  ``fn`` and every task must be picklable
    for the process backend.  Chunks of ``chunksize`` tasks amortise
    per-future overhead; submission is throttled so at most
    ``4 × workers`` chunks are in flight at once.
    """

    tasks = list(tasks)
    if isinstance(executor, str) and executor not in BACKENDS:
        raise ValueError(
            f"unknown executor {executor!r} (expected one of {BACKENDS})"
        )
    workers = int(workers) if workers else 0
    if executor is None:
        executor = PROCESS if workers > 1 else SERIAL
    if isinstance(executor, str) and executor != SERIAL and workers <= 0:
        workers = os.cpu_count() or 1
    if executor == SERIAL or (isinstance(executor, str) and workers <= 1):
        return [
            (result, error)
            for _, result, error in _run_chunk(fn, list(enumerate(tasks)))
        ]

    if isinstance(executor, str):
        pool: Executor = _make_executor(executor, workers)
        own_pool = True
    else:
        pool, own_pool = executor, False
        workers = workers or getattr(pool, "_max_workers", 1)

    if chunksize is None:
        chunksize = _default_chunksize(len(tasks), workers)
    indexed = list(enumerate(tasks))
    chunks = [
        indexed[i:i + chunksize] for i in range(0, len(indexed), chunksize)
    ]

    results: List[Optional[Tuple[object, Optional[str]]]] = [None] * len(tasks)
    try:
        pending = set()
        backlog = max(1, workers) * _IN_FLIGHT_PER_WORKER
        cursor = 0
        while cursor < len(chunks) or pending:
            while cursor < len(chunks) and len(pending) < backlog:
                pending.add(pool.submit(_run_chunk, fn, chunks[cursor]))
                cursor += 1
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                for index, result, error in future.result():
                    results[index] = (result, error)
    except BrokenExecutor as exc:
        # A worker died outright (OOM-kill, segfault) — the per-task
        # try/except inside _run_chunk never got the chance to record
        # it.  Keep every already-completed result and mark everything
        # unfinished as failed, preserving the failure-isolation
        # contract in degraded form.
        error = f"{type(exc).__name__}: worker died ({exc})"
        for index, slot in enumerate(results):
            if slot is None:
                results[index] = (None, error)
    finally:
        if own_pool:
            pool.shutdown(wait=True)
    return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# instance fingerprints
# ----------------------------------------------------------------------
def instance_fingerprint(instance: Instance) -> str:
    """A stable hex digest identifying one instance's solve inputs.

    Covers the node set (with weights), edge set (with weights), and
    every :class:`~repro.api.Instance` field that influences a solve
    (model, ε, seed, budgets, strictness).  Stable across processes
    and platforms — unlike ``hash()``, which is salted — so batch
    results can be keyed and diffed between runs.

    Node identifiers are serialized via ``repr``, so the cross-process
    stability contract holds for value-like ids (ints, strings,
    tuples, frozensets — everything the library's generators produce);
    objects whose repr embeds a memory address fingerprint per-process
    only.
    """

    graph = instance.graph
    nodes = sorted(
        (repr(v), repr(data.get("weight", 1)))
        for v, data in graph.nodes(data=True)
    )
    edges = sorted(
        (*sorted((repr(u), repr(v))), repr(data.get("weight", 1)))
        for u, v, data in graph.edges(data=True)
    )
    fields = (
        nodes, edges, instance.model, instance.eps, instance.seed,
        instance.max_rounds, instance.bandwidth_factor, instance.strict,
    )
    if instance.machines is not None or instance.delta is not None:
        # MPC topology participates only when set, so every pre-MPC
        # instance keeps its historical fingerprint (committed batch
        # artifacts and persisted resume envelopes stay valid).
        fields = fields + (instance.machines, instance.delta)
    key = repr(fields)
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# solve_many
# ----------------------------------------------------------------------
@dataclass
class BatchItem:
    """One ``(instance, algorithm)`` task outcome inside a batch.

    ``warm_started`` records that the task consumed a warm-start
    source from ``solve_many(..., warm_start=...)`` — either resumed
    from a truncated prior report's checkpoint or passed through as an
    already-complete result without re-execution.
    """

    index: int
    fingerprint: str
    algorithm: str
    report: Optional[SolveReport] = None
    error: Optional[str] = None
    seconds: float = 0.0
    warm_started: bool = False
    #: Solve attempts consumed (1 unless a retry policy re-ran the
    #: task after a transient failure).
    attempts: int = 1
    #: Per-attempt error strings, oldest first (empty on a clean run).
    attempt_errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the task produced a report (truncated counts as ok)."""
        return self.error is None

    @property
    def status(self) -> str:
        """``"complete"``/``"truncated"`` from the report, ``"failed"``
        for a crashed task.  A truncated task is a *successful* one —
        it returned the best valid partial solution its round budget
        admitted — so it counts toward ``ok``, never ``failures``."""

        return "failed" if self.error is not None else self.report.status


@dataclass
class BatchReport:
    """Aggregate of one :func:`solve_many` call.

    ``items`` are in submission order (instance-major, algorithm-minor)
    for every backend.  ``elapsed`` is the wall-clock of the whole
    batch; per-item ``seconds`` are measured inside the worker.
    """

    items: List[BatchItem] = field(default_factory=list)
    backend: str = SERIAL
    workers: int = 1
    elapsed: float = 0.0

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    @property
    def ok(self) -> List[BatchItem]:
        """The successful items, in submission order."""
        return [item for item in self.items if item.ok]

    @property
    def failures(self) -> List[BatchItem]:
        """Items whose task raised; crashing tasks never sink the batch."""
        return [item for item in self.items if not item.ok]

    @property
    def truncated(self) -> List[BatchItem]:
        """Tasks whose round budget ran out (successful partial runs)."""

        return [item for item in self.items
                if item.ok and item.report.status != "complete"]

    @property
    def reports(self) -> List[SolveReport]:
        """The successful reports, in submission order."""

        return [item.report for item in self.items if item.ok]

    def get(self, fingerprint: str, algorithm: str) -> BatchItem:
        """Look one item up by ``(fingerprint, algorithm)`` key."""

        for item in self.items:
            if (item.fingerprint, item.algorithm) == (fingerprint, algorithm):
                return item
        raise KeyError(f"no batch item ({fingerprint!r}, {algorithm!r})")

    def latencies(self) -> List[float]:
        """Per-task worker seconds of the successful items."""

        return [item.seconds for item in self.items if item.ok]

    def trials_per_second(self) -> float:
        """Successful-trial throughput over the batch wall-clock."""
        return len(self.ok) / self.elapsed if self.elapsed > 0 else 0.0

    def summary(self) -> Dict[str, object]:
        """Objective / round / traffic aggregates over the successes."""

        reports = self.reports
        objectives = [r.objective for r in reports]
        rounds = [r.rounds for r in reports]
        messages = sum(
            r.metrics.messages for r in reports if r.metrics is not None
        )
        bits = sum(r.metrics.bits for r in reports if r.metrics is not None)
        statuses: Dict[str, int] = {}
        for item in self.items:
            status = item.status
            statuses[status] = statuses.get(status, 0) + 1
        warm = sum(1 for item in self.items if item.warm_started)
        retries = sum(max(0, item.attempts - 1) for item in self.items)
        out: Dict[str, object] = {
            "tasks": len(self.items),
            "ok": len(reports),
            "failed": len(self.failures),
            "statuses": statuses,
            "backend": self.backend,
            "workers": self.workers,
            "rounds_total": sum(rounds),
            "messages_total": messages,
            "bits_total": bits,
        }
        if warm:
            # Key present only on warm batches: cold-batch summaries
            # keep their historical shape byte for byte.
            out["warm_started"] = warm
        if retries:
            # Same rule: retry-free batches keep the historical shape.
            out["retries"] = retries
        if objectives:
            out["objective"] = {
                "min": min(objectives),
                "max": max(objectives),
                "mean": sum(objectives) / len(objectives),
                "median": median(objectives),
                "total": sum(objectives),
            }
        return out


def _solve_task(
    task: tuple,
) -> Tuple[Optional[SolveReport], float, int, List[str]]:
    """Worker body: one facade solve, timed.  Module-level → picklable.

    A 4-tuple task carries a JSON-safe warm-start payload (the resume
    envelope of a truncated prior run) as its last element; the solve
    then continues that run instead of starting fresh.  A 5-tuple
    additionally carries ``(fault_plan, scope, retry_policy)``: the
    plan's ``worker.transient`` site fires per attempt, and failures
    the policy classifies transient are retried in-worker with
    deterministic backoff.  Returns ``(report_or_None, seconds,
    attempts, attempt_errors)`` — failures are reported, not raised,
    so the attempt trail survives the chunk boundary.
    """

    from .facade import solve

    plan = scope = retry = None
    if len(task) == 5:
        instance, algorithm, options, warm, (plan, scope, retry) = task
    elif len(task) == 4:
        instance, algorithm, options, warm = task
    else:
        instance, algorithm, options = task
        warm = None
    max_attempts = retry.max_attempts if retry is not None else 1
    errors: List[str] = []
    started = time.perf_counter()
    for attempt in range(1, max_attempts + 1):
        try:
            if plan is not None:
                plan.maybe_raise("worker.transient",
                                 scope=f"{scope}:a{attempt}")
            report = solve(instance, algorithm, warm_start=warm,
                           **options)
            return (report, time.perf_counter() - started, attempt,
                    errors)
        except Exception as exc:  # noqa: BLE001 — failure isolation
            errors.append(f"{type(exc).__name__}: {exc}")
            if (retry is not None and retry.retryable(exc)
                    and attempt < max_attempts):
                time.sleep(retry.delay(attempt, key=scope or ""))
                continue
            return None, time.perf_counter() - started, attempt, errors
    return None, time.perf_counter() - started, max_attempts, errors


def _warm_payload(source) -> Tuple[Optional[dict], Optional[SolveReport]]:
    """Normalize one warm-start source to ``(payload, passthrough)``.

    Accepts a :class:`BatchItem`, :class:`SolveReport`, state-carrying
    checkpoint, raw payload dict, or ``None``.  A *complete* prior
    report has nothing left to run — it is passed through as the
    task's result without re-execution.  A source without usable
    resume state (a failed item, a truncated pre-protocol report)
    degrades to a cold solve: by the resume contract that reproduces
    the never-stopped run anyway.
    """

    if isinstance(source, BatchItem):
        source = source.report
    if source is None:
        return None, None
    if isinstance(source, SolveReport):
        if source.status == "complete":
            return None, source
        return source.resume_state, None
    if isinstance(source, dict):
        return source, None
    resume_state = getattr(source, "resume_state", None)
    if resume_state is not None:
        return resume_state, None
    raise TypeError(
        f"cannot warm-start a batch task from {type(source).__name__}; "
        "expected a BatchItem, SolveReport, Checkpoint, payload dict "
        "or None"
    )


def solve_many(
    instances: Iterable[Instance],
    algorithms: Union[str, Sequence[str]],
    executor: Union[str, Executor, None] = None,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    isolate_seeds: bool = False,
    warm_start=None,
    fault_plan=None,
    retry=None,
    **options,
) -> BatchReport:
    """Solve every instance with every algorithm, optionally in parallel.

    Parameters
    ----------
    instances:
        The instance grid.  Bare graphs are not accepted here — build
        real :class:`~repro.api.Instance` objects so seeds are explicit.
    algorithms:
        One registry name or a sequence of names; the task list is the
        cross product ``instances × algorithms`` in that order.
    executor, workers, chunksize:
        Backend selection, see :func:`execute_indexed`.  The default is
        serial for ``workers <= 1`` and a process pool otherwise.
    isolate_seeds:
        Re-derive each task's instance seed via ``stable_rng(seed,
        "solve_many", index, algorithm)`` so tasks never share a random
        stream, even for repeated identical instances.
    warm_start:
        Resume a previous batch instead of solving cold: a
        :class:`BatchReport` from a prior (typically budget-truncated)
        ``solve_many`` call over the same grid, or a per-task sequence
        of sources (``None`` / :class:`BatchItem` /
        :class:`~repro.api.SolveReport` / state-carrying checkpoint /
        raw payload dict), aligned with the task list.  Truncated
        sources are resumed under the new budgets (bit-identical to a
        never-stopped run, per the resume contract), complete sources
        are passed through without re-execution, and sources without
        usable state fall back to a cold solve.  Items touched this
        way set :attr:`BatchItem.warm_started`.
    fault_plan:
        A seeded :class:`~repro.faults.FaultPlan` injected into every
        task (its ``worker.transient`` site fires per attempt) — the
        deterministic chaos-drill hook.  Arming it also arms the
        default retry policy unless ``retry`` says otherwise.
    retry:
        A :class:`~repro.faults.RetryPolicy` bounding in-worker
        retries of transient task failures (deterministic backoff
        keyed by task identity).  ``None`` (the default) keeps the
        historical fail-fast behaviour unless ``fault_plan`` is set,
        in which case :data:`~repro.faults.DEFAULT_RETRY` applies.
        Retried tasks record their attempt trail on
        :attr:`BatchItem.attempts` / :attr:`BatchItem.attempt_errors`.
    **options:
        Forwarded verbatim to every :func:`~repro.api.solve` call.

    Returns a :class:`BatchReport`; a task that raises is recorded as a
    failed :class:`BatchItem` without aborting its siblings.
    """

    from ..utils import stable_rng

    if isinstance(algorithms, str):
        algorithms = (algorithms,)
    tasks: List[tuple] = []
    keys: List[Tuple[str, str]] = []
    for instance in instances:
        fingerprint = instance_fingerprint(instance)
        for algorithm in algorithms:
            index = len(tasks)
            task_instance = instance
            if isolate_seeds:
                derived = stable_rng(
                    instance.seed, "solve_many", index, algorithm
                ).getrandbits(31)
                task_instance = replace(instance, seed=derived)
                fingerprint = instance_fingerprint(task_instance)
            tasks.append((task_instance, algorithm, options))
            keys.append((fingerprint, algorithm))

    passthrough: Dict[int, SolveReport] = {}
    warm_flags = [False] * len(tasks)
    if warm_start is not None:
        sources = (warm_start.items if isinstance(warm_start, BatchReport)
                   else list(warm_start))
        if len(sources) != len(tasks):
            raise ValueError(
                f"warm_start carries {len(sources)} sources for "
                f"{len(tasks)} tasks; the columns must align with the "
                "instances × algorithms task list"
            )
        for index, source in enumerate(sources):
            payload, done = _warm_payload(source)
            if done is not None:
                passthrough[index] = done
                warm_flags[index] = True
            elif payload is not None:
                instance, algorithm, task_options = tasks[index]
                tasks[index] = (instance, algorithm, task_options, payload)
                warm_flags[index] = True

    if fault_plan is not None and retry is None:
        from ..faults import DEFAULT_RETRY

        retry = DEFAULT_RETRY
    if fault_plan is not None or retry is not None:
        # Promote every task to the 5-tuple form; the scope string is
        # the task's deterministic identity, so fault/backoff decisions
        # are independent of backend, worker count and scheduling.
        for index, task in enumerate(tasks):
            if index in passthrough:
                continue
            warm = task[3] if len(task) == 4 else None
            scope = f"task{index}:{keys[index][1]}"
            tasks[index] = (task[0], task[1], task[2], warm,
                            (fault_plan, scope, retry))

    workers = int(workers) if workers else 0
    if executor is None:
        executor = PROCESS if workers > 1 else SERIAL
    if isinstance(executor, str) and executor != SERIAL and workers <= 0:
        # Mirror execute_indexed's default so the report records the
        # worker count that actually ran.
        workers = os.cpu_count() or 1
    if isinstance(executor, str) and workers <= 1:
        # execute_indexed downgrades single-worker pools to in-process
        # execution; record what actually runs.
        executor = SERIAL
    backend = executor if isinstance(executor, str) else "external"

    started = time.perf_counter()
    submit = [index for index in range(len(tasks))
              if index not in passthrough]
    submitted = execute_indexed(
        _solve_task, [tasks[index] for index in submit],
        executor=executor, workers=workers, chunksize=chunksize,
    )
    elapsed = time.perf_counter() - started

    # Merge executed outcomes with the passed-through complete reports
    # back into submission order.
    outcomes: List[Tuple[object, Optional[str]]] = [None] * len(tasks)
    for index, outcome in zip(submit, submitted):
        outcomes[index] = outcome
    for index, report in passthrough.items():
        outcomes[index] = ((report, 0.0, 1, []), None)

    items = []
    for index, ((fingerprint, algorithm), (result, error)) in enumerate(
        zip(keys, outcomes)
    ):
        if error is not None:
            # Chunk-level casualty (worker death, unpicklable task):
            # _solve_task never got to report an attempt trail.
            report, seconds, attempts, attempt_errors = None, 0.0, 1, []
        else:
            report, seconds, attempts, attempt_errors = result
            if report is None:
                error = (attempt_errors[-1] if attempt_errors
                         else "task failed")
        items.append(BatchItem(
            index=index, fingerprint=fingerprint, algorithm=algorithm,
            report=report, error=error, seconds=seconds,
            warm_started=warm_flags[index], attempts=attempts,
            attempt_errors=list(attempt_errors),
        ))
    return BatchReport(
        items=items,
        backend=backend,
        workers=max(1, workers),
        elapsed=elapsed,
    )


__all__ = [
    "BACKENDS",
    "BatchItem",
    "BatchReport",
    "PROCESS",
    "SERIAL",
    "THREAD",
    "execute_indexed",
    "instance_fingerprint",
    "solve_many",
]
