"""``solve`` — the single entry point over every registered algorithm."""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Union

import networkx as nx

from .instance import Instance
from .registry import AlgorithmSpec, get_algorithm
from .report import SolveReport


def solve(
    instance: Union[Instance, nx.Graph],
    algorithm: str,
    problem: Optional[str] = None,
    **options,
) -> SolveReport:
    """Run ``algorithm`` on ``instance`` and return a :class:`SolveReport`.

    ``instance`` may be a bare graph, which is wrapped in a default
    :class:`Instance` (seed 0, ε = 0.5, native model) — convenient in
    notebooks; pass a real ``Instance`` for controlled runs.
    ``algorithm`` is a registry name (``"maxis-layers"``) or, together
    with ``problem``, a CLI short name (``"layers"``).  ``**options``
    forwards algorithm-specific knobs (``trace=``, ``audit=``, ``k=``,
    …) to the underlying implementation.

    The run executes with exactly the legacy entry point's defaults and
    seed handling, so fixed-seed results are bit-for-bit identical to
    calling :mod:`repro.core` directly; the report's solution is
    validated (certified) before it is returned.
    """

    if isinstance(instance, nx.Graph):
        instance = Instance(instance)
    spec: AlgorithmSpec = get_algorithm(algorithm, problem=problem)
    model = spec.resolve_model(instance)
    if instance.model != model:
        instance = replace(instance, model=model)
    report: SolveReport = spec.run(instance, **options)
    # The resolved spec is authoritative for the registry identity; a
    # runner that mislabels its own _report() call cannot mis-stamp
    # the problem kind, guarantee bound or objective flavour.
    report.algorithm = spec.name
    report.problem = spec.problem
    report.weighted = spec.weighted
    report.bound = spec.bound(instance) if spec.bound is not None else None
    report.model = model
    return report.certify()


__all__ = ["solve"]
