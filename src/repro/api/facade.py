"""``solve`` / ``solve_iter`` — anytime entry points over the registry.

:func:`solve_iter` is the execution layer's primitive: a generator
yielding typed :class:`~repro.api.Checkpoint` objects at the running
algorithm's phase boundaries, enforcing ``Instance.max_rounds`` as it
goes, and returning the finalized :class:`~repro.api.SolveReport`.
:func:`solve` is a thin driver that drains it.

Budget semantics
----------------
``Instance.max_rounds`` is a hard communication budget.  A checkpoint
is admissible iff its cumulative ``rounds`` fit the budget; the driver
adopts the *last admissible valid* checkpoint.  Phase-structured
algorithms stop cooperatively — they never launch a phase (or simulate
a round, for simulator-backed ones) past the budget — so a truncated
run costs nothing extra.  Algorithms on the coarse begin/end adapter
cannot stop mid-run; their budget is enforced on the emitted
checkpoints instead (the full run executes, then the report is
truncated to what the budget admitted).  Either way a budget-exhausted
``solve`` returns ``status="truncated"`` with a certified partial
solution instead of raising, and ``bound`` is ``None`` because the
approximation guarantee only holds for completed runs.  Bandwidth
budgets stay enforced by the CONGEST simulator itself
(``bandwidth_factor`` sizes the per-edge word; ``strict`` escalates
violations from metered to raised).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterator, Optional, Union

import networkx as nx

from ..utils import drain
from .anytime import COMPLETE, TRUNCATED, Checkpoint
from .instance import Instance
from .registry import AlgorithmSpec, get_algorithm
from .report import SolveReport


def _coarse_phases(spec: AlgorithmSpec, instance: Instance, **options):
    """Begin/end checkpoint adapter for algorithms without ``run_iter``.

    The legacy runner executes on a budget-stripped instance (a coarse
    algorithm cannot stop mid-run, and several legacy entry points
    treat ``max_rounds`` as a hard simulator cap that *raises* on
    overrun); the driver then enforces the budget on the two emitted
    checkpoints, so an over-budget run truncates to the empty initial
    state instead of raising.
    """

    yield Checkpoint(phase="begin", solution=frozenset(), objective=0,
                     rounds=0)
    stripped = (instance if instance.max_rounds is None
                else replace(instance, max_rounds=None))
    report = spec.run(stripped, **options)
    report.instance = instance
    yield Checkpoint(
        phase="end",
        solution=report.solution,
        objective=report.objective,
        rounds=report.rounds,
        bits=report.metrics.bits if report.metrics is not None else 0,
        final=True,
        extras=dict(report.extras),
    )
    return report


def _truncated_report(instance: Instance,
                      checkpoint: Optional[Checkpoint]) -> SolveReport:
    """The report for a budget-exhausted run: the best valid checkpoint
    admitted by the budget (or the empty solution if none was)."""

    return SolveReport(
        algorithm="",
        problem="",
        instance=instance,
        solution=checkpoint.solution if checkpoint else frozenset(),
        objective=checkpoint.objective if checkpoint else 0,
        weighted=False,
        rounds=checkpoint.rounds if checkpoint else 0,
        model=instance.model or "",
        status=TRUNCATED,
        extras=dict(checkpoint.extras) if checkpoint else {},
    )


def _finalize(spec: AlgorithmSpec, instance: Instance, model: str,
              report: SolveReport) -> SolveReport:
    """Stamp the registry identity and certify the (partial) solution."""

    report.algorithm = spec.name
    report.problem = spec.problem
    report.weighted = spec.weighted
    # The guarantee factor only applies to completed runs; a truncated
    # report carries the partial objective with no bound attached.
    report.bound = (spec.bound(instance)
                    if spec.bound is not None and report.status == COMPLETE
                    else None)
    report.model = model
    return report.certify()


def solve_iter(
    instance: Union[Instance, nx.Graph],
    algorithm: str,
    problem: Optional[str] = None,
    **options,
) -> Iterator[Checkpoint]:
    """Run ``algorithm`` as a checkpoint stream (the anytime protocol).

    Yields a :class:`~repro.api.Checkpoint` at every phase boundary the
    algorithm defines — each carrying a valid partial solution, the
    objective so far and the rounds/bits consumed — and **returns** the
    finalized :class:`~repro.api.SolveReport` (read it as
    ``StopIteration.value``, or let :func:`solve` drain the stream).
    With ``Instance.max_rounds`` set, the stream stops at the last
    checkpoint the budget admits and the returned report has
    ``status="truncated"``; abandoning the generator early (``close()``)
    stops the underlying run cooperatively.

    Every registered algorithm is iterable: phase-structured ones
    (``maxis-layers``, the (1+ε) matchers) emit real per-phase
    checkpoints, the rest a coarse begin/end pair.  Fixed-seed results
    are bit-for-bit identical to the legacy entry points whenever the
    run completes.

    Lookup and model resolution happen eagerly — an unknown algorithm
    or unsupported model raises here, at the call site, not at the
    first ``next()``.
    """

    if isinstance(instance, nx.Graph):
        instance = Instance(instance)
    spec: AlgorithmSpec = get_algorithm(algorithm, problem=problem)
    model = spec.resolve_model(instance)
    if instance.model != model:
        instance = replace(instance, model=model)
    return _solve_stream(spec, instance, model, **options)


def _solve_stream(spec: AlgorithmSpec, instance: Instance, model: str,
                  **options) -> Iterator[Checkpoint]:
    """The generator half of :func:`solve_iter` (spec already resolved)."""

    phases = (spec.run_iter(instance, **options)
              if spec.run_iter is not None
              else _coarse_phases(spec, instance, **options))
    budget = instance.max_rounds
    best: Optional[Checkpoint] = None
    report: Optional[SolveReport] = None
    while True:
        try:
            checkpoint = next(phases)
        except StopIteration as stop:
            report = stop.value
            break
        if budget is not None and checkpoint.rounds > budget:
            # Inadmissible state: close the runner (cooperative stop)
            # and fall back to the best admitted checkpoint.
            phases.close()
            break
        if checkpoint.valid:
            best = checkpoint
        yield checkpoint
    if report is not None and budget is not None and report.rounds > budget:
        # A coarse run that finished over budget: keep only what the
        # budget admitted.
        report = None
    if report is None:
        report = _truncated_report(instance, best)
    return _finalize(spec, instance, model, report)


def solve(
    instance: Union[Instance, nx.Graph],
    algorithm: str,
    problem: Optional[str] = None,
    **options,
) -> SolveReport:
    """Run ``algorithm`` on ``instance`` and return a :class:`SolveReport`.

    ``instance`` may be a bare graph, which is wrapped in a default
    :class:`Instance` (seed 0, ε = 0.5, native model) — convenient in
    notebooks; pass a real ``Instance`` for controlled runs.
    ``algorithm`` is a registry name (``"maxis-layers"``) or, together
    with ``problem``, a CLI short name (``"layers"``).  ``**options``
    forwards algorithm-specific knobs (``trace=``, ``audit=``, ``k=``,
    …) to the underlying implementation.

    ``solve`` is a thin driver over :func:`solve_iter`: it drains the
    checkpoint stream and returns the final report.  With no budget
    set, the run executes with exactly the legacy entry point's
    defaults and seed handling, so fixed-seed results are bit-for-bit
    identical to calling :mod:`repro.core` directly; with
    ``Instance.max_rounds`` set, an exhausted budget yields
    ``status="truncated"`` and the best valid partial solution instead
    of raising.  The report's solution is validated (certified) before
    it is returned in either case.
    """

    return drain(solve_iter(instance, algorithm, problem=problem, **options))


__all__ = ["solve", "solve_iter"]
