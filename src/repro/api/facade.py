"""``solve`` / ``solve_iter`` — anytime entry points over the registry.

:func:`solve_iter` is the execution layer's primitive: a generator
yielding typed :class:`~repro.api.Checkpoint` objects at the running
algorithm's phase boundaries, enforcing ``Instance.max_rounds`` as it
goes, and returning the finalized :class:`~repro.api.SolveReport`.
:func:`solve` is a thin driver that drains it.

Budget semantics
----------------
``Instance.max_rounds`` is a hard communication budget.  A checkpoint
is admissible iff its cumulative ``rounds`` fit the budget; the driver
adopts the *last admissible valid* checkpoint.  Phase-structured
algorithms stop cooperatively — they never launch a phase (or simulate
a round, for simulator-backed ones) past the budget — so a truncated
run costs nothing extra.  Algorithms on the coarse begin/end adapter
cannot stop mid-run; their budget is enforced on the emitted
checkpoints instead (the full run executes, then the report is
truncated to what the budget admitted).  Either way a budget-exhausted
``solve`` returns ``status="truncated"`` with a certified partial
solution instead of raising, and ``bound`` is ``None`` because the
approximation guarantee only holds for completed runs.  Bandwidth
budgets stay enforced by the CONGEST simulator itself
(``bandwidth_factor`` sizes the per-edge word; ``strict`` escalates
violations from metered to raised).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Iterator, Optional, Union

import networkx as nx

from ..errors import NotResumable, ResumeMismatch
from ..utils import drain
from .anytime import COMPLETE, TRUNCATED, Checkpoint
from .batch import instance_fingerprint
from .instance import Instance
from .registry import AlgorithmSpec, get_algorithm
from .report import SolveReport
from .serialize import from_jsonable, to_jsonable

#: Version stamp of the resume payload layout; bumped on breaking
#: changes so a stale persisted checkpoint fails loudly.
RESUME_VERSION = 1


def _coarse_phases(spec: AlgorithmSpec, instance: Instance, **options):
    """Begin/end checkpoint adapter for algorithms without ``run_iter``.

    The legacy runner executes on a budget-stripped instance (a coarse
    algorithm cannot stop mid-run, and several legacy entry points
    treat ``max_rounds`` as a hard simulator cap that *raises* on
    overrun); the driver then enforces the budget on the two emitted
    checkpoints, so an over-budget run truncates to the empty initial
    state instead of raising.
    """

    yield Checkpoint(phase="begin", solution=frozenset(), objective=0,
                     rounds=0)
    stripped = (instance if instance.max_rounds is None
                else replace(instance, max_rounds=None))
    report = spec.run(stripped, **options)
    report.instance = instance
    yield Checkpoint(
        phase="end",
        solution=report.solution,
        objective=report.objective,
        rounds=report.rounds,
        bits=report.metrics.bits if report.metrics is not None else 0,
        final=True,
        extras=dict(report.extras),
    )
    return report


def _truncated_report(instance: Instance,
                      checkpoint: Optional[Checkpoint]) -> SolveReport:
    """The report for a budget-exhausted run: the best valid checkpoint
    admitted by the budget (or the empty solution if none was)."""

    return SolveReport(
        algorithm="",
        problem="",
        instance=instance,
        solution=checkpoint.solution if checkpoint else frozenset(),
        objective=checkpoint.objective if checkpoint else 0,
        weighted=False,
        rounds=checkpoint.rounds if checkpoint else 0,
        model=instance.model or "",
        status=TRUNCATED,
        extras=dict(checkpoint.extras) if checkpoint else {},
    )


def _resume_fingerprint(instance: Instance) -> str:
    """The budget-agnostic instance identity a resume payload pins.

    ``max_rounds`` is deliberately excluded: the whole point of a warm
    start is to continue the *same* instance under a different (or no)
    budget, so the fingerprint covers everything else a solve depends
    on (graph structure, weights, model, ε, seed, bandwidth).
    """

    return instance_fingerprint(replace(instance, max_rounds=None))


def _finalize(spec: AlgorithmSpec, instance: Instance, model: str,
              report: SolveReport) -> SolveReport:
    """Stamp the registry identity and certify the (partial) solution."""

    report.algorithm = spec.name
    report.problem = spec.problem
    report.weighted = spec.weighted
    # The guarantee factor only applies to completed runs; a truncated
    # report carries the partial objective with no bound attached.
    report.bound = (spec.bound(instance)
                    if spec.bound is not None and report.status == COMPLETE
                    else None)
    report.model = model
    return report.certify()


def solve_iter(
    instance: Union[Instance, nx.Graph],
    algorithm: str,
    problem: Optional[str] = None,
    warm_start=None,
    **options,
) -> Iterator[Checkpoint]:
    """Run ``algorithm`` as a checkpoint stream (the anytime protocol).

    Yields a :class:`~repro.api.Checkpoint` at every phase boundary the
    algorithm defines — each carrying a valid partial solution, the
    objective so far and the rounds/bits consumed — and **returns** the
    finalized :class:`~repro.api.SolveReport` (read it as
    ``StopIteration.value``, or let :func:`solve` drain the stream).
    With ``Instance.max_rounds`` set, the stream stops at the last
    checkpoint the budget admits and the returned report has
    ``status="truncated"``; abandoning the generator early (``close()``)
    stops the underlying run cooperatively.

    Every registered algorithm is iterable: phase-structured ones
    (``maxis-layers``, the (1+ε) matchers) emit real per-phase
    checkpoints, the rest a coarse begin/end pair.  Fixed-seed results
    are bit-for-bit identical to the legacy entry points whenever the
    run completes.

    Lookup and model resolution happen eagerly — an unknown algorithm
    or unsupported model raises here, at the call site, not at the
    first ``next()``.

    ``warm_start`` accepts a truncated :class:`SolveReport`, a
    state-carrying :class:`Checkpoint`, or a persisted resume payload
    dict, and delegates to :func:`resume_iter`: the stream then
    continues the captured run instead of starting fresh.
    """

    if warm_start is not None:
        return resume_iter(warm_start, instance=instance,
                           algorithm=algorithm, problem=problem, **options)
    if isinstance(instance, nx.Graph):
        instance = Instance(instance)
    spec: AlgorithmSpec = get_algorithm(algorithm, problem=problem)
    model = spec.resolve_model(instance)
    if instance.model != model:
        instance = replace(instance, model=model)
    return _solve_stream(spec, instance, model, **options)


def _solve_stream(spec: AlgorithmSpec, instance: Instance, model: str,
                  resume_state: Optional[Dict[str, Any]] = None,
                  **options) -> Iterator[Checkpoint]:
    """The generator half of :func:`solve_iter` (spec already resolved).

    Checkpoints leave the runners with *raw* (live-object) resume
    state attached; this driver wraps each into the self-describing
    JSON-safe envelope (version, algorithm, instance fingerprint,
    consumed rounds) so what consumers see — and what a truncated
    report carries — is directly persistable.  A stream's first
    checkpoint always gets at least the fresh-start marker, which is
    how coarse algorithms stay (trivially) resumable.
    """

    if spec.run_iter is not None:
        if resume_state is not None:
            phases = spec.run_iter(instance, resume_state=resume_state,
                                   **options)
        else:
            phases = spec.run_iter(instance, **options)
    else:
        phases = _coarse_phases(spec, instance, **options)
    budget = instance.max_rounds
    fingerprint: Optional[str] = None
    best: Optional[Checkpoint] = None
    last_payload: Optional[Dict[str, Any]] = None
    report: Optional[SolveReport] = None
    first = True
    while True:
        try:
            checkpoint = next(phases)
        except StopIteration as stop:
            report = stop.value
            break
        raw_state = checkpoint.resume_state
        if raw_state is None and first:
            raw_state = {"fresh": True}
        first = False
        if raw_state is not None:
            if fingerprint is None:
                fingerprint = _resume_fingerprint(instance)
            payload = {
                "version": RESUME_VERSION,
                "algorithm": spec.name,
                "fingerprint": fingerprint,
                "phase": checkpoint.phase,
                "rounds": checkpoint.rounds,
                "state": to_jsonable(raw_state),
            }
            checkpoint = replace(checkpoint, resume_state=payload)
        else:
            payload = None
        if budget is not None and checkpoint.rounds > budget:
            # Inadmissible state: close the runner (cooperative stop)
            # and fall back to the best admitted checkpoint.
            phases.close()
            break
        if checkpoint.valid:
            best = checkpoint
            if payload is not None:
                last_payload = payload
        yield checkpoint
    if report is not None and budget is not None and report.rounds > budget:
        # A coarse run that finished over budget: keep only what the
        # budget admitted.
        report = None
    if report is None:
        report = _truncated_report(instance, best)
    if report.status == TRUNCATED and report.resume_state is None:
        # The warm-start payload of the most recent resumable state the
        # budget admitted: resuming from it replays the identical
        # stream, so the continuation matches the never-stopped run
        # even when that state precedes the adopted solution.
        report.resume_state = last_payload
    return _finalize(spec, instance, model, report)


def solve(
    instance: Union[Instance, nx.Graph],
    algorithm: str,
    problem: Optional[str] = None,
    warm_start=None,
    **options,
) -> SolveReport:
    """Run ``algorithm`` on ``instance`` and return a :class:`SolveReport`.

    ``instance`` may be a bare graph, which is wrapped in a default
    :class:`Instance` (seed 0, ε = 0.5, native model) — convenient in
    notebooks; pass a real ``Instance`` for controlled runs.
    ``algorithm`` is a registry name (``"maxis-layers"``) or, together
    with ``problem``, a CLI short name (``"layers"``).  ``**options``
    forwards algorithm-specific knobs (``trace=``, ``audit=``, ``k=``,
    …) to the underlying implementation.

    ``solve`` is a thin driver over :func:`solve_iter`: it drains the
    checkpoint stream and returns the final report.  With no budget
    set, the run executes with exactly the legacy entry point's
    defaults and seed handling, so fixed-seed results are bit-for-bit
    identical to calling :mod:`repro.core` directly; with
    ``Instance.max_rounds`` set, an exhausted budget yields
    ``status="truncated"`` and the best valid partial solution instead
    of raising.  The report's solution is validated (certified) before
    it is returned in either case.

    ``warm_start`` continues a previously truncated run instead of
    starting fresh: pass the truncated report (or a checkpoint /
    persisted payload) and the returned report is — at a fixed seed —
    bit-for-bit the report of the run that was never cut (see
    :func:`resume`, which this delegates to).
    """

    return drain(solve_iter(instance, algorithm, problem=problem,
                            warm_start=warm_start, **options))


def _resume_payload(source) -> Dict[str, Any]:
    """Extract and validate the resume payload from a report /
    checkpoint / dict, raising the typed errors the protocol pins."""

    if isinstance(source, SolveReport):
        if source.resume_state is None:
            if source.status == COMPLETE:
                raise NotResumable(
                    'cannot resume a status="complete" report: the run '
                    "already finished and there is nothing left to do"
                )
            raise NotResumable(
                "this report carries no resume state (it predates the "
                "resume protocol or its checkpoint was not capturable)"
            )
        payload = source.resume_state
    elif isinstance(source, Checkpoint):
        if source.resume_state is None:
            raise NotResumable(
                "this checkpoint carries no resume state: state is "
                "captured on budgeted runs only, and simulator-backed "
                "algorithms attach it to the final checkpoint of the "
                "stream, not to interior ones — resume from the last "
                "state-carrying checkpoint or from the truncated report"
            )
        payload = source.resume_state
    elif isinstance(source, dict):
        payload = source
    else:
        raise NotResumable(
            f"cannot resume from a {type(source).__name__}; expected a "
            "SolveReport, Checkpoint, or resume payload dict"
        )
    required = ("version", "algorithm", "fingerprint", "rounds", "state")
    missing = [key for key in required if key not in payload]
    if missing:
        raise NotResumable(
            f"malformed resume payload: missing {missing}"
        )
    if payload["version"] != RESUME_VERSION:
        raise NotResumable(
            f"resume payload version {payload['version']!r} is not "
            f"supported (expected {RESUME_VERSION})"
        )
    return payload


def resume_iter(
    source,
    instance: Optional[Union[Instance, nx.Graph]] = None,
    algorithm: Optional[str] = None,
    problem: Optional[str] = None,
    allow=None,
    **options,
) -> Iterator[Checkpoint]:
    """Checkpoint-stream form of :func:`resume` (same validation)."""

    payload = _resume_payload(source)
    if instance is None and isinstance(source, SolveReport):
        instance = source.instance
    if instance is None:
        raise NotResumable(
            "resume needs the Instance: a bare checkpoint/payload does "
            "not carry one (pass instance=...)"
        )
    if isinstance(instance, nx.Graph):
        instance = Instance(instance)
    name = algorithm if algorithm is not None else payload["algorithm"]
    spec: AlgorithmSpec = get_algorithm(name, problem=problem)
    if spec.name != payload["algorithm"]:
        raise ResumeMismatch(
            f"checkpoint belongs to algorithm {payload['algorithm']!r}; "
            f"cannot warm-start {spec.name!r} from it"
        )
    model = spec.resolve_model(instance)
    if instance.model != model:
        instance = replace(instance, model=model)
    fingerprint = _resume_fingerprint(instance)
    reconciled = None
    if payload["fingerprint"] != fingerprint:
        if allow is None:
            raise ResumeMismatch(
                "instance fingerprint mismatch: the checkpoint was "
                "captured on a different instance (graph structure/"
                "weights, model, ε, seed or bandwidth differ); for a "
                "declared graph mutation pass "
                "allow=repro.dynamic.MutationCompat(batch)"
            )
        # Compatible-mutation relaxation: the policy validates the
        # declared delta against the payload's fingerprint and returns
        # state spliced to re-runnable form on the mutated instance
        # (raising ResumeMismatch itself when the delta does not check
        # out).  With matching fingerprints the policy is never
        # consulted — an empty batch is bit-identical to plain resume.
        reconciled = allow.reconcile(payload, instance, spec.name)
    if (instance.max_rounds is not None
            and instance.max_rounds < payload["rounds"]):
        raise NotResumable(
            f"round budget {instance.max_rounds} is below the "
            f"checkpoint's already-consumed {payload['rounds']} rounds"
        )
    state = (reconciled if reconciled is not None
             else from_jsonable(payload["state"]))
    if isinstance(state, dict) and state.get("fresh"):
        # The begin state (coarse adapters, and any stream's first
        # checkpoint): nothing was executed yet, so a warm start is a
        # deterministic fresh run under the new budget.
        return _solve_stream(spec, instance, model, **options)
    if spec.run_iter is None:
        raise NotResumable(
            f"algorithm {spec.name!r} has no phase runner: only its "
            "fresh begin state can seed a re-run"
        )
    return _solve_stream(spec, instance, model, resume_state=state,
                         **options)


def resume(
    source,
    instance: Optional[Union[Instance, nx.Graph]] = None,
    algorithm: Optional[str] = None,
    problem: Optional[str] = None,
    allow=None,
    **options,
) -> SolveReport:
    """Continue a truncated run from its last checkpoint (warm start).

    ``source`` is a truncated :class:`SolveReport` (whose
    ``resume_state`` the anytime driver filled in), a state-carrying
    :class:`Checkpoint` from :func:`solve_iter`, or the raw payload
    dict — e.g. recovered via ``json.loads`` from disk.  ``instance``
    defaults to the report's own instance; when resuming from a bare
    checkpoint or payload it must be passed explicitly and is verified
    against the payload's budget-agnostic fingerprint (a mismatched
    graph/weights/model/ε/seed raises
    :class:`~repro.errors.ResumeMismatch`; ``max_rounds`` may differ —
    that is the point).  ``instance.max_rounds``, if set, remains a
    *cumulative* budget: the continuation stops once total consumed
    rounds reach it (and may truncate again, yielding a new resumable
    report — multi-hop resume).

    The contract, pinned registry-wide by ``tests/api/test_resume.py``:
    **resume ≡ never-stopped**.  For every phase-structured algorithm,
    truncating at any budget and resuming with the remaining budget
    reproduces the unbounded run bit-for-bit — same solution, same
    round count, same ledger breakdown — because checkpoints capture
    the exact algorithm state (partial solution, per-node program
    state, RNG streams, in-flight messages, ledger/metric counters) at
    a phase boundary.  Round and traffic accounting *continue* across
    the hop rather than reset.  Algorithm options the original run
    resolved (a matcher's ``k``/``failure_delta``/``stages``, the
    line-graph engine's ``method``, …) are pinned inside the payload
    and win over omitted or re-passed ``**options``, so a forgotten
    keyword cannot silently splice two different parameterizations.
    Resuming a complete report raises
    :class:`~repro.errors.NotResumable`.

    ``allow`` relaxes the strict fingerprint check for *declared* graph
    mutations: pass ``repro.dynamic.MutationCompat(batch)`` to resume a
    checkpoint onto an instance that differs from the captured one by
    exactly that mutation batch.  The policy verifies the delta (the
    checkpoint's fingerprint must match the instance minus the batch,
    and re-applying the batch must reproduce the instance), invalidates
    only the mutation's influence region, and splices the captured
    simulator state back to re-runnable form; anything else still
    raises :class:`~repro.errors.ResumeMismatch`.
    """

    return drain(resume_iter(source, instance=instance,
                             algorithm=algorithm, problem=problem,
                             allow=allow, **options))


__all__ = ["RESUME_VERSION", "resume", "resume_iter", "solve",
           "solve_iter"]
