"""The canonical problem instance consumed by :func:`repro.api.solve`.

An :class:`Instance` bundles everything an algorithm execution depends
on — the weighted graph, the communication model, the accuracy knob ε,
the RNG seed, and optional round/bandwidth budgets — so every solver in
the registry can be invoked through one uniform signature.  Weights
live on the graph itself (node/edge attribute ``weight``, default 1),
which is the convention used throughout the library.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import networkx as nx

from ..congest import BACKENDS, SynchronousNetwork, make_network
from ..errors import InvalidInstance
from ..graphs import (
    assign_edge_weights,
    assign_node_weights,
    gnp_graph,
    max_degree,
)

LOCAL = "LOCAL"
CONGEST = "CONGEST"
MPC = "MPC"
MODELS = (LOCAL, CONGEST, MPC)


@dataclass(frozen=True)
class Instance:
    """One solvable problem instance.

    Parameters
    ----------
    graph:
        The input graph; node weights (MaxIS) and edge weights
        (matching) are read from the ``weight`` attribute, default 1.
    model:
        ``"LOCAL"``, ``"CONGEST"``, ``"MPC"``, or ``None`` meaning
        "whatever the chosen algorithm natively runs in" (resolved by
        ``solve``).  Case-insensitive (``"mpc"`` is normalized).
    eps:
        Accuracy parameter for the (1+ε)/(2+ε) algorithms; ignored by
        algorithms whose spec has ``uses_eps=False``.
    seed:
        RNG seed handed verbatim to the algorithm, so a fixed
        ``(instance, algorithm)`` pair reproduces a run bit-for-bit.
    max_rounds:
        Optional hard round budget, enforced by the anytime solve
        protocol: a run that exhausts it returns a
        ``status="truncated"`` report with the best valid partial
        solution instead of raising (``None`` keeps the algorithms'
        paper-derived budgets).
    bandwidth_factor:
        CONGEST per-edge bandwidth is ``bandwidth_factor · ⌈log2 n⌉``
        bits per round (the simulator default is 8).
    strict:
        When true, simulator-backed algorithms raise
        :class:`~repro.errors.BandwidthViolation` on CONGEST overruns
        instead of recording them in the metrics.
    backend:
        Simulator engine: ``"object"`` (per-node programs),
        ``"array"`` (vectorized round kernels; algorithms without a
        kernel fall back to the object engine transparently), or
        ``None`` meaning "consult the ``REPRO_BACKEND`` environment
        variable, default object".  Results are bit-identical across
        backends — the choice only affects execution speed — so the
        backend does not participate in instance fingerprints.
    machines:
        MPC only: number of machines the input is partitioned across.
        ``None`` derives ``ceil(n ** (1 - delta))`` — just enough
        machines that each block fits the ``O(n^delta)`` memory budget.
    delta:
        MPC only: the sublinear-memory exponent δ in ``S = O(n^δ)``
        (default 0.5).  Also sizes the per-machine per-round
        communication cap the runtime enforces.
    """

    graph: nx.Graph
    model: Optional[str] = None
    eps: float = 0.5
    seed: int = 0
    max_rounds: Optional[int] = None
    bandwidth_factor: int = 8
    strict: bool = False
    backend: Optional[str] = None
    machines: Optional[int] = None
    delta: Optional[float] = None

    def __post_init__(self) -> None:
        if self.model is not None:
            normalized = str(self.model).upper()
            if normalized != self.model:
                object.__setattr__(self, "model", normalized)
            if normalized not in MODELS:
                raise InvalidInstance(
                    f"unknown model {self.model!r} "
                    f"(expected one of {MODELS})"
                )
        if self.eps <= 0:
            raise InvalidInstance(f"eps must be positive, got {self.eps}")
        if self.backend is not None and self.backend not in BACKENDS:
            raise InvalidInstance(
                f"unknown backend {self.backend!r} "
                f"(expected one of {BACKENDS})"
            )
        if self.machines is not None and self.machines < 1:
            raise InvalidInstance(
                f"machines must be >= 1, got {self.machines}"
            )
        if self.delta is not None and not 0.0 < self.delta <= 1.0:
            raise InvalidInstance(
                f"delta must lie in (0, 1], got {self.delta}"
            )

    # -- derived views -------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes in the instance graph."""
        return self.graph.number_of_nodes()

    @property
    def m(self) -> int:
        """Number of edges in the instance graph."""
        return self.graph.number_of_edges()

    @property
    def max_degree(self) -> int:
        """Maximum degree Δ of the instance graph."""

        return max_degree(self.graph)

    def with_model(self, model: str) -> "Instance":
        """A copy of this instance pinned to ``model``."""

        return replace(self, model=model)

    def network(self, model: Optional[str] = None) -> SynchronousNetwork:
        """A fresh simulator for this instance (seeded, metered).

        The engine follows :attr:`backend`; with ``backend=None`` the
        ``REPRO_BACKEND`` environment variable decides (object engine
        by default).
        """

        return make_network(
            self.graph,
            model=model or self.model or CONGEST,
            seed=self.seed,
            bandwidth_factor=self.bandwidth_factor,
            strict=self.strict,
            backend=self.backend,
        )


def random_instance(
    problem: str,
    n: int = 40,
    p: float = 0.12,
    max_weight: int = 64,
    seed: int = 0,
    eps: float = 0.5,
    model: Optional[str] = None,
    backend: Optional[str] = None,
) -> Instance:
    """A G(n, p) instance weighted for ``problem``, CLI-compatible.

    Reproduces the historical seed layout of ``python -m repro``: the
    graph uses ``seed``, the weights ``seed + 1``, and the algorithm
    ``seed + 2`` — so CLI runs and facade runs agree bit-for-bit.
    ``problem`` picks the weighting: node weights for ``"maxis"`` /
    ``"mis"``, edge weights for ``"matching"``.
    """

    graph = gnp_graph(n, p, seed=seed)
    if problem in ("maxis", "mis"):
        assign_node_weights(graph, max_weight, seed=seed + 1)
    elif problem == "matching":
        assign_edge_weights(graph, max_weight, seed=seed + 1)
    else:
        raise InvalidInstance(f"unknown problem kind {problem!r}")
    return Instance(graph, model=model, eps=eps, seed=seed + 2, backend=backend)


__all__ = ["CONGEST", "Instance", "LOCAL", "MODELS", "MPC",
           "random_instance"]
