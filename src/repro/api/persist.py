"""Shared resume-file persistence for the CLI and the solver service.

Both ``python -m repro resume FILE`` and the ``repro.serve`` daemon
persist the same thing: the facade's JSON-safe resume payload plus the
*workload recipe* needed to rebuild the instance deterministically
(the graph itself is never serialized — it is regenerated bit-for-bit
from the recipe's seeds).  This module owns that envelope format so the
two entry points cannot drift apart:

* :data:`RESUME_FILE_FORMAT` — the self-describing format marker;
* :func:`instance_from_workload` — recipe → :class:`Instance`;
* :func:`resume_envelope` / :func:`write_envelope` /
  :func:`load_envelope` — build, atomically persist, and validate the
  on-disk envelope (malformed input raises the typed
  :class:`~repro.errors.ResumeError` the resume protocol already uses);
* :func:`resume_envelope_report` — one-call warm start from a loaded
  envelope.

``write_envelope`` writes through a temporary file and ``os.replace``
so a crash mid-write can never leave a torn envelope behind — the
property the service's crash-safe journal is built on.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace
from typing import Any, Dict, Optional

from ..errors import ResumeError
from .instance import Instance, random_instance
from .report import SolveReport

#: Self-describing marker of the resume-file format: the facade's
#: resume payload plus the workload recipe needed to rebuild the
#: instance deterministically.
RESUME_FILE_FORMAT = "repro-resume-file/1"

#: The keys a workload recipe must carry to rebuild its instance.
WORKLOAD_KEYS = ("problem", "nodes", "edge_probability", "max_weight",
                 "seed", "eps")


def workload_recipe(problem: str, nodes: int, edge_probability: float,
                    max_weight: int, seed: int,
                    eps: float = 0.5) -> Dict[str, Any]:
    """A workload recipe dict in the canonical key layout."""

    return {
        "problem": problem,
        "nodes": nodes,
        "edge_probability": edge_probability,
        "max_weight": max_weight,
        "seed": seed,
        "eps": eps,
    }


def instance_from_workload(workload: Dict[str, Any],
                           backend: Optional[str] = None,
                           max_rounds: Optional[int] = None) -> Instance:
    """Rebuild the deterministic instance a workload recipe describes.

    The historical seed layout (graph ``seed``, weights ``seed + 1``,
    algorithm ``seed + 2``) is preserved by
    :func:`~repro.api.random_instance`, so the rebuilt instance's
    budget-agnostic fingerprint matches the one pinned inside any
    resume payload captured from the same recipe.  Raises ``KeyError``
    / ``TypeError`` on a malformed recipe, which callers surface as a
    bad-envelope condition.
    """

    instance = random_instance(
        workload["problem"],
        n=workload["nodes"],
        p=workload["edge_probability"],
        max_weight=workload["max_weight"],
        seed=workload["seed"],
        eps=workload["eps"],
        backend=backend,
    )
    if max_rounds is not None:
        instance = replace(instance, max_rounds=max_rounds)
    return instance


def resume_envelope(workload: Dict[str, Any],
                    payload: Dict[str, Any]) -> Dict[str, Any]:
    """Assemble the on-disk envelope for one resume payload."""

    return {
        "format": RESUME_FILE_FORMAT,
        "workload": dict(workload),
        "payload": payload,
    }


def validate_envelope(envelope: Any,
                      source: str = "envelope") -> Dict[str, Any]:
    """Check an envelope's shape, raising :class:`ResumeError` if bad.

    ``source`` names the envelope's origin (a file path, a job id) in
    the error message.  Returns the envelope unchanged on success.
    """

    if (not isinstance(envelope, dict)
            or envelope.get("format") != RESUME_FILE_FORMAT
            or not isinstance(envelope.get("workload"), dict)
            or "payload" not in envelope):
        raise ResumeError(
            f"{source} is not a {RESUME_FILE_FORMAT!r} state file "
            "(write one with --save-state)"
        )
    return envelope


def write_envelope(path: str, envelope: Dict[str, Any]) -> None:
    """Atomically persist an envelope (temp file + ``os.replace``)."""

    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(envelope, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def load_envelope(path: str) -> Dict[str, Any]:
    """Read and validate one envelope file.

    Raises :class:`ResumeError` whether the file is unreadable, not
    JSON, or not a recognisable envelope — callers get exactly one
    exception type to handle.
    """

    try:
        with open(path, encoding="utf-8") as handle:
            envelope = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ResumeError(
            f"cannot read state file {path!r}: {exc}"
        ) from exc
    return validate_envelope(envelope, source=repr(path))


def resume_envelope_report(envelope: Dict[str, Any],
                           backend: Optional[str] = None,
                           max_rounds: Optional[int] = None,
                           **options) -> SolveReport:
    """Warm-start the run a (validated) envelope describes.

    Rebuilds the instance from the envelope's workload recipe (under an
    optional new cumulative ``max_rounds`` budget) and hands the
    payload to :func:`repro.api.resume`.  A malformed recipe raises
    :class:`ResumeError` like every other envelope defect.
    """

    from .facade import resume

    try:
        instance = instance_from_workload(
            envelope["workload"], backend=backend, max_rounds=max_rounds,
        )
    except (KeyError, TypeError) as exc:
        raise ResumeError(
            f"malformed workload recipe: {exc}"
        ) from exc
    return resume(envelope["payload"], instance=instance, **options)


__all__ = [
    "RESUME_FILE_FORMAT",
    "WORKLOAD_KEYS",
    "instance_from_workload",
    "load_envelope",
    "resume_envelope",
    "resume_envelope_report",
    "validate_envelope",
    "workload_recipe",
    "write_envelope",
]
