"""The algorithm registry behind :func:`repro.api.solve`.

Every solver the library ships — the paper's algorithms in
:mod:`repro.core` plus the MIS/matching baselines in :mod:`repro.mis`
and :mod:`repro.matching` — is described by one :class:`AlgorithmSpec`
and registered here at import time (see :mod:`repro.api.algorithms`).
The CLI, the experiment adapters and the examples all dispatch through
this table, so adding an algorithm to the library is one
``@algorithm(...)`` entry, not new plumbing in every consumer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import InvalidInstance, ReproError
from .instance import CONGEST, LOCAL, Instance


class UnknownAlgorithm(ReproError, KeyError):
    """Lookup of an algorithm name that is not registered."""

    # KeyError.__str__ repr-quotes the message; keep it human-readable.
    __str__ = Exception.__str__


class UnsupportedModel(InvalidInstance):
    """A known algorithm was asked to run in a model it does not support."""


@dataclass(frozen=True)
class AlgorithmSpec:
    """Declarative description of one registered solver.

    ``name`` is the unique registry key (``"maxis-layers"``); ``cli``
    is the short name exposed by ``python -m repro <problem>
    --algorithm`` (``None`` keeps an algorithm out of the CLI, e.g.
    when it needs a bipartite instance).  ``bound`` maps an
    :class:`~repro.api.instance.Instance` to the numeric approximation
    factor guaranteed on it (e.g. ``lambda inst: 2 + inst.eps``), or is
    ``None`` for heuristics.  ``run`` is the uniform entry point
    ``run(instance, **options) -> SolveReport``.

    ``run_iter``, when set, is the algorithm's *anytime* runner: a
    generator ``run_iter(instance, **options)`` yielding
    :class:`~repro.api.Checkpoint` objects at the algorithm's phase
    boundaries and returning the final report (or ``None`` when a
    round budget interrupted it cooperatively).  Algorithms without
    one ride the coarse begin/end adapter in :mod:`repro.api.facade`,
    so every registry entry is interruptible either way.

    ``run_iter`` also defines the algorithm's *resume* capability: a
    phase-structured runner must accept ``resume_state=`` and continue
    a truncated run bit-for-bit from a captured checkpoint (the
    registry-wide contract test in ``tests/api/test_resume.py`` fails
    any ``run_iter`` entry whose resume path does not reproduce the
    uncut run) — :attr:`anytime` reports ``"phases"`` for these.
    Coarse entries report ``"coarse"``: they are still resumable via
    :func:`repro.api.resume`, but only from the fresh begin state
    (a warm start is a deterministic re-run from scratch).
    """

    name: str
    problem: str                       # "maxis" | "matching" | "mis"
    paper: str                         # paper anchor, e.g. "Theorem 3.2"
    guarantee: str                     # human-readable guarantee
    run: Callable
    run_iter: Optional[Callable] = None
    cli: Optional[str] = None
    bound: Optional[Callable[[Instance], float]] = None
    weighted: bool = False             # objective is a weight, not a count
    deterministic: bool = False
    uses_eps: bool = False
    requires_bipartite: bool = False
    models: Tuple[str, ...] = (CONGEST, LOCAL)
    tags: Tuple[str, ...] = ()
    array_kernel: bool = False         # has a vectorized round kernel

    @property
    def backends(self) -> Tuple[str, ...]:
        """Simulator backends this algorithm executes natively on.

        Every algorithm runs on the object backend; entries with
        :attr:`array_kernel` also run vectorized under
        ``Instance(backend="array")`` (the rest fall back
        transparently).
        """

        return ("object", "array") if self.array_kernel else ("object",)

    @property
    def anytime(self) -> str:
        """``"phases"`` for real per-phase checkpointing (and per-phase
        resume), ``"coarse"`` for the begin/end adapter (interruptible,
        restart-only resume)."""

        return "phases" if self.run_iter is not None else "coarse"

    def resolve_model(self, instance: Instance) -> str:
        """The model this run executes in (instance override or native)."""

        if instance.model is None:
            return self.models[0]
        if instance.model not in self.models:
            raise UnsupportedModel(
                f"algorithm {self.name!r} does not run in the "
                f"{instance.model} model (supported: {self.models})"
            )
        return instance.model

    def describe(self) -> Dict[str, object]:
        """JSON-able registry entry (``python -m repro info --json``)."""

        return {
            "name": self.name,
            "problem": self.problem,
            "cli": self.cli,
            "paper": self.paper,
            "guarantee": self.guarantee,
            "weighted": self.weighted,
            "deterministic": self.deterministic,
            "uses_eps": self.uses_eps,
            "requires_bipartite": self.requires_bipartite,
            "models": list(self.models),
            "tags": list(self.tags),
            # simulator backends with native support; algorithms
            # without an array kernel fall back to "object" silently.
            "backends": list(self.backends),
            # anytime capability: "phases" = real per-phase checkpoints,
            # "coarse" = begin/end adapter (still interruptible).
            "anytime": self.anytime,
            # resume capability mirrors it: "phases" = warm-start from
            # any captured checkpoint (bit-for-bit continuation),
            # "coarse" = resumable only as a deterministic re-run from
            # the fresh begin state.
            "resume": self.anytime,
        }


_ALGORITHMS: Dict[str, AlgorithmSpec] = {}


def register_algorithm(spec: AlgorithmSpec) -> AlgorithmSpec:
    """Register ``spec`` under its name; duplicate names are an error."""
    if spec.name in _ALGORITHMS:
        raise ValueError(f"algorithm {spec.name!r} already registered")
    _ALGORITHMS[spec.name] = spec
    return spec


def algorithm(**spec_fields) -> Callable[[Callable], Callable]:
    """Decorator form: registers the wrapped runner, returns it unchanged."""

    def deco(run: Callable) -> Callable:
        register_algorithm(AlgorithmSpec(run=run, **spec_fields))
        return run

    return deco


def get_algorithm(name: str, problem: Optional[str] = None) -> AlgorithmSpec:
    """Look up a spec by registry name, or by CLI name within ``problem``."""

    if name in _ALGORITHMS:
        spec = _ALGORITHMS[name]
        if problem is None or spec.problem == problem:
            return spec
    if problem is not None:
        for spec in _ALGORITHMS.values():
            if spec.problem == problem and spec.cli == name:
                return spec
    known = ", ".join(sorted(_ALGORITHMS)) or "<none>"
    scope = f" for problem {problem!r}" if problem else ""
    raise UnknownAlgorithm(
        f"unknown algorithm {name!r}{scope} (registered: {known})"
    )


def list_algorithms(problem: Optional[str] = None) -> List[AlgorithmSpec]:
    """All registered specs sorted by name, optionally per problem."""
    return [
        _ALGORITHMS[name]
        for name in sorted(_ALGORITHMS)
        if problem is None or _ALGORITHMS[name].problem == problem
    ]


def cli_names(problem: str) -> Tuple[str, ...]:
    """CLI ``--algorithm`` choices for one problem, registry-ordered."""

    return tuple(
        spec.cli for spec in list_algorithms(problem) if spec.cli is not None
    )


def registry_as_json() -> List[Dict[str, object]]:
    """The whole registry as JSON-able dicts, sorted by name."""

    return [spec.describe() for spec in list_algorithms()]


__all__ = [
    "AlgorithmSpec",
    "UnknownAlgorithm",
    "UnsupportedModel",
    "algorithm",
    "cli_names",
    "get_algorithm",
    "list_algorithms",
    "register_algorithm",
    "registry_as_json",
]
