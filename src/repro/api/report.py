"""The one result type every registered algorithm returns.

A :class:`SolveReport` unifies what the legacy per-algorithm result
dataclasses (``MaxISResult``, ``FastMatchingResult``,
``OneEpsResult``, …) each carried a different slice of: the solution
itself, its objective value, a validity certificate, the guaranteed
approximation bound, the :class:`~repro.congest.RoundLedger` round
accounting, and the simulator's :class:`NetworkMetrics` when the run
went through the message-passing simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional
from weakref import WeakKeyDictionary

from ..analysis import approximation_ratio
from ..congest import RoundLedger
from ..congest.network import NetworkMetrics
from ..graphs import check_independent_set, check_matching
from ..matching import optimum_cardinality, optimum_weight
from ..mis import exact_mwis, mwis_weight
from .anytime import COMPLETE
from .instance import Instance

#: Exact optima keyed by graph object, then by (objective kind,
#: structure/weight fingerprint), shared by every report on the same
#: graph (quickstart-style scripts solve one instance with several
#: algorithms; the exponential/cubic oracle should run once).  The
#: fingerprint invalidates the entry when the graph is re-weighted or
#: re-wired in place; weakly keyed so graphs are not kept alive.
_ORACLE_CACHE: "WeakKeyDictionary" = WeakKeyDictionary()


@dataclass
class SolveReport:
    """Outcome of one :func:`repro.api.solve` call.

    ``solution`` is a frozenset of nodes (MaxIS/MIS) or of
    2-node frozensets (matching).  ``objective`` is the weight for
    weighted problems and the cardinality otherwise.  ``bound`` is the
    numeric approximation factor the algorithm guarantees on this
    instance (e.g. Δ for MaxIS, ``2 + ε`` for the fast matching), or
    ``None`` when no factor applies (heuristics / exact baselines).

    ``status`` is :data:`~repro.api.COMPLETE` for a run that finished
    inside its budgets, or :data:`~repro.api.TRUNCATED` when
    ``Instance.max_rounds`` ran out first — the solution is then the
    best *valid partial* solution within the budget (still certified),
    and ``bound`` is ``None`` because the guarantee only holds for
    completed runs.

    A truncated report additionally carries ``resume_state``: the
    JSON-safe warm-start payload of the last resumable checkpoint the
    budget admitted.  Hand the report (or the payload itself, e.g.
    after persisting it through ``json.dumps``/``loads``) to
    :func:`repro.api.resume` — or ``solve(..., warm_start=report)`` —
    to continue the run from that boundary instead of re-solving from
    scratch; at a fixed seed the continuation is bit-for-bit the run
    that was never cut.  Complete reports carry ``None`` (there is
    nothing left to run).
    """

    algorithm: str
    problem: str                      # "maxis" | "matching" | "mis"
    instance: Instance
    solution: frozenset
    objective: int
    weighted: bool
    rounds: int
    model: str
    status: str = COMPLETE
    bound: Optional[float] = None
    ledger: Optional[RoundLedger] = None
    metrics: Optional[NetworkMetrics] = None
    extras: Dict[str, Any] = field(default_factory=dict)
    resume_state: Optional[Dict[str, Any]] = field(default=None,
                                                   repr=False)
    #: Per-report memo of the exact optimum (and the derived
    #: comparison): ``compare()`` called twice on the same report must
    #: not re-fingerprint the graph, let alone re-run the exponential
    #: oracle.  ``init=False`` keeps both out of the constructor.
    _optimum_memo: Optional[int] = field(default=None, init=False,
                                         repr=False, compare=False)
    _comparison_memo: Optional[Dict[str, Any]] = field(default=None,
                                                       init=False,
                                                       repr=False,
                                                       compare=False)

    # -- derived views -------------------------------------------------
    @property
    def size(self) -> int:
        """Cardinality of the solution (|IS| or |M|)."""
        return len(self.solution)

    def certify(self) -> "SolveReport":
        """Validate the solution against the instance (independence for
        MaxIS/MIS, vertex-disjointness for matchings).

        Raises :class:`~repro.errors.AlgorithmContractViolation` on an
        invalid solution; returns ``self`` so the facade can chain it.
        """

        graph = self.instance.graph
        if self.problem in ("maxis", "mis"):
            check_independent_set(graph, self.solution)
        else:
            check_matching(graph, [tuple(e) for e in self.solution])
        return self

    def ledger_counts(self) -> Dict[str, int]:
        """The round breakdown as a plain dict (``{}`` if unledgered)."""

        return self.ledger.as_dict() if self.ledger is not None else {}

    def optimum(self) -> int:
        """The exact optimum for this instance's objective.

        Exponential for MaxIS (exact MWIS) and cubic for weighted
        matching (Edmonds) — call it on small instances only.  The
        value is computed once per graph, objective kind and
        structure/weight fingerprint, and cached across reports
        (``compare()`` and ``as_row(oracle=True)`` both go through
        it); in-place re-weighting or re-wiring changes the
        fingerprint and triggers a recompute.  Repeat calls on the
        *same* report short-circuit through a per-report memo without
        re-hashing the graph.
        """

        if self._optimum_memo is not None:
            return self._optimum_memo
        if self.problem in ("maxis", "mis"):
            kind = self.problem
        else:
            kind = ("matching", self.weighted)
        per_graph = _ORACLE_CACHE.setdefault(self.instance.graph, {})
        key = (kind, self._oracle_fingerprint())
        if key not in per_graph:
            per_graph[key] = self._compute_optimum()
        self._optimum_memo = per_graph[key]
        return self._optimum_memo

    def _oracle_fingerprint(self) -> int:
        """Hash of everything the exact optimum depends on: the edge
        set, plus node weights (MaxIS/MIS) or edge weights (weighted
        matching).  O(n + m log m) — negligible next to the oracle."""

        graph = self.instance.graph
        edges = tuple(sorted(
            tuple(sorted((repr(u), repr(v)))) for u, v in graph.edges
        ))
        if self.problem in ("maxis", "mis"):
            weights = tuple(sorted(
                (repr(v), data.get("weight", 1))
                for v, data in graph.nodes(data=True)
            ))
        elif self.weighted:
            weights = tuple(
                data.get("weight", 1)
                for _, _, data in sorted(
                    graph.edges(data=True),
                    key=lambda e: tuple(sorted((repr(e[0]), repr(e[1])))),
                )
            )
        else:
            weights = ()
        return hash((edges, weights))

    def _compute_optimum(self) -> int:
        graph = self.instance.graph
        if self.problem == "maxis":
            return mwis_weight(graph, exact_mwis(graph))
        if self.problem == "mis":
            # Maximum *cardinality* independent set: strip the weights.
            import networkx as nx

            unweighted = nx.Graph()
            unweighted.add_nodes_from(graph.nodes)
            unweighted.add_edges_from(graph.edges)
            return len(exact_mwis(unweighted))
        if self.weighted:
            return optimum_weight(graph)
        return optimum_cardinality(graph)

    def compare(self) -> Dict[str, Any]:
        """Compare against the exact optimum.

        Returns ``{"optimum", "ratio", "within_bound"}`` where
        ``within_bound`` checks the guaranteed factor (``None`` bound
        ⇒ ``True`` vacuously).  The (1+ε) matchers only promise the
        factor after crediting the nodes they deactivated on unlucky
        coin flips (Theorem B.4's accounting), so when the report
        carries ``extras["deactivated"]`` the bound is checked against
        ``objective + |deactivated|``; ``ratio`` always reflects the
        raw objective.

        The comparison is memoised on the report: a second call
        returns a copy of the first result instead of recomputing the
        exact oracle pipeline.
        """

        if self._comparison_memo is None:
            opt = self.optimum()
            ratio = approximation_ratio(opt, self.objective)
            within = True
            if self.bound is not None:
                effective = self.objective + len(
                    self.extras.get("deactivated", ())
                )
                within = self.bound * effective >= opt
            self._comparison_memo = {
                "optimum": opt, "ratio": ratio, "within_bound": within,
            }
        return dict(self._comparison_memo)

    def as_row(self, oracle: bool = False) -> Dict[str, Any]:
        """A flat table/export row (the CLI and bench table shape)."""

        row: Dict[str, Any] = {
            "problem": self.problem,
            "algorithm": self.algorithm,
            "n": self.instance.n,
            "delta": self.instance.max_degree,
            "size": self.size,
            "objective": self.objective,
            "rounds": self.rounds,
        }
        if self.weighted:
            # Weighted problems historically exported this column as
            # "weight" (the `maxis --export` row shape); keep both.
            row["weight"] = self.objective
        if self.status != COMPLETE:
            # Complete runs keep the historical row shape; budgeted
            # runs surface their truncation.
            row["status"] = self.status
        if self.bound is not None:
            row["bound"] = self.bound
        if oracle:
            comparison = self.compare()
            row["optimum"] = comparison["optimum"]
            row["ratio"] = comparison["ratio"]
        return row


__all__ = ["SolveReport"]
