"""JSON-safe encoding for checkpoint resume state.

Resume payloads carry live algorithm state — node identifiers (ints,
strings, tuples, frozensets), message payload tuples, set-valued
partial solutions, RNG states — and must survive a ``json.dumps`` /
``json.loads`` round trip bit-for-bit so a truncated run can be
persisted and warm-started later (the serialization round-trip tests
in ``tests/api/test_resume.py`` pin exactly that).

JSON has no tuples, no sets and only string dict keys, so the codec
tags what JSON cannot express:

* tuples     → ``{"__tuple__": [...]}``
* sets       → ``{"__set__": [...]}`` (sorted by ``repr`` so the
  encoding of a given set is deterministic)
* frozensets → ``{"__frozenset__": [...]}``
* dicts with non-string keys (or keys colliding with a tag) →
  ``{"__dict__": [[key, value], ...]}`` in insertion order

Everything else must already be JSON-native (``None``, bools, ints,
floats, strings, lists, string-keyed dicts); an unsupported type
raises ``TypeError`` at encode time rather than producing a payload
that cannot be restored.
"""

from __future__ import annotations

from typing import Any

_TUPLE = "__tuple__"
_SET = "__set__"
_FROZENSET = "__frozenset__"
_DICT = "__dict__"
_TAGS = (_TUPLE, _SET, _FROZENSET, _DICT)


def to_jsonable(obj: Any) -> Any:
    """Encode ``obj`` into a structure ``json.dumps`` accepts verbatim."""

    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, tuple):
        return {_TUPLE: [to_jsonable(x) for x in obj]}
    if isinstance(obj, list):
        return [to_jsonable(x) for x in obj]
    if isinstance(obj, frozenset):
        return {_FROZENSET: [to_jsonable(x)
                             for x in sorted(obj, key=repr)]}
    if isinstance(obj, set):
        return {_SET: [to_jsonable(x) for x in sorted(obj, key=repr)]}
    if isinstance(obj, dict):
        if all(isinstance(k, str) for k in obj) and not any(
            tag in obj for tag in _TAGS
        ):
            return {k: to_jsonable(v) for k, v in obj.items()}
        return {_DICT: [[to_jsonable(k), to_jsonable(v)]
                        for k, v in obj.items()]}
    raise TypeError(
        f"cannot encode {type(obj).__name__!r} into a resume payload"
    )


def from_jsonable(obj: Any) -> Any:
    """Invert :func:`to_jsonable` (idempotent on JSON-native input)."""

    if isinstance(obj, list):
        return [from_jsonable(x) for x in obj]
    if isinstance(obj, dict):
        if len(obj) == 1:
            tag, value = next(iter(obj.items()))
            if tag == _TUPLE:
                return tuple(from_jsonable(x) for x in value)
            if tag == _SET:
                return {from_jsonable(x) for x in value}
            if tag == _FROZENSET:
                return frozenset(from_jsonable(x) for x in value)
            if tag == _DICT:
                return {from_jsonable(k): from_jsonable(v)
                        for k, v in value}
        return {k: from_jsonable(v) for k, v in obj.items()}
    return obj


__all__ = ["from_jsonable", "to_jsonable"]
