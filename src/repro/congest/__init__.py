"""Synchronous LOCAL/CONGEST simulation substrate.

Public API:

* :class:`SynchronousNetwork` — round-based message-passing simulator,
* :class:`NodeProgram` / :class:`NodeContext` — per-node algorithm API,
* :class:`RoundLedger` — round accounting for phase-composed algorithms,
* :func:`line_graph` / :func:`run_on_line_graph` / :class:`CongestionAudit`
  — Section 2.4 line-graph execution and congestion measurement,
* :class:`ArrayNetwork` / :func:`make_network` — the array-native
  simulator backend (bit-compatible, numpy round kernels) and the
  backend-selection factory (``REPRO_BACKEND`` env override).
"""

from .array_network import (
    ARRAY_BACKEND,
    BACKEND_ENV,
    BACKENDS,
    OBJECT_BACKEND,
    ArrayBackendUnsupported,
    ArrayNetwork,
    make_network,
    resolve_backend,
)
from .ledger import RoundLedger
from .linegraph import (
    CongestionAudit,
    canonical_edge,
    line_graph,
    primary_endpoint,
    run_on_line_graph,
    secondary_endpoint,
    shared_endpoint,
)
from .message import Envelope, Payload, payload_bits, word_bits
from .network import (
    CONGEST,
    LOCAL,
    NetworkMetrics,
    RunResult,
    StepSnapshot,
    SynchronousNetwork,
)
from .node import IdleProgram, NodeContext, NodeProgram
from .primitives import (
    BfsTreeProgram,
    FloodProgram,
    bfs_tree,
    convergecast_sum,
    flood_distances,
)
from .recorder import ExecutionRecorder, RoundRecord

__all__ = [
    "ARRAY_BACKEND",
    "ArrayBackendUnsupported",
    "ArrayNetwork",
    "BACKENDS",
    "BACKEND_ENV",
    "OBJECT_BACKEND",
    "make_network",
    "resolve_backend",
    "BfsTreeProgram",
    "CONGEST",
    "FloodProgram",
    "LOCAL",
    "CongestionAudit",
    "ExecutionRecorder",
    "RoundRecord",
    "bfs_tree",
    "convergecast_sum",
    "flood_distances",
    "Envelope",
    "IdleProgram",
    "NetworkMetrics",
    "NodeContext",
    "NodeProgram",
    "Payload",
    "RoundLedger",
    "RunResult",
    "StepSnapshot",
    "SynchronousNetwork",
    "canonical_edge",
    "line_graph",
    "payload_bits",
    "primary_endpoint",
    "run_on_line_graph",
    "secondary_endpoint",
    "shared_endpoint",
    "word_bits",
]
