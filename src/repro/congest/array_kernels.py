"""Vectorized round kernels for the array-native simulator backend.

Each kernel replays one :class:`~repro.congest.node.NodeProgram` exactly
— same outputs, same message/bit/violation accounting, same RNG streams,
interchangeable checkpoint payloads — with the per-round work expressed
as batched numpy operations over the CSR adjacency instead of per-node
Python objects.  The equivalence arguments live next to the code they
justify; the parity suite in ``tests/congest/test_array_backend.py``
pins them empirically against the object backend.

Two invariants every kernel leans on:

* **Independent RNG streams.**  ``stable_rng(seed, node, proto)`` gives
  every node its own generator, so a kernel may draw for nodes in any
  order (we use position order) without perturbing any stream; draws
  happen exactly when the object program would draw.
* **Repr-rank rows.**  CSR rows are sorted by neighbor ``repr``-rank
  (see :class:`~repro.congest.array_network.GraphCSR`), so the object
  backend's ``sorted(..., key=repr)`` tie-breaks become integer rank
  comparisons — which requires every node ``repr`` to be unique, a
  kernel-constructor guard.

The kernels never import the algorithm modules (which import this
package); protocol constants are restated as literals and pinned to the
originals by the parity tests.
"""

from __future__ import annotations

import operator
from typing import Dict, Hashable, List

import numpy as np

from .array_network import (
    MAX_EXACT_INT,
    TAG_BITS,
    ArrayBackendUnsupported,
    ArrayKernel,
    bit_lengths,
    int_word_bits,
    register_kernel,
    seg_any,
    seg_max,
    seg_sum,
)

IN_IS = "InIS"
NOT_IN_IS = "NotInIS"
MATCHED = "matched"
UNLUCKY = "unlucky"
ISOLATED = "isolated"

ACTIVE = "active"
CANDIDATE = "candidate"


def _check_weights(weights, max_degree: int) -> None:
    """Refuse instances whose weights could break exact vectorized
    arithmetic: bit lengths via float64 need values < 2**52, and the
    per-round reduce sums must stay far inside int64."""

    top = int(weights.max())
    if top >= MAX_EXACT_INT:
        raise ArrayBackendUnsupported("weights too large for exact bit math")
    if top * (max_degree + 1) >= (1 << 62):
        raise ArrayBackendUnsupported("weight sums could overflow int64")


def _as_int(value) -> int:
    """Coerce a resumed payload word to a true int (floats refused)."""

    return operator.index(value)


def _int64_array(values, count: int):
    """``np.fromiter(..., int64)`` that degrades to a fallback instead
    of crashing when a Python int exceeds the machine word."""

    try:
        return np.fromiter(values, dtype=np.int64, count=count)
    except OverflowError as exc:
        raise ArrayBackendUnsupported(str(exc)) from exc


class _LocalRatioKernel(ArrayKernel):
    """Shared machinery of the two local-ratio MaxIS kernels.

    Both Algorithm 2 and Algorithm 3 drive the same candidate/wait-set
    stack discipline: ``reduce`` subtracts weight and prunes the
    sender, ``removed`` prunes sender from the active and wait sets,
    ``join`` knocks the receiver out, and halting nodes broadcast their
    decision.  The per-edge masks are receiver-row oriented
    (``active_e[p]`` means "my neighbor ``indices[p]`` is in my
    active_neighbors").
    """

    def __init__(self, net, csr, programs):
        super().__init__(net, csr, programs)
        n, m2 = csr.n, csr.m2
        weights = _int64_array((p.weight for p in programs), n)
        _check_weights(weights, int(csr.degree.max(initial=0)))
        self.weight = weights
        self.candidate = np.zeros(n, dtype=bool)
        self.active_e = np.zeros(m2, dtype=bool)
        self.wait_e = np.zeros(m2, dtype=bool)
        self.out_removed = np.zeros(m2, dtype=bool)
        self.out_join = np.zeros(m2, dtype=bool)
        self.out_reduce = np.zeros(m2, dtype=bool)
        self.out_reduce_amt = np.zeros(n, dtype=np.int64)

    # -- shared round fragments ----------------------------------------
    def _apply_inbox(self, in_reduce, in_removed, alive):
        """The ``reduce``/``removed`` handlers, batched.

        The object program applies them per message in inbox order; the
        updates commute (sums and set-discards), so batch order is
        equivalent.  Only alive nodes run ``on_round`` — halted state is
        dead either way, but the weight array feeds later accounting,
        so it alone is masked.  ``None`` means no messages of that kind
        were sent last round: every update it feeds is an identity, so
        the O(m) passes are skipped outright.
        """

        indptr = self.csr.indptr
        if in_reduce is not None:
            amounts = np.where(in_reduce,
                               self.out_reduce_amt[self.csr.indices], 0)
            self.weight -= np.where(alive, seg_sum(amounts, indptr), 0)
            if in_removed is not None:
                self.active_e &= ~(in_reduce | in_removed)
            else:
                self.active_e &= ~in_reduce
        elif in_removed is not None:
            self.active_e &= ~in_removed
        if in_removed is not None:
            self.wait_e &= ~in_removed

    def _send_reduce(self, winners):
        """The closed-neighborhood local-ratio step for this round's
        selected nodes: ``reduce(weight)`` to every believed-active
        neighbor, wait for all of them, zero out, become candidate.

        With no winners every update below is an identity and
        ``out_reduce`` is already this round's zeros, so return early.
        """

        if not winners.any():
            return
        rows = self.csr.rows
        win_e = winners[rows] & self.active_e
        self.out_reduce = win_e
        self.out_reduce_amt = self.weight.copy()
        self.charge_sends(seg_sum(win_e.astype(np.int64), self.csr.indptr),
                          TAG_BITS + int_word_bits(self.out_reduce_amt))
        self.wait_e = np.where(winners[rows], self.active_e, self.wait_e)
        self.weight = np.where(winners, 0, self.weight)
        self.candidate |= winners

    def _emit_decisions(self, removed, joined):
        """Broadcast this round's ``removed``/``join`` decisions, meter
        them, and record the halts in participant order.  The per-edge
        broadcast gathers only run for decision kinds somebody actually
        took this round (most rounds have none)."""

        rows = self.csr.rows
        deg = self.csr.degree
        m2 = self.csr.m2
        any_removed = bool(removed.any())
        any_joined = bool(joined.any())
        if any_removed:
            self.out_removed = removed[rows]
            self.charge_sends(np.where(removed, deg, 0), TAG_BITS)
        elif self.out_removed.any():
            self.out_removed = np.zeros(m2, dtype=bool)
        if any_joined:
            self.out_join = joined[rows]
            self.charge_sends(np.where(joined, deg, 0), TAG_BITS)
        elif self.out_join.any():
            self.out_join = np.zeros(m2, dtype=bool)
        if any_removed or any_joined:
            out = self.node_output
            indices = np.flatnonzero(removed | joined)
            for i in indices:
                out[int(i)] = IN_IS if joined[i] else NOT_IN_IS
            self.record_halts(indices)

    # -- shared state export/restore -----------------------------------
    def _row(self, i: int) -> slice:
        indptr = self.csr.indptr
        return slice(int(indptr[i]), int(indptr[i + 1]))

    def _edge_set(self, mask, i: int) -> set:
        row = self._row(i)
        nbr = self.csr.indices[row]
        nodes = self.csr.nodes
        return {nodes[int(j)] for j in nbr[mask[row]]}

    def _set_edges(self, mask, i: int, members) -> None:
        index = self.csr.index
        edge_pos = self.csr.edge_pos
        for u in members:
            mask[edge_pos[(i, index[u])]] = True

    def _base_program_state(self, i: int) -> dict:
        return {
            "weight": int(self.weight[i]),
            "status": CANDIDATE if self.candidate[i] else ACTIVE,
            "active_neighbors": self._edge_set(self.active_e, i),
            "wait_set": self._edge_set(self.wait_e, i),
        }

    def _restore_base_program(self, i: int, prog: dict) -> None:
        status = prog["status"]
        if status not in (ACTIVE, CANDIDATE):
            raise ArrayBackendUnsupported(f"unknown status {status!r}")
        self.weight[i] = _as_int(prog["weight"])
        self.candidate[i] = status == CANDIDATE
        self._set_edges(self.active_e, i, prog["active_neighbors"])
        self._set_edges(self.wait_e, i, prog["wait_set"])


@register_kernel
class MaxISLayersKernel(_LocalRatioKernel):
    """Algorithm 2 (``maxis-layers``), three simulator rounds per
    selection iteration (info / bid / resolve)."""

    PROGRAM = "repro.core.maxis_layers.MaxISLayersProgram"
    KINDS = ("reduce", "removed", "join", "info", "bid")

    def __init__(self, net, csr, programs):
        super().__init__(net, csr, programs)
        if not csr.unique_reprs:
            raise ArrayBackendUnsupported("bid ties need unique node reprs")
        traces = {id(p.trace) for p in programs}
        if len(traces) > 1:
            raise ArrayBackendUnsupported("per-node trace objects differ")
        self.trace = programs[0].trace
        self.bid_bound = max(2, csr.n) ** 3
        if self.bid_bound >= MAX_EXACT_INT:
            raise ArrayBackendUnsupported("bid range exceeds exact bit math")
        n, m2 = csr.n, csr.m2
        self.has_bid = np.zeros(n, dtype=bool)
        self.bid = np.zeros(n, dtype=np.int64)
        self.eligible = np.zeros(n, dtype=bool)
        self.nl_mask = np.zeros(m2, dtype=bool)
        self.nl_layer = np.zeros(m2, dtype=np.int64)
        self.out_info = np.zeros(m2, dtype=bool)
        self.out_bid = np.zeros(m2, dtype=bool)
        self.out_info_w = np.zeros(n, dtype=np.int64)
        self.out_info_layer = np.zeros(n, dtype=np.int64)
        self.out_bid_val = np.zeros(n, dtype=np.int64)

    def start(self) -> None:
        self.active_e[:] = True

    def step(self, round_index: int) -> None:
        csr = self.csr
        indptr, indices, rows = csr.indptr, csr.indices, csr.rows
        mirror = csr.mirror
        phase = round_index % 3
        in_reduce = self.out_reduce[mirror] if self.out_reduce.any() else None
        in_removed = (self.out_removed[mirror]
                      if self.out_removed.any() else None)
        in_join = self.out_join[mirror] if self.out_join.any() else None
        if phase == 1:
            in_info = self.out_info[mirror]
            in_info_layer = self.out_info_layer[indices]
        elif phase == 2:
            in_bid = self.out_bid[mirror]
            in_bid_val = self.out_bid_val[indices]
        m2 = csr.m2
        self.out_info = np.zeros(m2, dtype=bool)
        self.out_bid = np.zeros(m2, dtype=bool)
        self.out_reduce = np.zeros(m2, dtype=bool)

        alive = ~self.halted
        self._apply_inbox(in_reduce, in_removed, alive)
        # _process_inbox: a join halts the receiver (its own skipped
        # updates are dead state — the node broadcasts "removed" and
        # leaves regardless of inbox order).
        if in_join is not None:
            h_join = alive & seg_any(in_join, indptr)
            rem = alive & ~h_join
        else:
            h_join = None
            rem = alive.copy()
        # _maybe_transition.
        retired = rem & ~self.candidate & (self.weight <= 0)
        rem &= ~retired
        if self.candidate.any():
            joined = rem & self.candidate & ~seg_any(self.wait_e, indptr)
        else:
            joined = np.zeros_like(rem)
        rem &= ~joined
        actors = rem & ~self.candidate

        if phase == 0:
            layer = bit_lengths(self.weight - 1)
            if self.trace is not None and actors.any():
                occupied = self.trace.occupancy.setdefault(round_index, set())
                for value in np.unique(layer[actors]):
                    occupied.add(int(value))
            self.out_info = actors[rows]
            self.out_info_w = self.weight.copy()
            self.out_info_layer = layer
            bits = (TAG_BITS + int_word_bits(self.out_info_w)
                    + int_word_bits(layer))
            self.charge_sends(np.where(actors, csr.degree, 0), bits)
        elif phase == 1:
            # Rebuild neighbor_layers from this round's info mail, for
            # phase-B actors only (everyone else keeps their old view).
            actor_e = actors[rows]
            np.copyto(self.nl_mask, in_info, where=actor_e)
            np.copyto(self.nl_layer, in_info_layer, where=actor_e)
            my_layer = bit_lengths(self.weight - 1)
            higher = in_info & (in_info_layer > my_layer[rows])
            elig = actors & ~seg_any(higher, indptr)
            self.eligible = np.where(actors, elig, self.eligible)
            self.has_bid = np.where(actors, elig, self.has_bid)
            bound = self.bid_bound
            bid = self.bid
            for i in np.flatnonzero(elig):
                bid[int(i)] = self.rng(int(i)).randrange(bound)
            self.out_bid = elig[rows]
            self.out_bid_val = bid.copy()
            self.charge_sends(np.where(elig, csr.degree, 0),
                              TAG_BITS + int_word_bits(self.out_bid_val))
        else:
            # A bidder survives unless some same-layer bid (per its own
            # neighbor_layers view) beats its (bid, repr) pair; the repr
            # tie-break is the rank comparison (two stages — a composite
            # bid*n+rank key could overflow int64 at large n).
            resolvers = actors & self.has_bid
            my_layer = bit_lengths(self.weight - 1)
            comp = (in_bid & self.nl_mask & resolvers[rows]
                    & (self.nl_layer == my_layer[rows]))
            comp_bid = np.where(comp, in_bid_val, -1)
            top_bid = seg_max(comp_bid, indptr)
            tied = comp & (in_bid_val == top_bid[rows])
            comp_rank = np.where(tied, csr.rank[indices], -1)
            top_rank = seg_max(comp_rank, indptr)
            beaten = (top_bid > self.bid) | ((top_bid == self.bid)
                                             & (top_rank > csr.rank))
            self._send_reduce(resolvers & ~beaten)

        self._emit_decisions(retired if h_join is None else h_join | retired,
                             joined)

    # -- checkpoint payloads -------------------------------------------
    def export_in_flight(self) -> List[list]:
        nodes = self.csr.nodes
        rows, indices = self.csr.rows, self.csr.indices
        any_e = (self.out_removed | self.out_join | self.out_info
                 | self.out_bid | self.out_reduce)
        out = []
        for p in np.flatnonzero(any_e):
            p = int(p)
            s = int(rows[p])
            if self.out_removed[p]:
                payload = ("removed",)
            elif self.out_join[p]:
                payload = ("join",)
            elif self.out_info[p]:
                payload = ("info", int(self.out_info_w[s]),
                           int(self.out_info_layer[s]))
            elif self.out_bid[p]:
                payload = ("bid", int(self.out_bid_val[s]))
            else:
                payload = ("reduce", int(self.out_reduce_amt[s]))
            out.append([nodes[s], nodes[int(indices[p])], payload])
        return out

    def export_live(self) -> Dict[Hashable, dict]:
        nodes = self.csr.nodes
        indices = self.csr.indices
        live: Dict[Hashable, dict] = {}
        for i in np.flatnonzero(~self.halted):
            i = int(i)
            row = self._row(i)
            nbr = indices[row]
            layers = {}
            nl_layer = self.nl_layer[row]
            for k in np.flatnonzero(self.nl_mask[row]):
                layers[nodes[int(nbr[k])]] = int(nl_layer[k])
            program = self._base_program_state(i)
            program["neighbor_layers"] = layers
            program["bid"] = int(self.bid[i]) if self.has_bid[i] else None
            program["eligible"] = bool(self.eligible[i])
            live[nodes[i]] = {"sleeping": False, "rng": self.export_rng(i),
                              "program": program}
        return live

    def _restore(self, state: dict) -> None:
        index = self.csr.index
        edge_pos = self.csr.edge_pos
        for i in np.flatnonzero(~self.halted):
            i = int(i)
            prog = self._live_program_state(state, i)
            self._restore_base_program(i, prog)
            for u, layer in prog["neighbor_layers"].items():
                p = edge_pos[(i, index[u])]
                self.nl_mask[p] = True
                self.nl_layer[p] = _as_int(layer)
            bid = prog["bid"]
            if bid is not None:
                self.bid[i] = _as_int(bid)
                self.has_bid[i] = True
            self.eligible[i] = bool(prog["eligible"])
        for src, dst, payload in state["in_flight"]:
            s, d = index[src], index[dst]
            p = edge_pos[(s, d)]
            kind = payload[0]
            if kind == "removed":
                self.out_removed[p] = True
            elif kind == "join":
                self.out_join[p] = True
            elif kind == "info":
                self.out_info[p] = True
                self.out_info_w[s] = _as_int(payload[1])
                self.out_info_layer[s] = _as_int(payload[2])
            elif kind == "bid":
                self.out_bid[p] = True
                self.out_bid_val[s] = _as_int(payload[1])
            elif kind == "reduce":
                self.out_reduce[p] = True
                self.out_reduce_amt[s] = _as_int(payload[1])
            else:
                raise ArrayBackendUnsupported(f"unknown payload {kind!r}")


@register_kernel
class MaxISColoringKernel(_LocalRatioKernel):
    """Algorithm 3 (``maxis-coloring``), one sweep per simulator round.

    Fully deterministic: local color maxima among believed-active
    neighbors reduce, candidates join once their wait set drains.  The
    ``on_start`` sweep runs in :meth:`start` — it can send and even halt
    before round 0, exactly like the object program.
    """

    PROGRAM = "repro.core.maxis_coloring.MaxISColoringProgram"
    KINDS = ("reduce", "removed", "join")

    def __init__(self, net, csr, programs):
        super().__init__(net, csr, programs)
        index = csr.index
        colors = []
        for program in programs:
            color = program.color
            if not isinstance(color, int) or isinstance(color, bool):
                raise ArrayBackendUnsupported("non-integer colors")
            colors.append(color)
        color = _int64_array(colors, csr.n)
        if color.size and int(np.abs(color).max()) >= (1 << 62):
            raise ArrayBackendUnsupported("color values too large")
        # Each node consults only its *own* neighbor_colors dict; the
        # vectorized comparison uses the global color array, which is
        # only equivalent when every local view agrees with it.
        nodes = csr.nodes
        for i, program in enumerate(programs):
            view = program.neighbor_colors
            for j in csr.indices[self._row(i)]:
                u = nodes[int(j)]
                if u not in view or view[u] != colors[int(j)]:
                    raise ArrayBackendUnsupported(
                        "neighbor_colors disagrees with the coloring"
                    )
        self.color = color
        self._index = index

    def start(self) -> None:
        self.active_e[:] = True
        self._act(np.ones(self.csr.n, dtype=bool), None)

    def step(self, round_index: int) -> None:
        mirror = self.csr.mirror
        in_reduce = self.out_reduce[mirror] if self.out_reduce.any() else None
        in_removed = (self.out_removed[mirror]
                      if self.out_removed.any() else None)
        in_join = self.out_join[mirror] if self.out_join.any() else None
        self.out_reduce = np.zeros(self.csr.m2, dtype=bool)

        alive = ~self.halted
        self._apply_inbox(in_reduce, in_removed, alive)
        if in_join is not None:
            h_join = alive & seg_any(in_join, self.csr.indptr)
            self._act(alive & ~h_join, h_join)
        else:
            self._act(alive, None)

    def _act(self, rem, h_join) -> None:
        """One ``_act`` sweep over the nodes in ``rem`` (``h_join``
        holds this round's join-knockouts, which skip the sweep but
        share its decision broadcast; ``None`` when nobody was knocked
        out this round)."""

        csr = self.csr
        indptr, indices, rows = csr.indptr, csr.indices, csr.rows
        retired = rem & ~self.candidate & (self.weight <= 0)
        live = rem & ~self.candidate & ~retired
        not_top = self.active_e & (self.color[indices] >= self.color[rows])
        self._send_reduce(live & ~seg_any(not_top, indptr))
        if self.candidate.any():
            joined = rem & ~retired & self.candidate \
                & ~seg_any(self.wait_e, indptr)
        else:
            joined = np.zeros_like(rem)
        self._emit_decisions(retired if h_join is None else h_join | retired,
                             joined)

    # -- checkpoint payloads -------------------------------------------
    def export_in_flight(self) -> List[list]:
        nodes = self.csr.nodes
        rows, indices = self.csr.rows, self.csr.indices
        any_e = self.out_removed | self.out_join | self.out_reduce
        out = []
        for p in np.flatnonzero(any_e):
            p = int(p)
            if self.out_removed[p]:
                payload = ("removed",)
            elif self.out_join[p]:
                payload = ("join",)
            else:
                payload = ("reduce", int(self.out_reduce_amt[int(rows[p])]))
            out.append([nodes[int(rows[p])], nodes[int(indices[p])], payload])
        return out

    def export_live(self) -> Dict[Hashable, dict]:
        nodes = self.csr.nodes
        live: Dict[Hashable, dict] = {}
        for i in np.flatnonzero(~self.halted):
            i = int(i)
            live[nodes[i]] = {"sleeping": False, "rng": self.export_rng(i),
                              "program": self._base_program_state(i)}
        return live

    def _restore(self, state: dict) -> None:
        index = self.csr.index
        edge_pos = self.csr.edge_pos
        for i in np.flatnonzero(~self.halted):
            self._restore_base_program(
                int(i), self._live_program_state(state, int(i))
            )
        for src, dst, payload in state["in_flight"]:
            s, d = index[src], index[dst]
            p = edge_pos[(s, d)]
            kind = payload[0]
            if kind == "removed":
                self.out_removed[p] = True
            elif kind == "join":
                self.out_join[p] = True
            elif kind == "reduce":
                self.out_reduce[p] = True
                self.out_reduce_amt[s] = _as_int(payload[1])
            else:
                raise ArrayBackendUnsupported(f"unknown payload {kind!r}")


@register_kernel
class ProposalKernel(ArrayKernel):
    """Lemma B.13's bipartite proposal matcher (``proposal-matching``).

    Two rounds per phase: even rounds seal accepted matches, retire
    isolated/deadline nodes, and let left nodes propose on a random
    live edge; odd rounds let each proposed-to right node accept its
    highest-``repr`` proposer (retire broadcast, accept overwriting the
    winner's slot — one message per edge, all 4-bit tags).
    """

    PROGRAM = "repro.core.proposal_matching.ProposalProgram"
    KINDS = ("propose", "retired", "accept")

    def __init__(self, net, csr, programs):
        super().__init__(net, csr, programs)
        if not csr.unique_reprs:
            raise ArrayBackendUnsupported("proposals need unique node reprs")
        n, m2 = csr.n, csr.m2
        self.is_left = np.fromiter((p.side == "L" for p in programs),
                                   dtype=bool, count=n)
        phases = []
        for program in programs:
            if not isinstance(program.phases, int):
                raise ArrayBackendUnsupported("non-integer phase deadline")
            phases.append(program.phases)
        self.phases = _int64_array(phases, n)
        if self.phases.size and int(np.abs(self.phases).max()) >= (1 << 60):
            raise ArrayBackendUnsupported("phase deadline too large")
        self.live_e = np.zeros(m2, dtype=bool)
        self.has_proposed = np.zeros(n, dtype=bool)
        self.proposed_idx = np.zeros(n, dtype=np.int64)
        self.out_retired = np.zeros(m2, dtype=bool)
        self.out_accept = np.zeros(m2, dtype=bool)
        self.out_propose = np.zeros(m2, dtype=bool)

    def start(self) -> None:
        self.live_e[:] = True

    def step(self, round_index: int) -> None:
        csr = self.csr
        indptr, indices, rows = csr.indptr, csr.indices, csr.rows
        deg = csr.degree
        nodes = csr.nodes
        in_retired = self.out_retired[csr.mirror]
        in_accept = self.out_accept[csr.mirror]
        in_propose = self.out_propose[csr.mirror]
        m2 = csr.m2
        self.out_retired = np.zeros(m2, dtype=bool)
        self.out_accept = np.zeros(m2, dtype=bool)
        self.out_propose = np.zeros(m2, dtype=bool)

        alive = ~self.halted
        # The retired handler runs first in every on_round.
        self.live_e &= ~in_retired
        out = self.node_output
        if round_index % 2 == 0:
            sealed = alive & seg_any(in_accept, indptr)
            partner = seg_max(np.where(in_accept, indices, -1), indptr)
            rem = alive & ~sealed
            isolated = rem & ~seg_any(self.live_e, indptr)
            rem &= ~isolated
            unlucky = rem & (round_index // 2 >= self.phases)
            rem &= ~unlucky
            for i in np.flatnonzero(rem & self.is_left):
                i = int(i)
                lo = int(indptr[i])
                pos = np.flatnonzero(self.live_e[lo:int(indptr[i + 1])]) + lo
                # rng.choice over the rank-sorted live positions draws
                # the same stream (one _randbelow(len)) and lands on the
                # same neighbor as choice(sorted(live, key=repr)).
                p = int(self.rng(i).choice(pos))
                self.out_propose[p] = True
                self.proposed_idx[i] = indices[p]
                self.has_proposed[i] = True
            self.out_retired = sealed[rows]
            self.charge_sends(np.where(sealed, deg, 0), TAG_BITS)
            self.charge_sends((rem & self.is_left).astype(np.int64), TAG_BITS)
            done = sealed | isolated | unlucky
            if done.any():
                halted_now = np.flatnonzero(done)
                for i in halted_now:
                    i = int(i)
                    if sealed[i]:
                        out[i] = (MATCHED, nodes[int(partner[i])])
                    elif isolated[i]:
                        out[i] = (ISOLATED, None)
                    else:
                        out[i] = (UNLUCKY, None)
                self.record_halts(halted_now)
        else:
            right = alive & ~self.is_left
            prop_in = in_propose & right[rows]
            responders = right & seg_any(prop_in, indptr)
            cand_rank = np.where(prop_in, csr.rank[indices], -1)
            top_rank = seg_max(cand_rank, indptr)
            win_e = prop_in & (cand_rank == top_rank[rows])
            self.out_retired = responders[rows] & ~win_e
            self.out_accept = win_e
            self.charge_sends(np.where(responders, deg, 0), TAG_BITS)
            if responders.any():
                winner = seg_max(np.where(win_e, indices, -1), indptr)
                halted_now = np.flatnonzero(responders)
                for i in halted_now:
                    i = int(i)
                    out[i] = (MATCHED, nodes[int(winner[i])])
                self.record_halts(halted_now)

    # -- checkpoint payloads -------------------------------------------
    def export_in_flight(self) -> List[list]:
        nodes = self.csr.nodes
        rows, indices = self.csr.rows, self.csr.indices
        any_e = self.out_retired | self.out_accept | self.out_propose
        out = []
        for p in np.flatnonzero(any_e):
            p = int(p)
            if self.out_retired[p]:
                payload = ("retired",)
            elif self.out_accept[p]:
                payload = ("accept",)
            else:
                payload = ("propose",)
            out.append([nodes[int(rows[p])], nodes[int(indices[p])], payload])
        return out

    def export_live(self) -> Dict[Hashable, dict]:
        csr = self.csr
        nodes = csr.nodes
        live: Dict[Hashable, dict] = {}
        for i in np.flatnonzero(~self.halted):
            i = int(i)
            lo, hi = int(csr.indptr[i]), int(csr.indptr[i + 1])
            members = {nodes[int(j)]
                       for j in csr.indices[lo:hi][self.live_e[lo:hi]]}
            proposed = nodes[int(self.proposed_idx[i])] \
                if self.has_proposed[i] else None
            live[nodes[i]] = {
                "sleeping": False,
                "rng": self.export_rng(i),
                "program": {"live": members, "proposed_to": proposed},
            }
        return live

    def _restore(self, state: dict) -> None:
        index = self.csr.index
        edge_pos = self.csr.edge_pos
        for i in np.flatnonzero(~self.halted):
            i = int(i)
            prog = self._live_program_state(state, i)
            for u in prog["live"]:
                self.live_e[edge_pos[(i, index[u])]] = True
            proposed = prog["proposed_to"]
            if proposed is not None:
                self.proposed_idx[i] = index[proposed]
                self.has_proposed[i] = True
        for src, dst, payload in state["in_flight"]:
            p = edge_pos[(index[src], index[dst])]
            kind = payload[0]
            if kind == "retired":
                self.out_retired[p] = True
            elif kind == "accept":
                self.out_accept[p] = True
            elif kind == "propose":
                self.out_propose[p] = True
            else:
                raise ArrayBackendUnsupported(f"unknown payload {kind!r}")
