"""Array-native simulator backend (CSR adjacency + numpy round kernels).

The per-node-object simulator in :mod:`repro.congest.network` pays
Python-object overhead for every message and every node every round; at
n ≈ 10⁴–10⁵ that overhead dominates the run.  This module provides the
flat alternative (ROADMAP item NUM-1): the graph is compiled once into a
CSR adjacency structure, per-node protocol state lives in numpy arrays,
and each simulator round is executed by a *vectorized round kernel* that
exchanges all messages of the round as batched array operations.

Design constraints, in order of priority:

1. **Bit-compatibility.**  An array run must be indistinguishable from
   the object run: same outputs, same rounds/messages/bits/violations
   counters, same checkpoint payloads, same randomness.  Per-node RNG
   streams (``stable_rng(seed, node, proto)``) are independent, so the
   kernels keep one ``random.Random`` per node and draw from it exactly
   when the object program would — only the message exchange and the
   state updates are vectorized.
2. **Same contract.**  :class:`ArrayNetwork` subclasses
   :class:`~repro.congest.network.SynchronousNetwork` and honours the
   full ``run`` / ``run_stepwise`` protocol — ``StepSnapshot`` streams,
   ``stop_on_limit`` budget cuts, ``capture_state`` / ``resume_state``
   checkpointing (payloads are interchangeable between backends), and
   cumulative :class:`~repro.congest.network.NetworkMetrics`.
3. **Transparent fallback.**  Kernels are registered per program class
   (:data:`KERNELS`); a program without a kernel — or a run using
   features the kernels do not model (participants subsets, traces,
   quiescence, strict bandwidth enforcement) — silently executes on the
   inherited object path.  Callers never need to know which engine ran.

Only the bit-accounting *diagnostics* differ: the array backend has no
payload memo cache, so ``metrics.payload_cache`` stays empty (it is
documented as diagnostic-only and excluded from artifacts).
"""

from __future__ import annotations

import itertools
import os
import weakref
from typing import Callable, Dict, Hashable, Iterable, List, Optional

import networkx as nx

try:  # numpy is an optional accelerator: without it, every run
    import numpy as np  # falls back to the object backend.
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None

from ..errors import InvalidInstance, RoundLimitExceeded
from .network import (
    CONGEST,
    NetworkMetrics,
    RunResult,
    StepSnapshot,
    SynchronousNetwork,
)
from .node import NodeProgram

#: Environment variable consulted when an Instance does not pin a
#: backend explicitly; CI uses it to force the whole tier-1 suite
#: through the array path.
BACKEND_ENV = "REPRO_BACKEND"
OBJECT_BACKEND = "object"
ARRAY_BACKEND = "array"
BACKENDS = (OBJECT_BACKEND, ARRAY_BACKEND)


class ArrayBackendUnsupported(Exception):
    """Raised by a kernel that cannot model this particular run.

    Internal control flow only: :meth:`ArrayNetwork.run_stepwise`
    catches it and falls back to the object backend, so callers never
    see it.  Typical causes: weights too large for exact int64
    accounting, node ``repr`` collisions (the tie-break order would be
    ambiguous), or per-node configuration the kernel expects to be
    homogeneous.
    """


def resolve_backend(backend: Optional[str]) -> str:
    """Resolve an explicit/None backend choice against the environment."""

    if backend is None:
        backend = os.environ.get(BACKEND_ENV) or OBJECT_BACKEND
    if backend not in BACKENDS:
        raise InvalidInstance(
            f"unknown simulator backend {backend!r} (expected one of {BACKENDS})"
        )
    return backend


def make_network(
    graph: nx.Graph,
    model: str = CONGEST,
    seed: int = 0,
    bandwidth_factor: int = 8,
    strict: bool = False,
    backend: Optional[str] = None,
) -> SynchronousNetwork:
    """Simulator factory honouring the backend selection protocol.

    ``backend=None`` consults the ``REPRO_BACKEND`` environment
    variable and defaults to the object backend.  The array backend is
    safe to request unconditionally: algorithms without a vectorized
    kernel fall back to the object path transparently, bit-for-bit.
    """

    cls = ArrayNetwork if resolve_backend(backend) == ARRAY_BACKEND \
        else SynchronousNetwork
    return cls(graph, model=model, seed=seed,
               bandwidth_factor=bandwidth_factor, strict=strict)


# ----------------------------------------------------------------------
# CSR adjacency
# ----------------------------------------------------------------------
class GraphCSR:
    """Compressed-sparse-row adjacency compiled once per network.

    Each undirected edge appears as two directed positions; row ``i``
    spans ``indices[indptr[i]:indptr[i+1]]`` and is sorted by the
    neighbor's ``repr``-rank so kernels that need the object backend's
    lexicographic tie-breaks (``sorted(..., key=repr)``) can read rows
    in that order directly.  ``mirror[p]`` is the position of the
    reverse edge, which turns "messages node j sent" into "messages
    node i received" with one gather.
    """

    __slots__ = ("nodes", "index", "indptr", "indices", "mirror", "rank",
                 "degree", "rows", "n", "m2", "unique_reprs", "_edge_pos")

    def __init__(self, graph: nx.Graph, adjacency: Dict[Hashable, tuple]):
        nodes = list(graph.nodes)
        n = len(nodes)
        self.nodes = nodes
        self.index = {v: i for i, v in enumerate(nodes)}
        reprs = [repr(v) for v in nodes]
        self.unique_reprs = len(set(reprs)) == n
        order = sorted(range(n), key=reprs.__getitem__)
        rank = np.empty(n, dtype=np.int64)
        rank[order] = np.arange(n, dtype=np.int64)
        self.rank = rank
        degree = np.fromiter(
            (len(adjacency[v]) for v in nodes), dtype=np.int64, count=n,
        )
        self.degree = degree
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degree, out=indptr[1:])
        self.indptr = indptr
        m2 = int(indptr[-1])
        self.n = n
        self.m2 = m2
        index = self.index
        # One flat pass over the adjacency; per-row rank order comes from
        # a stable lexsort instead of n python ``sorted`` calls.  ``rows``
        # is the primary (already sorted) key, so ``rows[perm] == rows``
        # and ties within a row keep adjacency order — exactly what the
        # stable python sort produced before.
        flat = np.fromiter(
            map(index.__getitem__,
                itertools.chain.from_iterable(
                    map(adjacency.__getitem__, nodes))),
            dtype=np.int64, count=m2,
        )
        rows = np.repeat(np.arange(n, dtype=np.int64), degree)
        perm = np.lexsort((rank[flat], rows))
        indices = flat[perm]
        self.indices = indices
        self.rows = rows
        # Mirrors pair the two directed positions of each undirected
        # edge: sorting positions by the canonical (min, max) endpoint
        # key makes every pair adjacent, and a singleton key is a
        # self-loop whose mirror is itself.
        mirror = np.arange(m2, dtype=np.int64)
        if m2:
            lo = np.minimum(rows, indices)
            hi = np.maximum(rows, indices)
            by_key = np.lexsort((lo, hi))
            paired = ((hi[by_key][:-1] == hi[by_key][1:])
                      & (lo[by_key][:-1] == lo[by_key][1:]))
            first = by_key[:-1][paired]
            second = by_key[1:][paired]
            mirror[first] = second
            mirror[second] = first
        self.mirror = mirror
        self._edge_pos = None

    @property
    def edge_pos(self) -> Dict[tuple, int]:
        """``(row, col) -> position`` map, built lazily.

        Only the resume/restore paths need it, so steady-state runs
        never pay for the dict over every directed edge.
        """

        pos = self._edge_pos
        if pos is None:
            rows = self.rows.tolist()
            cols = self.indices.tolist()
            pos = {(i, j): p for p, (i, j) in enumerate(zip(rows, cols))}
            self._edge_pos = pos
        return pos


#: Per-graph CSR cache: the compiled adjacency is topology-only (no
#: weights, no seeds, never written by kernels), so every network built
#: over the same graph object can share one instance — repeated solves
#: on one workload skip the O(n + m) compile.  Weak keys keep graphs
#: collectable.
_CSR_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _shared_csr(graph: nx.Graph, adjacency: Dict[Hashable, tuple]) -> GraphCSR:
    """The cached :class:`GraphCSR` for ``graph``, compiled on first use.

    A cache hit is validated against the current node list and degree
    sequence, so adding/removing nodes or edges in place triggers a
    recompile.  (A degree-preserving rewire of the *same* graph object
    is the one mutation this misses; no supported path mutates solved
    graphs at all, let alone that way.)
    """

    try:
        cached = _CSR_CACHE.get(graph)
    except TypeError:  # unhashable / un-weakref-able graph subclass
        return GraphCSR(graph, adjacency)
    if cached is not None and cached.n == graph.number_of_nodes():
        try:
            degrees = np.fromiter(
                (len(adjacency[v]) for v in cached.nodes),
                dtype=np.int64, count=cached.n,
            )
        except KeyError:  # node set changed
            degrees = None
        if degrees is not None and np.array_equal(degrees, cached.degree):
            return cached
    csr = GraphCSR(graph, adjacency)
    try:
        _CSR_CACHE[graph] = csr
    except TypeError:  # pragma: no cover - unhashable graph subclass
        pass
    return csr

    def row(self, i: int) -> slice:
        """The ``indices`` slice of node ``i``'s neighbors."""

        return slice(int(self.indptr[i]), int(self.indptr[i + 1]))


# ----------------------------------------------------------------------
# Segment reductions over CSR rows
# ----------------------------------------------------------------------
def _seg_reduce(ufunc, values, indptr, empty):
    """Per-row ``ufunc`` reduction; ``empty`` fills zero-degree rows.

    ``reduceat`` with only the non-empty row starts is exact here
    because CSR rows are contiguous: the next non-empty start is always
    the current row's end.
    """

    out = np.full(len(indptr) - 1, empty, dtype=values.dtype)
    starts = indptr[:-1]
    nonempty = starts < indptr[1:]
    if values.size and nonempty.any():
        out[nonempty] = ufunc.reduceat(values, starts[nonempty])
    return out


def seg_max(values, indptr):
    """Row-wise max (empty rows get the dtype-appropriate minimum)."""

    empty = np.iinfo(values.dtype).min if values.dtype.kind == "i" else 0
    return _seg_reduce(np.maximum, values, indptr, empty)


def seg_sum(values, indptr):
    """Row-wise sum (empty rows get 0)."""

    return _seg_reduce(np.add, values, indptr, 0)


def seg_any(mask, indptr):
    """Row-wise logical OR of a boolean edge mask."""

    return _seg_reduce(np.logical_or, mask, indptr, False)


def bit_lengths(values):
    """Vectorized ``int.bit_length`` for non-negative int64 values.

    Exact for values below 2**52 (the float64 mantissa): ``frexp``
    returns the exponent of the exact float image, which for a positive
    integer equals its bit length.  Kernels must gate their inputs
    (:class:`ArrayBackendUnsupported`) before relying on this.
    """

    return np.frexp(values.astype(np.float64))[1].astype(np.int64)


def int_word_bits(values):
    """``word_bits`` for non-negative integer payload words."""

    return np.maximum(1, bit_lengths(values)) + 1


#: Guard for :func:`bit_lengths` exactness: kernels refuse inputs whose
#: integer payload words can reach this bound.
MAX_EXACT_INT = 1 << 50

#: Bits charged for a short string tag (see repro.congest.message).
TAG_BITS = 4


# ----------------------------------------------------------------------
# Kernel base class and registry
# ----------------------------------------------------------------------
class ArrayKernel:
    """One vectorized algorithm on one :class:`GraphCSR`.

    Subclasses implement the whole protocol in array form and are
    responsible for *exact* metric accounting (they update the
    network's counters through :meth:`charge`).  The engine drives:

    * :meth:`start` — ``on_start`` semantics (before round 0),
    * :meth:`step` — one synchronous round,
    * :meth:`export_*` / :meth:`restore` — the checkpoint payload, in
      the object backend's format so payloads are interchangeable,
    * :meth:`outputs` / :attr:`halted_count` — results.
    """

    #: Fully-qualified program class this kernel vectorizes.
    PROGRAM: str = ""

    #: Payload tags this kernel's protocol uses; resumed in-flight
    #: messages with any other tag force a fallback.
    KINDS: tuple = ()

    def __init__(self, net: "ArrayNetwork", csr: GraphCSR,
                 programs: List[NodeProgram]):
        self.net = net
        self.csr = csr
        self.total = csr.n
        self.proto = 0
        self.tracking = False
        self._fresh: List[tuple] = []
        self._rngs: Dict[int, object] = {}
        self._restored = False
        self.halted = np.zeros(csr.n, dtype=bool)
        self.halted_count = 0
        #: Final output per node position (``None`` until the node halts).
        self.node_output: List[object] = [None] * csr.n

    # -- engine wiring -------------------------------------------------
    def bind(self, proto: int) -> None:
        """Pin this run's protocol index (the RNG stream derivation)."""

        self.proto = proto

    def rng(self, i: int):
        """The per-node RNG, derived lazily but identically to the
        object backend's ``stable_rng(seed, node, proto)``."""

        r = self._rngs.get(i)
        if r is None:
            # Same derivation as utils.stable_rng, minus the
            # random.Random.seed python wrapper: seeding through the C
            # base class directly is state-identical for int seeds
            # (pinned by tests) and ~3x cheaper, which matters when a
            # large run touches every node's stream.
            import _random
            from hashlib import sha256
            from random import Random

            key = "|".join(
                (str(self.net.seed), repr(self.csr.nodes[i]),
                 repr(self.proto))
            )
            a = int.from_bytes(sha256(key.encode("utf-8")).digest()[:8],
                               "big")
            r = Random.__new__(Random)
            _random.Random.seed(r, a)
            r.gauss_next = None
            self._rngs[i] = r
        return r

    def record_halts(self, indices) -> None:
        """Mark nodes halted and log them (participant order) for
        ``StepSnapshot.newly_halted``; ``node_output`` must already hold
        their outputs."""

        self.halted[indices] = True
        self.halted_count += int(len(indices))
        if self.tracking:
            nodes = self.csr.nodes
            out = self.node_output
            for i in indices:
                i = int(i)
                self._fresh.append((nodes[i], out[i]))

    def drain_fresh(self) -> tuple:
        fresh = tuple(self._fresh)
        self._fresh.clear()
        return fresh

    def pending_nodes(self) -> tuple:
        nodes = self.csr.nodes
        return tuple(nodes[int(i)] for i in np.flatnonzero(~self.halted))

    def charge(self, count: int, bits: int, max_bits: int,
               violations: int) -> None:
        """Accumulate one batch of sends into the network counters."""

        if not count:
            return
        metrics = self.net.metrics
        metrics.messages += count
        metrics.bits += bits
        if max_bits > metrics.max_bits_per_edge_round:
            metrics.max_bits_per_edge_round = max_bits
        if max_bits > self.net._run_max_bits:
            self.net._run_max_bits = max_bits
        metrics.violations += violations

    def charge_sends(self, msgs, bits) -> None:
        """Meter one batch of sends from per-sender count/size arrays.

        ``msgs[i]`` messages of ``bits[i]`` bits each (``bits`` may be a
        scalar); exactly the totals the object backend's per-node
        ``_collect`` accumulates, including the per-message CONGEST
        violation count.
        """

        sel = msgs > 0
        if not sel.any():
            return
        bits = np.broadcast_to(np.asarray(bits, dtype=np.int64), msgs.shape)
        m = msgs[sel]
        b = bits[sel]
        violations = 0
        if self.congest:
            over = b > self.net.bandwidth
            if over.any():
                violations = int(m[over].sum())
        self.charge(int(m.sum()), int((m * b).sum()), int(b.max()),
                    violations)

    @property
    def congest(self) -> bool:
        return self.net.model == CONGEST

    # -- protocol ------------------------------------------------------
    def start(self) -> None:
        """``on_start`` semantics for every node (no inbox)."""

    def step(self, round_index: int) -> None:  # pragma: no cover
        raise NotImplementedError

    def outputs(self) -> Dict[Hashable, object]:
        """Final outputs keyed by node, in participant order."""

        return {node: self.node_output[i]
                for i, node in enumerate(self.csr.nodes)}

    def export_in_flight(self) -> List[list]:  # pragma: no cover
        raise NotImplementedError

    def export_halted(self) -> Dict[Hashable, object]:
        """Checkpoint payload: output per halted node (participant order)."""

        nodes = self.csr.nodes
        out = self.node_output
        return {nodes[int(i)]: out[int(i)]
                for i in np.flatnonzero(self.halted)}

    def export_live(self) -> Dict[Hashable, dict]:  # pragma: no cover
        raise NotImplementedError

    # -- resume --------------------------------------------------------
    def restore(self, state: dict) -> None:
        """Load a checkpoint payload (idempotent; see
        :meth:`validate_resume`)."""

        if self._restored:
            return
        self._restore_halted(state)
        self._restore(state)
        self._restored = True

    def validate_resume(self, state: dict) -> None:
        """Attempt the restore eagerly, before the engine commits.

        A payload the kernel cannot model — sleeping nodes, foreign
        payload tags, structurally odd state — surfaces here as
        :class:`ArrayBackendUnsupported` so the run falls back to the
        object backend *before* any protocol-index or metric side
        effects.  Genuine payload corruption (a node the graph does not
        know) still raises :class:`~repro.errors.SimulationError`
        exactly like the object backend.
        """

        try:
            self.restore(state)
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            raise ArrayBackendUnsupported(str(exc)) from exc

    def _restore_halted(self, state: dict) -> None:
        index = self.csr.index
        for node, output in state["halted"].items():
            i = index[node]
            self.halted[i] = True
            self.halted_count += 1
            self.node_output[i] = output

    def _live_program_state(self, state: dict, i: int) -> dict:
        """Fetch node ``i``'s live entry, mirroring the object backend's
        unknown-node error; refuse payloads with sleeping nodes (none of
        the vectorized protocols ever sleep)."""

        from ..errors import SimulationError

        node = self.csr.nodes[i]
        entry = state["live"].get(node)
        if entry is None:
            raise SimulationError(
                f"resume state knows nothing about node {node!r}"
            )
        if entry["sleeping"]:
            raise ArrayBackendUnsupported("sleeping nodes are not modeled")
        self.restore_rng(i, entry["rng"])
        return entry["program"]

    def _restore(self, state: dict) -> None:  # pragma: no cover
        raise NotImplementedError

    # -- shared export helpers -----------------------------------------
    def export_rng(self, i: int) -> list:
        version, internals, gauss = self.rng(i).getstate()
        return [version, list(internals), gauss]

    def restore_rng(self, i: int, state) -> None:
        if state is None:
            # Fresh entry spliced in by the dynamic-graph compat
            # policy: keep the lazily-derived stable stream, matching
            # the object backend's fresh-node behavior bit for bit.
            return
        version, internals, gauss = state
        self.rng(i).setstate((version, tuple(internals), gauss))


#: Registry of vectorized kernels, keyed by the fully-qualified name of
#: the NodeProgram class they replace.  Keyed by name (not type) so the
#: congest package never imports the algorithm modules (which import
#: congest — registration stays cycle-free).
KERNELS: Dict[str, type] = {}


def register_kernel(kernel_cls: type) -> type:
    """Register ``kernel_cls`` for its :attr:`ArrayKernel.PROGRAM`."""

    path = kernel_cls.PROGRAM
    if not path:
        raise ValueError(f"{kernel_cls.__name__} does not name its PROGRAM")
    if path in KERNELS:
        raise ValueError(f"kernel for {path!r} already registered")
    KERNELS[path] = kernel_cls
    return kernel_cls


def _program_path(program: NodeProgram) -> str:
    cls = type(program)
    return f"{cls.__module__}.{cls.__qualname__}"


# ----------------------------------------------------------------------
# The array-native network
# ----------------------------------------------------------------------
class ArrayNetwork(SynchronousNetwork):
    """Array-native drop-in for :class:`SynchronousNetwork`.

    Construction is identical; behaviour is identical (bit-for-bit,
    including metrics and checkpoint payloads).  The only difference is
    *how* a run executes: when the program has a registered kernel and
    the run uses no object-only feature, the whole protocol runs as
    batched numpy operations over a CSR adjacency; otherwise the
    inherited object path runs.  The parity suite in
    ``tests/congest/test_array_backend.py`` pins the equivalence.
    """

    def __init__(self, graph: nx.Graph, model: str = CONGEST, seed: int = 0,
                 bandwidth_factor: int = 8, strict: bool = False):
        super().__init__(graph, model=model, seed=seed,
                         bandwidth_factor=bandwidth_factor, strict=strict)
        self._csr: Optional[GraphCSR] = None

    def _ensure_csr(self) -> GraphCSR:
        if self._csr is None:
            self._csr = _shared_csr(self.graph, self._adjacency)
        return self._csr

    def run_stepwise(
        self,
        program_factory: Callable[[Hashable], NodeProgram],
        participants: Optional[Iterable[Hashable]] = None,
        max_rounds: int = 10_000,
        label: str = "protocol",
        quiescence_halts: bool = False,
        stop_on_limit: bool = False,
        checkpoint_every: Optional[int] = None,
        capture_state: bool = False,
        resume_state: Optional[dict] = None,
    ):
        """Array-dispatching twin of the object backend's generator.

        Falls back to the inherited implementation whenever the array
        engine cannot guarantee bit-compatibility: numpy missing, a
        participant subset, quiescence scheduling, a trace or
        round-end hook, ``strict`` bandwidth enforcement (the exact
        violating ``(src, dst)`` pair matters there), an unregistered
        program class, or kernel-level feasibility checks failing.
        """

        object_path = super().run_stepwise
        kwargs = dict(
            participants=participants, max_rounds=max_rounds, label=label,
            quiescence_halts=quiescence_halts, stop_on_limit=stop_on_limit,
            checkpoint_every=checkpoint_every, capture_state=capture_state,
            resume_state=resume_state,
        )
        if (np is None or participants is not None or quiescence_halts
                or self.strict or self.trace is not None
                or self.on_round_end is not None or self._n == 0):
            return object_path(program_factory, **kwargs)
        nodes = list(self.graph.nodes)
        probe = program_factory(nodes[0])
        kernel_cls = KERNELS.get(_program_path(probe))
        if kernel_cls is None:
            return object_path(program_factory, **kwargs)
        programs = [probe] + [program_factory(v) for v in nodes[1:]]
        try:
            kernel = kernel_cls(self, self._ensure_csr(), programs)
            if resume_state is not None:
                kernel.validate_resume(resume_state)
        except ArrayBackendUnsupported:
            return object_path(program_factory, **kwargs)
        return self._drive_kernel(
            kernel, max_rounds=max_rounds, label=label,
            stop_on_limit=stop_on_limit, checkpoint_every=checkpoint_every,
            capture_state=capture_state, resume_state=resume_state,
        )

    def _drive_kernel(self, kernel: ArrayKernel, max_rounds: int, label: str,
                      stop_on_limit: bool, checkpoint_every: Optional[int],
                      capture_state: bool, resume_state: Optional[dict]):
        """The kernel-driven round loop (mirrors the object loop
        decision-for-decision; see the parent for the semantics)."""

        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self._protocol_index += 1
        kernel.bind(self._protocol_index)
        metrics = self.metrics
        base_messages = metrics.messages
        base_bits = metrics.bits
        base_violations = metrics.violations
        self._run_max_bits = 0
        tracking = checkpoint_every is not None
        kernel.tracking = tracking

        start_round = 0
        if resume_state is None:
            kernel.start()
        else:
            start_round = resume_state["round"]
            kernel.restore(resume_state)
            counters = resume_state["metrics"]
            metrics.messages += counters["messages"]
            metrics.bits += counters["bits"]
            metrics.violations += counters["violations"]
            metrics.max_bits_per_edge_round = max(
                metrics.max_bits_per_edge_round,
                counters["max_bits_per_edge_round"],
            )
            metrics.rounds += counters["rounds"]
            for phase_label, charged in counters["round_breakdown"].items():
                metrics.round_breakdown[phase_label] = (
                    metrics.round_breakdown.get(phase_label, 0) + charged
                )

        total = kernel.total
        rounds_used = start_round
        for round_index in range(start_round, max_rounds):
            if kernel.halted_count == total:
                break
            kernel.step(round_index)
            rounds_used = round_index + 1
            if tracking and rounds_used % checkpoint_every == 0:
                yield StepSnapshot(rounds=rounds_used,
                                   halted=kernel.halted_count, total=total,
                                   newly_halted=kernel.drain_fresh())
        else:
            if kernel.halted_count != total and not stop_on_limit:
                raise RoundLimitExceeded(max_rounds, kernel.pending_nodes())

        outputs = kernel.outputs()
        metrics.charge_rounds(rounds_used - start_round, label)
        run_metrics = NetworkMetrics(
            rounds=rounds_used,
            messages=metrics.messages - base_messages,
            bits=metrics.bits - base_bits,
            max_bits_per_edge_round=self._run_max_bits,
            violations=metrics.violations - base_violations,
            round_breakdown={label: rounds_used} if rounds_used else {},
            payload_cache={},
        )
        if tracking:
            state = None
            if capture_state:
                state = {
                    "round": rounds_used,
                    "in_flight": kernel.export_in_flight(),
                    "halted": kernel.export_halted(),
                    "live": kernel.export_live(),
                    "metrics": {
                        "rounds": metrics.rounds,
                        "messages": metrics.messages,
                        "bits": metrics.bits,
                        "max_bits_per_edge_round":
                            metrics.max_bits_per_edge_round,
                        "violations": metrics.violations,
                        "round_breakdown": dict(metrics.round_breakdown),
                    },
                }
            yield StepSnapshot(rounds=rounds_used, halted=kernel.halted_count,
                               total=total, newly_halted=kernel.drain_fresh(),
                               final=True, state=state)
        return RunResult(outputs=outputs, rounds=rounds_used,
                         metrics=run_metrics,
                         completed=kernel.halted_count == total)


# Kernel registration (imports at the bottom: array_kernels imports the
# base class and registry from this module).
if np is not None:
    from . import array_kernels  # noqa: F401,E402

__all__ = [
    "ARRAY_BACKEND",
    "ArrayBackendUnsupported",
    "ArrayKernel",
    "ArrayNetwork",
    "BACKENDS",
    "BACKEND_ENV",
    "GraphCSR",
    "KERNELS",
    "MAX_EXACT_INT",
    "OBJECT_BACKEND",
    "TAG_BITS",
    "bit_lengths",
    "int_word_bits",
    "make_network",
    "register_kernel",
    "resolve_backend",
    "seg_any",
    "seg_max",
    "seg_sum",
]
