"""Round accounting for phase-composed algorithms.

Several of the paper's algorithms are compositions: Algorithm 2 interleaves
an MIS black box with O(1)-round bookkeeping; the Hopcroft–Karp framework
runs O(1/ε) phases each simulating a conflict-graph round in O(ℓ) base
rounds; Appendix B.3 groups Θ(1/ε²) CONGEST rounds to ship wide numbers.

A :class:`RoundLedger` lets a driver charge rounds to named phases exactly
the way the paper's analyses do, while message-level sub-protocols run on
the real simulator and contribute their measured rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class RoundLedger:
    """Accumulates rounds charged by a composed algorithm."""

    total: int = 0
    breakdown: Dict[str, int] = field(default_factory=dict)

    def charge(self, rounds: int, label: str) -> None:
        """Charge ``rounds`` synchronous rounds to phase ``label``."""

        if rounds < 0:
            raise ValueError(f"cannot charge negative rounds ({rounds})")
        self.total += rounds
        self.breakdown[label] = self.breakdown.get(label, 0) + rounds

    def charge_broadcast(self, payload_bits: int, bandwidth: int,
                         label: str) -> None:
        """Charge the rounds needed to ship ``payload_bits`` over one edge.

        CONGEST carries ``bandwidth`` bits per round; wider payloads are
        pipelined over consecutive rounds (the paper's Appendix B.3 remark
        about grouping Θ(1/ε²) rounds).
        """

        rounds = max(1, -(-payload_bits // bandwidth))
        self.charge(rounds, label)

    def merge(self, other: "RoundLedger") -> None:
        for label, rounds in other.breakdown.items():
            self.charge(rounds, label)

    def as_dict(self) -> Dict[str, int]:
        return dict(self.breakdown, total=self.total)
