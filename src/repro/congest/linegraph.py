"""Line-graph execution and the Section 2.4 congestion audit.

A maximum matching in ``G`` is a maximum independent set in the line graph
``L(G)``.  The paper executes its MaxIS algorithms on ``L(G)`` by assigning
each edge of ``G`` to one endpoint (its *primary* node) that simulates it
[Kuh05].  In the LOCAL model this is free; in CONGEST a naive simulation
pays a Δ-factor congestion penalty because a primary node may simulate up
to Δ line-nodes, each talking to up to 2Δ−2 line-neighbors.

Theorem 2.8 shows that *local aggregation algorithms* (Definition 2.7)
avoid the penalty: both endpoints of an edge mirror its simulated state, so
each endpoint can locally fold the aggregate over the line-neighbors it
hosts and ship a single partial aggregate across the physical edge.

This module provides:

* :func:`line_graph` — canonical line-graph construction,
* :func:`primary_endpoint` — the simulation assignment,
* :class:`CongestionAudit` / :func:`run_on_line_graph` — execute a node
  program on ``L(G)`` while measuring, per physical edge of ``G`` and per
  round, the message load of (a) the naive simulation and (b) the
  aggregation mechanism.  The audit is what `benchmarks/bench_congestion.py`
  uses to reproduce the Theorem 2.8 separation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Optional, Tuple

import networkx as nx

from .message import Envelope
from .network import CONGEST, RunResult, SynchronousNetwork

LineNode = Tuple[Hashable, Hashable]


def canonical_edge(u: Hashable, v: Hashable) -> LineNode:
    """Return the canonical (sorted) representation of edge ``{u, v}``."""

    return (u, v) if repr(u) <= repr(v) else (v, u)


def line_graph(graph: nx.Graph) -> nx.Graph:
    """Build ``L(G)``: one node per edge, adjacency = shared endpoint.

    Edge weights of ``G`` (attribute ``weight``) become node weights of
    ``L(G)`` (attribute ``weight``), matching the reduction in Section 2.4.
    """

    lg = nx.Graph()
    for u, v, data in graph.edges(data=True):
        lg.add_node(canonical_edge(u, v), weight=data.get("weight", 1))
    for node in graph.nodes:
        incident = [canonical_edge(node, w) for w in graph.neighbors(node)]
        for i, e1 in enumerate(incident):
            for e2 in incident[i + 1:]:
                lg.add_edge(e1, e2)
    return lg


def primary_endpoint(edge: LineNode) -> Hashable:
    """The endpoint that simulates this line-node (we pick the larger)."""

    return edge[1]


def secondary_endpoint(edge: LineNode) -> Hashable:
    return edge[0]


def shared_endpoint(e1: LineNode, e2: LineNode) -> Hashable:
    """Return the endpoint shared by two adjacent line-nodes."""

    common = set(e1) & set(e2)
    if not common:
        raise ValueError(f"line nodes {e1} and {e2} are not adjacent")
    return next(iter(common))


@dataclass
class CongestionAudit:
    """Per-round physical-edge load under the two simulation strategies.

    ``naive_load[(u, v)]`` counts, for the busiest round, the messages that
    must cross physical edge ``{u, v}`` if every line-graph message is
    routed from the primary of its source to the primary of its target.

    ``aggregated_load`` counts the messages of the Theorem 2.8 mechanism:
    per round, each physical edge carries at most one partial-aggregate
    message (secondary → primary) and one state-update message
    (primary → secondary), independent of Δ.
    """

    naive_per_round: Dict[int, Dict[Tuple[Hashable, Hashable], int]] = field(
        default_factory=dict
    )
    aggregated_per_round: Dict[int, Dict[Tuple[Hashable, Hashable], int]] = (
        field(default_factory=dict)
    )

    def _bump(self, table: Dict, round_index: int,
              edge: Tuple[Hashable, Hashable], amount: int = 1) -> None:
        per_edge = table.setdefault(round_index, {})
        per_edge[edge] = per_edge.get(edge, 0) + amount

    def record_line_message(self, round_index: int, src: LineNode,
                            dst: LineNode) -> None:
        """Account one L(G)-message under the naive routing."""

        shared = shared_endpoint(src, dst)
        for simulator, endpoint in (
            (primary_endpoint(src), shared),
            (primary_endpoint(dst), shared),
        ):
            if simulator != endpoint:
                self._bump(self.naive_per_round, round_index,
                           canonical_edge(simulator, endpoint))

    def record_aggregated_round(self, round_index: int,
                                graph: nx.Graph) -> None:
        """Account the fixed two-message-per-edge cost of Theorem 2.8."""

        per_edge = self.aggregated_per_round.setdefault(round_index, {})
        for u, v in graph.edges:
            per_edge[canonical_edge(u, v)] = 2

    # ------------------------------------------------------------------
    def max_naive_load(self) -> int:
        """Maximum messages over any physical edge in any round (naive)."""

        return max(
            (load for per_edge in self.naive_per_round.values()
             for load in per_edge.values()),
            default=0,
        )

    def max_aggregated_load(self) -> int:
        return max(
            (load for per_edge in self.aggregated_per_round.values()
             for load in per_edge.values()),
            default=0,
        )


def run_on_line_graph(
    graph: nx.Graph,
    program_factory: Callable[[LineNode], "NodeProgram"],
    model: str = CONGEST,
    seed: int = 0,
    max_rounds: int = 10_000,
    label: str = "line-graph protocol",
    audit: Optional[CongestionAudit] = None,
    participants=None,
    quiescence_halts: bool = False,
) -> RunResult:
    """Execute a node program on ``L(G)`` with optional congestion audit.

    The protocol itself runs on the line graph (that is the abstraction the
    paper's Section 2.4 uses); the audit maps every line-graph message back
    to physical-edge traffic so the Theorem 2.8 separation can be measured.
    """

    lg = line_graph(graph)
    network = SynchronousNetwork(lg, model=model, seed=seed)
    if audit is not None:
        def trace(round_index: int, envelope: Envelope) -> None:
            audit.record_line_message(round_index, envelope.src, envelope.dst)
            audit.record_aggregated_round(round_index, graph)

        network.trace = trace
    return network.run(program_factory, participants=participants,
                       max_rounds=max_rounds, label=label,
                       quiescence_halts=quiescence_halts)
