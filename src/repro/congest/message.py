"""Message representation and CONGEST bit accounting.

In the CONGEST model each link carries one B-bit message per round, with
B = O(log n).  We model a message payload as a tuple of *words* (bools,
ints, floats and short strings) and charge bits per word:

* ``bool``  — 1 bit,
* ``int``   — its two's-complement bit length (at least 1) plus a sign bit,
* ``float`` — 64 bits (the paper charges O(log Δ/ε²) bits for fixed-point
  attenuation values; a float is our fixed-width stand-in and the ledger
  charges extra rounds when a payload exceeds the bandwidth),
* ``str``   — short strings (≤ 12 chars) are protocol-constant message
  tags drawn from a fixed finite alphabet and cost 4 bits; longer strings
  are charged 8 bits per character (they carry real data).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Tuple

Word = bool | int | float | str
Payload = Tuple[Word, ...]


def word_bits(word: Word) -> int:
    """Return the number of bits charged for one payload word."""

    if isinstance(word, bool):
        return 1
    if isinstance(word, int):
        return max(1, abs(word).bit_length()) + 1
    if isinstance(word, float):
        return 64
    if isinstance(word, str):
        return 4 if len(word) <= 12 else 8 * len(word)
    raise TypeError(f"unsupported message word type: {type(word).__name__}")


def payload_bits(payload: Payload) -> int:
    """Total bits charged for a payload (sum over its words)."""

    return sum(word_bits(word) for word in payload)


@dataclass(frozen=True)
class Envelope:
    """A message in flight: source, destination and an immutable payload."""

    src: Hashable
    dst: Hashable
    payload: Payload

    @property
    def bits(self) -> int:
        return payload_bits(self.payload)
