"""Synchronous message-passing network simulator (LOCAL / CONGEST).

The simulator executes a :class:`~repro.congest.node.NodeProgram` on every
participating node of a graph in lockstep rounds, delivering each round's
messages at the start of the next round, exactly as the synchronous model
of Peleg's book prescribes.  It meters:

* rounds executed,
* messages and bits sent,
* the maximum bits carried by any directed edge in any round, and
* CONGEST bandwidth violations (messages larger than ``bandwidth`` bits).

In ``strict`` mode a violation raises; by default it is recorded so that
experiments can *measure* congestion (e.g. the naive line-graph simulation
of Section 2.4, whose whole point is that it violates CONGEST by a Δ
factor unless the aggregation mechanism of Theorem 2.8 is used).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Optional

import networkx as nx

from ..errors import BandwidthViolation, RoundLimitExceeded, SimulationError
from ..utils import stable_rng
from .message import Envelope, payload_bits
from .node import NodeContext, NodeProgram

#: Execution models.  LOCAL imposes no bandwidth limit; CONGEST limits each
#: message to ``bandwidth_factor * ceil(log2 n)`` bits.
LOCAL = "LOCAL"
CONGEST = "CONGEST"


@dataclass
class NetworkMetrics:
    """Counters accumulated over one or more protocol executions.

    ``payload_cache`` holds ``round_breakdown``-style diagnostic
    counters for the simulator's payload bit-accounting memo cache
    (``hits`` / ``misses`` / ``evictions``); it is diagnostic-only and
    deliberately excluded from artifact snapshots.
    """

    rounds: int = 0
    messages: int = 0
    bits: int = 0
    max_bits_per_edge_round: int = 0
    violations: int = 0
    round_breakdown: Dict[str, int] = field(default_factory=dict)
    payload_cache: Dict[str, int] = field(default_factory=dict)

    def charge_rounds(self, rounds: int, label: str = "protocol") -> None:
        self.rounds += rounds
        self.round_breakdown[label] = self.round_breakdown.get(label, 0) + rounds

    def cache_hit_rate(self) -> float:
        """Fraction of payload bit-cost lookups served from the cache."""

        hits = self.payload_cache.get("hits", 0)
        misses = self.payload_cache.get("misses", 0)
        total = hits + misses
        return hits / total if total else 0.0

    def merge(self, other: "NetworkMetrics") -> None:
        self.rounds += other.rounds
        self.messages += other.messages
        self.bits += other.bits
        self.max_bits_per_edge_round = max(
            self.max_bits_per_edge_round, other.max_bits_per_edge_round
        )
        self.violations += other.violations
        for label, rounds in other.round_breakdown.items():
            self.round_breakdown[label] = (
                self.round_breakdown.get(label, 0) + rounds
            )
        for key, count in other.payload_cache.items():
            self.payload_cache[key] = self.payload_cache.get(key, 0) + count


@dataclass
class StepSnapshot:
    """Mid-run view yielded by :meth:`SynchronousNetwork.run_stepwise`.

    ``newly_halted`` lists the ``(node, output)`` pairs of nodes that
    halted since the previous snapshot, so an anytime consumer can
    maintain a partial solution incrementally instead of re-scanning
    all ``n`` outputs at every checkpoint.  The last snapshot of a run
    has ``final=True`` (it is emitted even when the round count does
    not align with ``checkpoint_every``).

    ``state`` is the full execution state at this boundary — only on
    the final snapshot of a run started with ``capture_state=True``
    (the resume protocol needs exactly the point where a budget cut
    the run; capturing every boundary would tax the common path).
    Feed it back through ``run_stepwise(..., resume_state=...)`` to
    continue the run as if it had never stopped.
    """

    rounds: int
    halted: int
    total: int
    newly_halted: tuple
    final: bool = False
    state: Optional[dict] = None


@dataclass
class RunResult:
    """Outcome of executing one protocol on the network.

    ``metrics`` is this run's **own** delta — a fresh
    :class:`NetworkMetrics` covering exactly the rounds/messages/bits
    of this protocol execution, never an alias of the network-global
    cumulative counter (which keeps accumulating across runs and lives
    on :attr:`SynchronousNetwork.metrics`).  Concurrent or
    multi-protocol consumers can therefore read per-run totals without
    double counting.  ``completed`` is false when the run ended by
    quiescence with participants still unhalted.
    """

    outputs: Dict[Hashable, object]
    rounds: int
    metrics: NetworkMetrics
    completed: bool = True

    def output_set(self, value=True) -> set:
        """Return the nodes whose output equals ``value`` (membership style)."""

        return {node for node, out in self.outputs.items() if out == value}


class SynchronousNetwork:
    """A synchronous network over a fixed undirected graph.

    Parameters
    ----------
    graph:
        The communication topology.  Node identifiers may be any hashable.
    model:
        ``LOCAL`` or ``CONGEST``.
    seed:
        Master seed; each node receives an independent deterministic RNG
        derived from ``(seed, node, protocol_index)`` so repeated protocol
        executions on the same network do not reuse randomness.
    bandwidth_factor:
        CONGEST messages may carry ``bandwidth_factor * ceil(log2 n)`` bits.
        The classic model is ``O(log n)``; the paper's Appendix B.3
        explicitly groups Θ(1/ε²) rounds to ship longer numbers, which we
        reproduce by charging extra rounds in the drivers instead of
        widening messages.
    strict:
        If true, a bandwidth violation raises :class:`BandwidthViolation`
        instead of being recorded.
    """

    def __init__(self, graph: nx.Graph, model: str = CONGEST, seed: int = 0,
                 bandwidth_factor: int = 8, strict: bool = False):
        if model not in (LOCAL, CONGEST):
            raise ValueError(f"unknown model {model!r}")
        self.graph = graph
        self.model = model
        self.seed = seed
        self.strict = strict
        n = max(2, graph.number_of_nodes())
        self.bandwidth = bandwidth_factor * math.ceil(math.log2(n))
        self.metrics = NetworkMetrics()
        self._protocol_index = 0
        self._max_degree = max((d for _, d in graph.degree()), default=0)
        #: Adjacency computed once per network; every run() reuses it
        #: instead of re-walking the networkx structure.
        self._adjacency: Dict[Hashable, tuple] = {
            node: tuple(graph.neighbors(node)) for node in graph.nodes
        }
        self._n = graph.number_of_nodes()
        #: Payloads repeat heavily (broadcasts send one tuple to every
        #: neighbor, protocols reuse the same tags round after round), so
        #: bit-accounting is memoised per payload tuple.  The cache is
        #: shared across runs and bounded: on overflow the oldest entry
        #: is evicted (FIFO over dict insertion order) instead of the
        #: cache silently ceasing to admit new payloads.  Hit/miss/
        #: eviction counters land in ``metrics.payload_cache``.
        self._bits_cache: Dict[tuple, int] = {}
        self._bits_cache_limit = 1 << 16
        #: Largest single message of the *current* run, reset per run so
        #: RunResult.metrics can report a per-run max while the network
        #: counter keeps the cumulative max.
        self._run_max_bits = 0
        #: Optional callback ``(round_index, envelope)`` invoked for every
        #: message sent; used by the line-graph congestion auditor.
        self.trace: Optional[Callable[[int, Envelope], None]] = None
        #: Optional callback ``(round_index, active, delivered)`` invoked
        #: at the end of every round; used by ExecutionRecorder.
        self.on_round_end: Optional[Callable[[int, int, int], None]] = None

    # ------------------------------------------------------------------
    # protocol execution
    # ------------------------------------------------------------------
    def run(
        self,
        program_factory: Callable[[Hashable], NodeProgram],
        participants: Optional[Iterable[Hashable]] = None,
        max_rounds: int = 10_000,
        label: str = "protocol",
        quiescence_halts: bool = False,
        stop_on_limit: bool = False,
    ) -> RunResult:
        """Execute one protocol and accumulate its cost into ``metrics``.

        The protocol ends when every participant has halted.  If
        ``quiescence_halts`` is true it also ends after a round in which no
        messages were delivered or sent (useful for protocols whose laggards
        merely wait for notifications that will never come).  With
        ``stop_on_limit`` an exhausted ``max_rounds`` budget ends the
        run cooperatively — the partial outputs are returned with
        ``completed=False`` — instead of raising
        :class:`~repro.errors.RoundLimitExceeded`; this is the anytime
        protocol's budget interruption, and it costs nothing beyond the
        rounds actually executed.

        Scheduling is wake-list based: the round loop maintains the set
        of *runnable* programs — every non-halted node is runnable by
        default (synchronous semantics: nodes may act spontaneously),
        minus nodes that parked themselves with
        :meth:`~repro.congest.node.NodeContext.sleep` and have received
        no mail since.  A halted or sleeping node costs nothing per
        round; a running halted counter replaces the former O(n)
        per-round scans, so late protocol phases where almost every
        node has finished run in time proportional to the survivors,
        not to n.

        The returned :class:`RunResult` carries this run's private
        metrics delta; the cumulative totals keep accruing on
        ``self.metrics``.
        """

        from ..utils import drain

        return drain(self.run_stepwise(
            program_factory, participants=participants,
            max_rounds=max_rounds, label=label,
            quiescence_halts=quiescence_halts,
            stop_on_limit=stop_on_limit,
        ))

    def run_stepwise(
        self,
        program_factory: Callable[[Hashable], NodeProgram],
        participants: Optional[Iterable[Hashable]] = None,
        max_rounds: int = 10_000,
        label: str = "protocol",
        quiescence_halts: bool = False,
        stop_on_limit: bool = False,
        checkpoint_every: Optional[int] = None,
        capture_state: bool = False,
        resume_state: Optional[dict] = None,
    ):
        """Generator form of :meth:`run` for anytime consumers.

        With ``checkpoint_every=k`` the generator yields a
        :class:`StepSnapshot` after every ``k`` executed rounds plus one
        final snapshot, then returns the :class:`RunResult` (readable
        as ``StopIteration.value``).  With ``checkpoint_every=None`` it
        never yields — :meth:`run` drains it in one ``next()`` — so the
        default path pays no snapshot bookkeeping.  Closing the
        generator early abandons the run without charging further
        rounds.

        Checkpoint/resume (the warm-start protocol):

        * ``capture_state=True`` attaches the full execution state to
          the run's *final* snapshot — next round index, undelivered
          in-flight messages, halted nodes with their outputs, and per
          live node the program's dynamic state
          (:meth:`~repro.congest.node.NodeProgram.export_state`), RNG
          state and sleep flag, plus the cumulative metric counters.
        * ``resume_state=<that dict>`` restores it: programs are built
          by the factory but ``restore_state`` replaces ``on_start``
          (no side effects re-run), round numbering and the snapshot
          cadence continue from the captured boundary, in-flight mail
          is re-delivered, and metric accounting *continues* — the
          captured counters are merged into ``self.metrics`` and only
          the continuation's rounds are charged — so a truncated run
          resumed here is bit-for-bit the run that never stopped.
          ``max_rounds`` stays a cap on the *cumulative* round count.
          The one deliberate exception is ``payload_cache``: those
          hit/miss/eviction diagnostics describe *this process's*
          memo cache (cold after a resume), so they are neither
          captured nor merged.
        """

        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        nodes = list(self.graph.nodes if participants is None else participants)
        for node in nodes:
            if node not in self.graph:
                raise SimulationError(f"participant {node} is not in the graph")

        self._protocol_index += 1
        proto = self._protocol_index
        everyone = len(nodes) == self._n

        contexts: Dict[Hashable, NodeContext] = {}
        pairs: List[tuple] = []  # (ctx, program), execution order
        adjacency = self._adjacency
        if not everyone:
            node_set = set(nodes)
        for node in nodes:
            neighbors = adjacency[node]
            if not everyone:
                neighbors = tuple(v for v in neighbors if v in node_set)
            ctx = NodeContext(
                node=node,
                neighbors=neighbors,
                rng=stable_rng(self.seed, node, proto),
                n=self._n,
                max_degree=self._max_degree,
            )
            contexts[node] = ctx
            pairs.append((ctx, program_factory(node)))

        metrics = self.metrics
        base_messages = metrics.messages
        base_bits = metrics.bits
        base_violations = metrics.violations
        base_hits = metrics.payload_cache.get("hits", 0)
        base_misses = metrics.payload_cache.get("misses", 0)
        base_evictions = metrics.payload_cache.get("evictions", 0)
        self._run_max_bits = 0

        in_flight: List[tuple] = []
        halted_count = 0
        #: Snapshot bookkeeping: only paid when checkpoints are wanted.
        tracking = checkpoint_every is not None
        fresh: List[tuple] = []  # (node, output) halted since last snapshot
        #: Runnable programs in execution (participant) order, as
        #: (position, ctx, program) so late wake-ups re-merge in order.
        runnable: List[tuple] = []
        start_round = 0
        if resume_state is None:
            for pos, (ctx, program) in enumerate(pairs):
                program.on_start(ctx)
                if ctx._outbox:
                    self._collect(ctx, in_flight)
                if ctx._halted:
                    halted_count += 1
                    if tracking:
                        fresh.append((ctx.node, ctx.output))
                elif not ctx._sleeping:
                    runnable.append((pos, ctx, program))
        else:
            start_round = resume_state["round"]
            halted_outputs = resume_state["halted"]
            live_states = resume_state["live"]
            for pos, (ctx, program) in enumerate(pairs):
                if ctx.node in halted_outputs:
                    ctx._halted = True
                    ctx.output = halted_outputs[ctx.node]
                    halted_count += 1
                    continue
                state = live_states.get(ctx.node)
                if state is None:
                    raise SimulationError(
                        f"resume state knows nothing about node {ctx.node!r}"
                    )
                if state["rng"] is not None:
                    version, internals, gauss = state["rng"]
                    ctx.rng.setstate((version, tuple(internals), gauss))
                # A ``None`` RNG marks a *fresh* entry (spliced in by the
                # dynamic-graph compat policy): the node keeps the
                # stable per-node stream it was built with, exactly as
                # on a fresh run, so both backends derive identically.
                program.restore_state(state["program"])
                if state["sleeping"]:
                    ctx._sleeping = True
                else:
                    runnable.append((pos, ctx, program))
            in_flight = [tuple(message)
                         for message in resume_state["in_flight"]]
            counters = resume_state["metrics"]
            metrics.messages += counters["messages"]
            metrics.bits += counters["bits"]
            metrics.violations += counters["violations"]
            metrics.max_bits_per_edge_round = max(
                metrics.max_bits_per_edge_round,
                counters["max_bits_per_edge_round"],
            )
            metrics.rounds += counters["rounds"]
            for phase_label, charged in counters["round_breakdown"].items():
                metrics.round_breakdown[phase_label] = (
                    metrics.round_breakdown.get(phase_label, 0) + charged
                )
        #: Sleeping, non-halted programs awaiting mail.
        parked: Dict[int, tuple] = {
            id(ctx): (pos, ctx, program)
            for pos, (ctx, program) in enumerate(pairs)
            if ctx._sleeping and not ctx._halted
        }

        total = len(pairs)
        rounds_used = start_round
        touched: List[NodeContext] = []  # inboxes holding last round's mail
        for round_index in range(start_round, max_rounds):
            if halted_count == total:
                break
            if not runnable and not in_flight:
                # Everyone left is parked and no mail can ever arrive:
                # the network is deadlocked.  Quiescence ends the run —
                # counting this (empty) round, so a protocol ported to
                # sleep() reports the same round total as its busy-wait
                # twin, which executes one last quiet round before the
                # bottom-of-loop quiescence check fires.  Otherwise
                # report the sleepers without spinning through the
                # remaining rounds.
                if quiescence_halts:
                    rounds_used = round_index + 1
                    if self.on_round_end is not None:
                        self.on_round_end(round_index,
                                          total - halted_count, 0)
                    break
                raise RoundLimitExceeded(rounds_used, tuple(
                    node for node in nodes if not contexts[node].halted
                ))
            for ctx in touched:
                ctx.inbox.clear()
            touched.clear()
            delivered = 0
            woken = False
            for src, dst, payload in in_flight:
                ctx = contexts[dst]
                if ctx._halted:
                    continue
                inbox = ctx.inbox
                if not inbox:
                    touched.append(ctx)
                inbox[src] = payload
                delivered += 1
                if ctx._sleeping:
                    ctx._sleeping = False
                    runnable.append(parked.pop(id(ctx)))
                    woken = True
            if woken:
                runnable.sort()

            in_flight = []
            still_runnable: List[tuple] = []
            for entry in runnable:
                _, ctx, program = entry
                ctx.round = round_index
                program.on_round(ctx)
                if ctx._outbox:
                    self._collect(ctx, in_flight)
                if ctx._halted:
                    halted_count += 1
                    if tracking:
                        fresh.append((ctx.node, ctx.output))
                elif ctx._sleeping:
                    parked[id(ctx)] = entry
                else:
                    still_runnable.append(entry)
            runnable = still_runnable
            rounds_used = round_index + 1

            if self.on_round_end is not None:
                self.on_round_end(round_index, total - halted_count,
                                  delivered)
            if tracking and rounds_used % checkpoint_every == 0:
                yield StepSnapshot(rounds=rounds_used, halted=halted_count,
                                   total=total, newly_halted=tuple(fresh))
                fresh.clear()
            if quiescence_halts and delivered == 0 and not in_flight:
                break
        else:
            pending = tuple(
                node for node in nodes if not contexts[node].halted
            )
            if pending and not stop_on_limit:
                raise RoundLimitExceeded(max_rounds, pending)

        outputs = {node: contexts[node].output for node in nodes}
        metrics.charge_rounds(rounds_used - start_round, label)
        cache_delta = {
            key: value
            for key, value in (
                ("hits", metrics.payload_cache.get("hits", 0) - base_hits),
                ("misses",
                 metrics.payload_cache.get("misses", 0) - base_misses),
                ("evictions",
                 metrics.payload_cache.get("evictions", 0) - base_evictions),
            )
            if value
        }
        run_metrics = NetworkMetrics(
            rounds=rounds_used,
            messages=metrics.messages - base_messages,
            bits=metrics.bits - base_bits,
            max_bits_per_edge_round=self._run_max_bits,
            violations=metrics.violations - base_violations,
            round_breakdown={label: rounds_used} if rounds_used else {},
            payload_cache=cache_delta,
        )
        if tracking:
            state = None
            if capture_state:
                halted_outputs: Dict[Hashable, object] = {}
                live: Dict[Hashable, dict] = {}
                for ctx, program in pairs:
                    if ctx._halted:
                        halted_outputs[ctx.node] = ctx.output
                        continue
                    version, internals, gauss = ctx.rng.getstate()
                    live[ctx.node] = {
                        "sleeping": ctx._sleeping,
                        "rng": [version, list(internals), gauss],
                        "program": program.export_state(),
                    }
                state = {
                    "round": rounds_used,
                    "in_flight": [list(message) for message in in_flight],
                    "halted": halted_outputs,
                    "live": live,
                    "metrics": {
                        "rounds": metrics.rounds,
                        "messages": metrics.messages,
                        "bits": metrics.bits,
                        "max_bits_per_edge_round":
                            metrics.max_bits_per_edge_round,
                        "violations": metrics.violations,
                        "round_breakdown": dict(metrics.round_breakdown),
                    },
                }
            yield StepSnapshot(rounds=rounds_used, halted=halted_count,
                               total=total, newly_halted=tuple(fresh),
                               final=True, state=state)
        return RunResult(outputs=outputs, rounds=rounds_used,
                         metrics=run_metrics,
                         completed=halted_count == total)

    # ------------------------------------------------------------------
    def _collect(self, ctx: NodeContext, in_flight: List[tuple]) -> None:
        """Drain ``ctx``'s outbox into ``in_flight``, metering as we go.

        Accounting is batched: counters are accumulated in locals and
        written to :class:`NetworkMetrics` once per drain, and payload
        bit-costs come from the per-network memo cache.  Envelope objects
        are only materialised when a trace hook is installed.
        """

        outbox = ctx.drain_outbox()
        metrics = self.metrics
        cache = self._bits_cache
        cache_limit = self._bits_cache_limit
        congest = self.model == CONGEST
        bandwidth = self.bandwidth
        trace = self.trace
        src = ctx.node
        count = 0
        total_bits = 0
        max_bits = 0
        hits = 0
        misses = 0
        evictions = 0
        for dst, payload in outbox.items():
            bits = cache.get(payload)
            if bits is None:
                misses += 1
                bits = payload_bits(payload)
                if len(cache) >= cache_limit:
                    # FIFO eviction over dict insertion order: drop the
                    # oldest payload so fresh traffic keeps caching.
                    del cache[next(iter(cache))]
                    evictions += 1
                cache[payload] = bits
            else:
                hits += 1
            count += 1
            total_bits += bits
            if bits > max_bits:
                max_bits = bits
            if congest and bits > bandwidth:
                if self.strict:
                    raise BandwidthViolation(src, dst, bits, bandwidth)
                metrics.violations += 1
            if trace is not None:
                trace(ctx.round, Envelope(src=src, dst=dst, payload=payload))
            in_flight.append((src, dst, payload))
        metrics.messages += count
        metrics.bits += total_bits
        if max_bits > metrics.max_bits_per_edge_round:
            metrics.max_bits_per_edge_round = max_bits
        if max_bits > self._run_max_bits:
            self._run_max_bits = max_bits
        if count:
            payload_cache = metrics.payload_cache
            payload_cache["hits"] = payload_cache.get("hits", 0) + hits
            payload_cache["misses"] = payload_cache.get("misses", 0) + misses
            if evictions:
                payload_cache["evictions"] = (
                    payload_cache.get("evictions", 0) + evictions
                )
