"""Node-program abstraction for the synchronous message-passing simulator.

An algorithm is written once, from the point of view of a single node, by
subclassing :class:`NodeProgram`.  The simulator instantiates one program
per node and drives all of them in lockstep rounds:

* :meth:`NodeProgram.on_start` runs before round 0; messages sent here are
  delivered in round 0.
* :meth:`NodeProgram.on_round` runs once per round with the node's inbox
  available via the context.
* A node leaves the protocol by calling :meth:`NodeContext.halt` with its
  output value.  Messages sent in the halting round are still delivered.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, Hashable, Tuple

from .message import Payload, Word


class NodeContext:
    """Per-node view of the network handed to a :class:`NodeProgram`.

    The context is persistent across rounds; the simulator refreshes its
    ``round`` and ``inbox`` fields before each invocation.
    """

    __slots__ = ("node", "neighbors", "rng", "round", "inbox",
                 "_outbox", "_halted", "_sleeping", "output", "n",
                 "max_degree")

    def __init__(self, node: Hashable, neighbors: Tuple[Hashable, ...],
                 rng: random.Random, n: int, max_degree: int):
        self.node = node
        self.neighbors = neighbors
        self.rng = rng
        self.n = n
        self.max_degree = max_degree
        self.round = -1
        self.inbox: Dict[Hashable, Payload] = {}
        self._outbox: Dict[Hashable, Payload] = {}
        self._halted = False
        self._sleeping = False
        self.output = None

    @property
    def degree(self) -> int:
        return len(self.neighbors)

    @property
    def halted(self) -> bool:
        return self._halted

    def send(self, dst: Hashable, *words: Word) -> None:
        """Queue one message for neighbor ``dst`` (overwrites earlier sends).

        CONGEST permits a single message per edge per direction per round,
        so sending twice to the same neighbor in one round replaces the
        previous payload rather than queueing a second message.
        """

        if dst not in self._outbox and dst not in self.neighbors:
            raise ValueError(f"{self.node} cannot send to non-neighbor {dst}")
        self._outbox[dst] = tuple(words)

    def broadcast(self, *words: Word) -> None:
        """Send the same payload to every neighbor."""

        payload = tuple(words)
        for neighbor in self.neighbors:
            self._outbox[neighbor] = payload

    def halt(self, output=None) -> None:
        """Stop participating in the protocol and record ``output``."""

        self._halted = True
        self.output = output

    def sleep(self) -> None:
        """Park this node until a message arrives (wake-list scheduling).

        A sleeping node is skipped by the simulator's round loop — its
        :meth:`NodeProgram.on_round` is not invoked — until some
        neighbor sends it a message, at which point it wakes and is
        stepped in the delivery round with that message in its inbox.
        Synchronous-model semantics are opt-in preserved: a node that
        never sleeps is stepped every round exactly as before.  Use
        this for "laggard" phases where a node only waits for a
        notification, so huge quiet node sets cost nothing per round.
        """

        self._sleeping = True

    @property
    def sleeping(self) -> bool:
        return self._sleeping

    def drain_outbox(self) -> Dict[Hashable, Payload]:
        outbox, self._outbox = self._outbox, {}
        return outbox


class NodeProgram(abc.ABC):
    """Behaviour of one node in a synchronous distributed algorithm."""

    def on_start(self, ctx: NodeContext) -> None:
        """Hook executed before the first round (round index -1)."""

    @abc.abstractmethod
    def on_round(self, ctx: NodeContext) -> None:
        """Hook executed once per round with ``ctx.inbox`` populated."""

    # -- checkpoint support (the resume protocol) ----------------------
    def export_state(self) -> dict:
        """The program's *dynamic* state at a round boundary.

        Programs that support mid-run checkpointing return a dict of
        everything :meth:`on_start` / :meth:`on_round` mutate (static
        configuration is re-derived by the program factory at resume
        time).  The dict must round-trip through
        :mod:`repro.api.serialize` — primitives, tuples, sets and
        node-keyed dicts only.  The default refuses, so asking the
        simulator to capture state for a program without checkpoint
        support fails loudly instead of silently dropping state.
        """

        raise NotImplementedError(
            f"{type(self).__name__} does not support checkpoint capture"
        )

    def restore_state(self, state: dict) -> None:
        """Restore what :meth:`export_state` captured.

        Called *instead of* :meth:`on_start` when a run is resumed, on
        a freshly constructed program: it must leave the program
        exactly as it was at the captured round boundary (no messages
        are sent — in-flight mail is restored by the simulator).
        """

        raise NotImplementedError(
            f"{type(self).__name__} does not support checkpoint restore"
        )


class IdleProgram(NodeProgram):
    """A program that halts immediately; useful as a placeholder."""

    def __init__(self, output=None):
        self._output = output

    def on_start(self, ctx: NodeContext) -> None:
        ctx.halt(self._output)

    def on_round(self, ctx: NodeContext) -> None:  # pragma: no cover
        ctx.halt(self._output)
