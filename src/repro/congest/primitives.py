"""Classic CONGEST primitives: flooding, BFS layering, convergecast.

These are the textbook building blocks [Pel00] that the paper's
algorithms implicitly assume (the Appendix B.3 traversals are BFS-style
sweeps; the aggregation mechanism of Theorem 2.8 is a one-hop
convergecast).  They are exposed as reusable node programs with the same
simulator API as everything else, and double as validation workloads
for the simulator itself: BFS distances are checked against networkx
shortest paths in the test suite.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

import networkx as nx

from ..errors import SimulationError
from .network import SynchronousNetwork
from .node import NodeContext, NodeProgram


class FloodProgram(NodeProgram):
    """Flood a token from a source; each node halts with its BFS depth.

    One round per BFS layer: a node that first hears the token at round
    r is at distance r+1; the source is at distance 0.  Nodes forward
    the token once and halt one round later (so the message is sent
    before the program stops participating).
    """

    def __init__(self, source: Hashable):
        self.source = source

    def on_start(self, ctx: NodeContext) -> None:
        self.distance: Optional[int] = None
        if ctx.node == self.source:
            self.distance = 0
            ctx.broadcast("flood")

    def on_round(self, ctx: NodeContext) -> None:
        if self.distance is not None:
            ctx.halt(self.distance)
            return
        if any(payload and payload[0] == "flood"
               for payload in ctx.inbox.values()):
            self.distance = ctx.round + 1
            ctx.broadcast("flood")


def flood_distances(
    graph: nx.Graph,
    source: Hashable,
    network: Optional[SynchronousNetwork] = None,
    max_rounds: int = 10_000,
) -> Tuple[Dict[Hashable, int], int]:
    """BFS distances from ``source`` by flooding; unreachable nodes get
    ``None``.  Returns ``(distances, rounds)``."""

    if source not in graph:
        raise SimulationError(f"source {source!r} is not in the graph")
    if network is None:
        network = SynchronousNetwork(graph, seed=0)
    result = network.run(lambda node: FloodProgram(source),
                         max_rounds=max_rounds, label="flood",
                         quiescence_halts=True)
    return dict(result.outputs), result.rounds


class BfsTreeProgram(NodeProgram):
    """Flooding that also records the parent (first forwarder heard)."""

    def __init__(self, source: Hashable):
        self.source = source

    def on_start(self, ctx: NodeContext) -> None:
        self.parent: Optional[Hashable] = None
        self.reached = ctx.node == self.source
        if self.reached:
            ctx.broadcast("tree")

    def on_round(self, ctx: NodeContext) -> None:
        if self.reached:
            ctx.halt(self.parent)
            return
        senders = sorted(
            (src for src, payload in ctx.inbox.items()
             if payload and payload[0] == "tree"),
            key=repr,
        )
        if senders:
            self.parent = senders[0]
            self.reached = True
            ctx.broadcast("tree")


def bfs_tree(
    graph: nx.Graph,
    source: Hashable,
    network: Optional[SynchronousNetwork] = None,
    max_rounds: int = 10_000,
) -> Dict[Hashable, Hashable]:
    """Parent pointers of a BFS tree rooted at ``source`` (root: None)."""

    if source not in graph:
        raise SimulationError(f"source {source!r} is not in the graph")
    if network is None:
        network = SynchronousNetwork(graph, seed=0)
    result = network.run(lambda node: BfsTreeProgram(source),
                         max_rounds=max_rounds, label="bfs-tree",
                         quiescence_halts=True)
    return dict(result.outputs)


def convergecast_sum(
    graph: nx.Graph,
    parents: Dict[Hashable, Optional[Hashable]],
    values: Dict[Hashable, int],
    root: Hashable,
) -> Tuple[int, int]:
    """Sum ``values`` up a tree toward ``root``; returns (sum, rounds).

    The classic convergecast: leaves send first; an internal node sends
    once all its children reported.  The round count is the tree height.
    This runs as a deterministic sweep over the explicit tree (the
    message-passing version is the same wave bottom-up).
    """

    children: Dict[Hashable, list] = {v: [] for v in parents}
    for v, parent in parents.items():
        if parent is not None:
            children.setdefault(parent, []).append(v)

    totals = dict(values)
    depth: Dict[Hashable, int] = {}

    def compute_depth(v: Hashable) -> int:
        if v in depth:
            return depth[v]
        kids = children.get(v, [])
        depth[v] = 0 if not kids else 1 + max(
            compute_depth(c) for c in kids
        )
        return depth[v]

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 4 * len(parents) + 100))
    try:
        height = compute_depth(root)
        order = sorted(parents, key=compute_depth)
    finally:
        sys.setrecursionlimit(old_limit)
    for v in order:
        parent = parents.get(v)
        if parent is not None:
            totals[parent] = totals.get(parent, 0) + totals[v]
    return totals[root], height
