"""Execution recording: round-by-round observability for protocol runs.

Attach an :class:`ExecutionRecorder` to a network to capture, per round,
how many nodes were still participating, how many messages were
delivered, and how many were sent.  This is the debugging facility used
when developing the reactive protocols in this library (e.g. to see the
Algorithm 2 addition-stage cascade draining), and powers the progress
tables some examples print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .message import Envelope
from .network import SynchronousNetwork


@dataclass(frozen=True)
class RoundRecord:
    """One round's activity snapshot."""

    round_index: int
    active_nodes: int
    delivered: int
    sent: int
    bits_sent: int


@dataclass
class ExecutionRecorder:
    """Collects :class:`RoundRecord` entries from an attached network.

    Attaching replaces the network's ``trace`` and ``on_round_end``
    hooks; detach (or attach a fresh recorder) before installing other
    hooks like the congestion auditor.
    """

    records: List[RoundRecord] = field(default_factory=list)
    _pending_sent: int = 0
    _pending_bits: int = 0

    def attach(self, network: SynchronousNetwork) -> "ExecutionRecorder":
        def trace(round_index: int, envelope: Envelope) -> None:
            self._pending_sent += 1
            self._pending_bits += envelope.bits

        def on_round_end(round_index: int, active: int,
                         delivered: int) -> None:
            self.records.append(RoundRecord(
                round_index=round_index,
                active_nodes=active,
                delivered=delivered,
                sent=self._pending_sent,
                bits_sent=self._pending_bits,
            ))
            self._pending_sent = 0
            self._pending_bits = 0

        network.trace = trace
        network.on_round_end = on_round_end
        return self

    # ------------------------------------------------------------------
    @property
    def rounds(self) -> int:
        return len(self.records)

    def active_series(self) -> List[int]:
        """Participating-node count per round (must be non-increasing
        for halting-only protocols — asserted in tests)."""

        return [r.active_nodes for r in self.records]

    def message_series(self) -> List[int]:
        return [r.sent for r in self.records]

    def busiest_round(self) -> RoundRecord:
        if not self.records:
            raise ValueError("no rounds recorded")
        return max(self.records, key=lambda r: r.sent)

    def summary(self) -> Dict[str, int]:
        return {
            "rounds": self.rounds,
            "messages": sum(r.sent for r in self.records),
            "bits": sum(r.bits_sent for r in self.records),
            "peak_round_messages": max(
                (r.sent for r in self.records), default=0
            ),
        }
