"""The paper's algorithms: local-ratio MaxIS, line-graph matching, and
the time-optimal (2+ε)/(1+ε) matching approximations.

.. deprecated:: entry points
    The per-algorithm functions re-exported here
    (``maxis_local_ratio_layers``, ``fast_matching_2eps``, …) and
    their per-algorithm result dataclasses remain supported as the
    implementation layer and as thin compatibility wrappers, but new
    code should go through the unified facade instead::

        from repro.api import Instance, solve
        report = solve(Instance(graph, seed=3), "maxis-layers")

    The facade runs the exact same code with the exact same seeds
    (``tests/api/test_facade_parity.py`` pins bit-for-bit parity) and
    returns one uniform :class:`repro.api.SolveReport` instead of a
    per-algorithm result type.
"""

from .aggregation import (
    ALGORITHM_2_AGGREGATES,
    AND,
    COUNT,
    MAX,
    MIN,
    OR,
    SUM,
    AggregateFunction,
    SimulationCost,
    fold_over_hosted_neighbors,
    theorem_2_8_simulation_cost,
    verify_aggregate,
)
from .augmenting import (
    augment_with_disjoint_paths,
    build_conflict_graph,
    canonical_path,
    enumerate_augmenting_paths,
    flip_augmenting_path,
    shortest_augmenting_path_length,
    verify_hk_phase,
)
from .congest_1eps import (
    BipartiteAugmentingPhase,
    CongestOneEpsResult,
    WaitingPhaseProgram,
    bipartite_matching_1eps,
    bipartite_matching_1eps_phases,
    congest_matching_1eps,
    congest_matching_1eps_stages,
    lemma_b11_budget,
    precision_round_factor,
    waiting_phase_wave,
)
from .fast_matching import (
    FastMatchingResult,
    bucketed_constant_approx_mwm,
    fast_matching_2eps,
    fast_matching_weighted_2eps,
    nearly_maximal_matching,
)
from .greedy_mis import (
    GreedyMISResult,
    greedy_mis,
    greedy_mis_phases,
    greedy_priorities,
)
from .hypergraph_matching import (
    HypergraphMatchingResult,
    good_round_cap,
    lemma_b3_budget,
    nearly_maximal_hypergraph_matching,
)
from .local_1eps import (
    OneEpsResult,
    local_matching_1eps,
    local_matching_1eps_phases,
    theorem_b4_round_budget,
)
from .local_ratio import (
    exchange_step,
    local_ratio_bound,
    random_mis_selector,
    sequential_local_ratio,
    sequential_local_ratio_iter,
    split_weights,
)
from .matching_via_lines import (
    MatchingResult,
    matching_lines_phases,
    matching_local_ratio,
)
from .maxis_coloring import (
    MaxISColoringProgram,
    MaxISColoringResult,
    maxis_coloring_phases,
    maxis_local_ratio_coloring,
)
from .maxis_layers import (
    LayerTrace,
    MaxISLayersProgram,
    MaxISResult,
    maxis_layers_phases,
    maxis_local_ratio_layers,
)
from .nearly_maximal_is import (
    NearlyMaximalISResult,
    improved_nearly_maximal_is,
    paper_k,
    residual_decay_series,
    theorem_3_1_budget,
)
from .proposal_matching import (
    ProposalResult,
    bipartite_proposal_matching,
    bipartite_proposal_phases,
    general_proposal_matching,
    general_proposal_phases,
    lemma_b13_rounds,
    optimal_k,
)
from .weight_groups import WeightGroupResult, weight_group_matching

__all__ = [
    "ALGORITHM_2_AGGREGATES",
    "AND",
    "AggregateFunction",
    "BipartiteAugmentingPhase",
    "COUNT",
    "CongestOneEpsResult",
    "FastMatchingResult",
    "GreedyMISResult",
    "HypergraphMatchingResult",
    "LayerTrace",
    "MAX",
    "MIN",
    "MatchingResult",
    "MaxISColoringProgram",
    "MaxISColoringResult",
    "MaxISLayersProgram",
    "MaxISResult",
    "NearlyMaximalISResult",
    "OR",
    "OneEpsResult",
    "ProposalResult",
    "SUM",
    "SimulationCost",
    "WaitingPhaseProgram",
    "WeightGroupResult",
    "augment_with_disjoint_paths",
    "bipartite_matching_1eps",
    "bipartite_matching_1eps_phases",
    "bipartite_proposal_matching",
    "bipartite_proposal_phases",
    "bucketed_constant_approx_mwm",
    "build_conflict_graph",
    "canonical_path",
    "congest_matching_1eps",
    "congest_matching_1eps_stages",
    "enumerate_augmenting_paths",
    "exchange_step",
    "fast_matching_2eps",
    "fast_matching_weighted_2eps",
    "flip_augmenting_path",
    "fold_over_hosted_neighbors",
    "general_proposal_matching",
    "general_proposal_phases",
    "good_round_cap",
    "greedy_mis",
    "greedy_mis_phases",
    "greedy_priorities",
    "improved_nearly_maximal_is",
    "lemma_b11_budget",
    "lemma_b13_rounds",
    "lemma_b3_budget",
    "local_matching_1eps",
    "local_matching_1eps_phases",
    "local_ratio_bound",
    "matching_lines_phases",
    "matching_local_ratio",
    "maxis_coloring_phases",
    "maxis_layers_phases",
    "maxis_local_ratio_coloring",
    "maxis_local_ratio_layers",
    "nearly_maximal_hypergraph_matching",
    "nearly_maximal_matching",
    "optimal_k",
    "paper_k",
    "precision_round_factor",
    "proposal_matching",
    "random_mis_selector",
    "residual_decay_series",
    "sequential_local_ratio",
    "sequential_local_ratio_iter",
    "shortest_augmenting_path_length",
    "split_weights",
    "theorem_2_8_simulation_cost",
    "theorem_3_1_budget",
    "theorem_b4_round_budget",
    "verify_aggregate",
    "verify_hk_phase",
    "waiting_phase_wave",
    "weight_group_matching",
]
