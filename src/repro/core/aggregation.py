"""Local aggregation algorithms (Definitions 2.4–2.7, Theorems 2.8–2.9).

The paper defines a family of algorithms whose only access to neighbor
data is through *aggregate functions* — order-invariant functions with a
joining function φ satisfying ``f(X) = φ(f(X1), f(X2))`` for any disjoint
partition ``X1 ∪ X2 = X``.  Such algorithms can be simulated on the line
graph in CONGEST with no congestion overhead (Theorem 2.8): both
endpoints of each edge mirror its state, each endpoint folds the
aggregate over the line-neighbors it hosts, and a single partial
aggregate crosses the physical edge per round.

This module provides the aggregate-function algebra, concrete instances
(AND, OR, MIN, MAX, SUM, COUNT — the ones Theorem 2.9 needs), a checker
used by property tests, and :func:`theorem_2_8_simulation_cost`, which
computes the per-edge message cost of simulating one line-graph round
under the naive strategy vs. the aggregation mechanism — the quantities
the congestion benchmark plots against Δ.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Sequence, Tuple

import networkx as nx

from ..errors import AlgorithmContractViolation


@dataclass(frozen=True)
class AggregateFunction:
    """An order-invariant function with a joining function (Def. 2.5).

    ``identity`` is the value of the empty input (the paper's padding
    with the empty character ε); ``join`` is φ.  ``f(X)`` is computed by
    folding φ over the inputs, which is exactly what makes the two-sided
    line-graph simulation of Theorem 2.8 possible.
    """

    name: str
    identity: object
    join: Callable[[object, object], object]

    def __call__(self, values: Iterable[object]) -> object:
        result = self.identity
        for value in values:
            result = self.join(result, value)
        return result


AND = AggregateFunction("and", True, lambda a, b: bool(a) and bool(b))
OR = AggregateFunction("or", False, lambda a, b: bool(a) or bool(b))
SUM = AggregateFunction("sum", 0, lambda a, b: a + b)
#: Count of true indicators.  Inputs must be booleans (0/1): a "count of
#: nonzero elements" over arbitrary ints is *not* an aggregate function
#: in the Definition 2.5 sense, because the joining function could not
#: tell partial counts from raw elements.
COUNT = AggregateFunction("count", 0, lambda a, b: a + b)
MIN = AggregateFunction(
    "min", float("inf"), lambda a, b: a if a <= b else b
)
MAX = AggregateFunction(
    "max", float("-inf"), lambda a, b: a if a >= b else b
)

#: The aggregate functions Algorithm 2 uses (Theorem 2.9's proof lists
#: Boolean AND/OR plus the weight-update SUM).
ALGORITHM_2_AGGREGATES: Tuple[AggregateFunction, ...] = (AND, OR, SUM, MAX)


def verify_aggregate(func: AggregateFunction,
                     sample: Sequence[object]) -> None:
    """Check Definition 2.5 on a concrete sample: order invariance and
    partition consistency.  Raises on violation (used by hypothesis
    tests with random samples)."""

    sample = list(sample)
    full = func(sample)
    if len(sample) <= 6:
        for perm in itertools.permutations(sample):
            if func(perm) != full:
                raise AlgorithmContractViolation(
                    f"{func.name} is not order invariant on {sample!r}"
                )
    for cut in range(len(sample) + 1):
        left, right = sample[:cut], sample[cut:]
        joined = func.join(func(left), func(right))
        if joined != full:
            raise AlgorithmContractViolation(
                f"{func.name} violates the partition law at cut {cut} "
                f"of {sample!r}"
            )


@dataclass
class SimulationCost:
    """Per-round physical-edge message cost of one line-graph round."""

    naive_max_load: int
    aggregated_max_load: int
    naive_total: int
    aggregated_total: int


def theorem_2_8_simulation_cost(graph: nx.Graph) -> SimulationCost:
    """Cost of simulating one broadcast round of a line-graph algorithm.

    Naive strategy: the primary endpoint of each edge ``e`` sends one
    message to the primary endpoint of every line-neighbor ``e'``; a
    message crosses a physical edge whenever the two primaries differ
    from the shared endpoint.  The busiest physical edge carries Θ(Δ)
    messages.

    Aggregation strategy (Theorem 2.8): each physical edge carries one
    partial aggregate (secondary → primary) plus one state update
    (primary → secondary) regardless of Δ.
    """

    from ..congest.linegraph import canonical_edge, primary_endpoint

    naive: dict = {}
    for u, v in graph.edges:
        e = canonical_edge(u, v)
        for shared in (u, v):
            for w in graph.neighbors(shared):
                if w == u or w == v:
                    continue
                e2 = canonical_edge(shared, w)
                # Message e -> e2 routed primary(e) -> shared -> primary(e2).
                for hop_src, hop_dst in (
                    (primary_endpoint(e), shared),
                    (primary_endpoint(e2), shared),
                ):
                    if hop_src != hop_dst:
                        key = canonical_edge(hop_src, hop_dst)
                        naive[key] = naive.get(key, 0) + 1
    aggregated = {canonical_edge(u, v): 2 for u, v in graph.edges}
    return SimulationCost(
        naive_max_load=max(naive.values(), default=0),
        aggregated_max_load=max(aggregated.values(), default=0),
        naive_total=sum(naive.values()),
        aggregated_total=sum(aggregated.values()),
    )


def fold_over_hosted_neighbors(
    graph: nx.Graph,
    edge: Tuple[Hashable, Hashable],
    endpoint: Hashable,
    values: dict,
    func: AggregateFunction,
) -> object:
    """One endpoint's partial aggregate over the line-neighbors it hosts.

    This is the computational half of the Theorem 2.8 mechanism: endpoint
    ``endpoint`` of edge ``edge`` folds ``func`` over the data of every
    incident edge other than ``edge`` itself.  The caller then joins the
    two endpoints' partials — tests assert this equals the direct
    aggregate over all line-neighbors.
    """

    u, v = edge
    if endpoint not in (u, v):
        raise AlgorithmContractViolation(
            f"{endpoint!r} is not an endpoint of {edge!r}"
        )
    from ..congest.linegraph import canonical_edge

    hosted = []
    for w in graph.neighbors(endpoint):
        if {endpoint, w} == {u, v}:
            continue
        hosted.append(values[canonical_edge(endpoint, w)])
    return func(hosted)
