"""Hopcroft–Karp augmenting-path machinery (Appendix B.2 preliminaries).

Facts used throughout (classical, [HK73], restated in the paper):

1. a matching with no augmenting path of length ≤ 2⌈1/ε⌉+1 is a
   (1+ε)-approximation of the maximum matching;
2. augmenting along a maximal set of vertex-disjoint *shortest*
   augmenting paths strictly increases the shortest augmenting-path
   length.

This module provides path enumeration (the virtual nodes of the conflict
graph), flipping, conflict-graph construction, and validity checks.  Path
enumeration is exponential in the path length in the worst case (up to
Δ^ℓ paths); an optional ``cap`` bounds the work and the caller records
when truncation occurred (the paper's CONGEST algorithm of Appendix B.3
exists precisely because materializing these paths is infeasible — we
materialize them only for the LOCAL-model algorithm on small instances).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

import networkx as nx

from ..errors import AlgorithmContractViolation
from ..graphs import is_augmenting_path, matched_nodes

Path = Tuple[Hashable, ...]


def canonical_path(path: Path) -> Path:
    """Paths are undirected; normalize to the lexicographically smaller
    orientation so enumeration yields each path once."""

    forward = tuple(path)
    backward = tuple(reversed(path))
    return forward if repr(forward) <= repr(backward) else backward


def enumerate_augmenting_paths(
    graph: nx.Graph,
    matching: Set[frozenset],
    length: int,
    active: Optional[Set[Hashable]] = None,
    cap: Optional[int] = None,
) -> List[Path]:
    """All augmenting paths of exactly ``length`` edges (odd), deduplicated.

    ``active`` restricts the search to a node subset (deactivated nodes
    are excluded per Theorem B.4's bookkeeping).  ``cap`` stops the
    search after that many paths — callers must treat a full-cap result
    as possibly truncated.
    """

    if length % 2 == 0:
        raise AlgorithmContractViolation(
            f"augmenting paths have odd length, got {length}"
        )
    scope = set(graph.nodes) if active is None else set(active)
    covered = matched_nodes(matching)
    mate: Dict[Hashable, Hashable] = {}
    for edge in matching:
        u, v = tuple(edge)
        mate[u] = v
        mate[v] = u

    found: Set[Path] = set()
    free_nodes = sorted((v for v in scope if v not in covered), key=repr)
    for start in free_nodes:
        stack: List[Tuple[Path, bool]] = [((start,), False)]
        # ``expect_matched`` alternates: step 0 unmatched, step 1 matched...
        while stack:
            path, expect_matched = stack.pop()
            tail = path[-1]
            if len(path) == length + 1:
                if tail not in covered:
                    found.add(canonical_path(path))
                    if cap is not None and len(found) >= cap:
                        return sorted(found, key=repr)
                continue
            if expect_matched:
                nxt = mate.get(tail)
                if nxt is not None and nxt in scope and nxt not in path:
                    stack.append((path + (nxt,), False))
            else:
                for nxt in graph.neighbors(tail):
                    if nxt not in scope or nxt in path:
                        continue
                    if frozenset((tail, nxt)) in matching:
                        continue
                    # Intermediate nodes must be matched; the final node
                    # must be free — both checked on arrival.
                    if len(path) + 1 == length + 1:
                        if nxt not in covered:
                            stack.append((path + (nxt,), True))
                    elif nxt in covered:
                        stack.append((path + (nxt,), True))
    return sorted(found, key=repr)


def flip_augmenting_path(matching: Set[frozenset], path: Path
                         ) -> Set[frozenset]:
    """Return ``M ⊕ P``: remove matched path edges, add unmatched ones."""

    result = set(matching)
    for i in range(len(path) - 1):
        edge = frozenset((path[i], path[i + 1]))
        if i % 2 == 0:
            if edge in result:
                raise AlgorithmContractViolation(
                    f"path edge {tuple(edge)!r} expected unmatched"
                )
            result.add(edge)
        else:
            if edge not in result:
                raise AlgorithmContractViolation(
                    f"path edge {tuple(edge)!r} expected matched"
                )
            result.discard(edge)
    return result


def augment_with_disjoint_paths(matching: Set[frozenset],
                                paths: Iterable[Path]) -> Set[frozenset]:
    """Flip a set of pairwise vertex-disjoint augmenting paths at once."""

    seen: Set[Hashable] = set()
    result = set(matching)
    for path in paths:
        overlap = seen.intersection(path)
        if overlap:
            raise AlgorithmContractViolation(
                f"augmenting paths intersect at {sorted(map(repr, overlap))[:3]}"
            )
        seen.update(path)
        result = flip_augmenting_path(result, path)
    return result


def build_conflict_graph(paths: List[Path]) -> nx.Graph:
    """One vertex per path, an edge when two paths share a node (§B.2).

    This is the virtual graph on which the LOCAL algorithm finds a
    nearly-maximal independent set; each of its communication rounds is
    simulated in O(ℓ) rounds of the base graph.
    """

    conflict = nx.Graph()
    conflict.add_nodes_from(range(len(paths)))
    node_to_paths: Dict[Hashable, List[int]] = {}
    for index, path in enumerate(paths):
        for v in path:
            node_to_paths.setdefault(v, []).append(index)
    for indices in node_to_paths.values():
        for i, a in enumerate(indices):
            for b in indices[i + 1:]:
                conflict.add_edge(a, b)
    return conflict


def shortest_augmenting_path_length(
    graph: nx.Graph,
    matching: Set[frozenset],
    active: Optional[Set[Hashable]] = None,
    max_length: int = 11,
) -> Optional[int]:
    """Smallest odd ℓ ≤ max_length with an augmenting path, else None."""

    for length in range(1, max_length + 1, 2):
        if enumerate_augmenting_paths(graph, matching, length,
                                      active=active, cap=1):
            return length
    return None


def verify_hk_phase(graph: nx.Graph, matching: Set[frozenset],
                    paths: List[Path]) -> None:
    """Assert every path is a valid augmenting path for ``matching``."""

    for path in paths:
        if not is_augmenting_path(graph, matching, path):
            raise AlgorithmContractViolation(
                f"invalid augmenting path {path!r}"
            )
