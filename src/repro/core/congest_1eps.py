"""Appendix B.3 — (1+ε)-approximate maximum cardinality matching, CONGEST.

The CONGEST algorithm cannot materialize the conflict graph of augmenting
paths, so everything happens on the fly over the bipartite base graph:

* **Forward traversal** (Claim B.5/B.6): unmatched A-nodes emit their
  attenuation; values flow along non-matching edges A→B and matching
  edges B→A for d rounds.  A matched B-node forwards only its *first*
  receipt (BFS layering — later receipts belong to longer paths); after
  d rounds every unmatched B-node holds Σ_P p_t(P) over the length-d
  augmenting paths P ending at it, where ``p_t(P) = Π_{v∈P} α_t(v)``.
* **Backward traversal**: sums are split proportionally to the forward
  contributions, so every node learns Σ_{P ∋ v} p_t(P).
* **Attenuation updates**: a node with path-mass ≥ 1/(10d) is *heavy*
  and multiplies its attenuation by K^{-2d} (floored at Δ^{-20/ε} — the
  floor keeps numbers in O(log Δ/ε) bits, Claim B.8's remark); others
  raise it by K back toward the initial value.
* **Marking**: each non-heavy unmatched B-node initiates a token with
  probability equal to its path mass; tokens walk backward link by link,
  choosing predecessors proportionally to forward contributions.  Tokens
  meeting at a node — or touching a node another token already used —
  die; tokens reaching an unmatched A-node augment their path and remove
  its nodes from the phase.
* **Good-iteration deactivation** (Lemma B.10): the traversals are
  re-run restricted to light (non-heavy) nodes; a node whose light path
  mass is ≥ 1/(dK^{2d}) has a good iteration, and after Θ(dK^{2d} log 1/δ)
  good iterations it is manually deactivated (probability ≤ δ of
  happening — Lemma B.10).

General graphs (Theorem B.12) reduce to bipartite stages by random
red/blue coloring, keeping unmatched nodes and bichromatically-matched
nodes; a node free in a stage's bipartite subgraph is free in G, so
stage-local augmenting paths are global ones.

Round accounting: one iteration costs Θ(d) traversal rounds, times the
⌈O(log Δ/ε²)/bandwidth⌉ grouping factor for shipping wide fixed-point
numbers (the paper's remark on floating-point precision).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

import networkx as nx

from ..congest import (
    NodeContext,
    NodeProgram,
    RoundLedger,
    RunResult,
    SynchronousNetwork,
)
from ..errors import AlgorithmContractViolation, InvalidInstance
from ..graphs import check_matching, is_augmenting_path, max_degree
from ..utils import stable_rng

Path = Tuple[Hashable, ...]


def precision_round_factor(delta: int, eps: float, n: int) -> int:
    """⌈bits-needed / bandwidth⌉ — the Θ(1/ε²) round-grouping factor."""

    bits_needed = max(16.0, math.log2(max(2, delta)) / (eps * eps))
    bandwidth = 8 * math.ceil(math.log2(max(2, n)))
    return max(1, math.ceil(bits_needed / bandwidth))


def lemma_b11_budget(d: int, k: float, delta: int, failure_delta: float,
                     beta: float = 1.0) -> int:
    """Lemma B.11's Θ(d⁴K^{2d} log 1/δ + d³ log_K Δ) iteration budget."""

    delta = max(2, delta)
    return max(1, math.ceil(beta * (
        (d ** 4) * (k ** (2 * d)) * math.log(1.0 / failure_delta)
        + (d ** 3) * math.log(delta) / math.log(k)
    )))


@dataclass
class PhaseOutcome:
    """Result of one length-d bipartite phase."""

    flipped: List[Path]
    deactivated: Set[Hashable]
    iterations: int
    drained: bool


class BipartiteAugmentingPhase:
    """Finds and flips a nearly-maximal set of length-d augmenting paths.

    Operates on a bipartite graph with sides ``a_side``/``b_side`` and a
    matching (mutated in place via the returned flips by the caller).
    ``scope`` excludes deactivated nodes and nodes consumed by earlier
    flips in this phase.
    """

    def __init__(self, graph: nx.Graph, a_side: Set[Hashable],
                 b_side: Set[Hashable], matching: Set[frozenset],
                 d: int, eps: float, k: float = 2.0,
                 failure_delta: float = 0.05, seed: int = 0,
                 max_iterations: Optional[int] = None):
        if d % 2 == 0:
            raise InvalidInstance(f"augmenting path length must be odd: {d}")
        self.graph = graph
        self.a_side = set(a_side)
        self.b_side = set(b_side)
        self.matching = set(matching)
        self.d = d
        self.eps = eps
        self.k = float(k)
        self.failure_delta = failure_delta
        self.rng = stable_rng(seed, "b3-phase", d)
        self.delta = max(2, max_degree(graph))
        self.alpha_floor = float(self.delta) ** (-20.0 / eps)
        self.mate: Dict[Hashable, Hashable] = {}
        for edge in self.matching:
            u, v = tuple(edge)
            self.mate[u] = v
            self.mate[v] = u
        self.scope: Set[Hashable] = set(a_side) | set(b_side)
        self.alpha: Dict[Hashable, float] = {}
        self.alpha0: Dict[Hashable, float] = {}
        for v in self.a_side:
            init = (1.0 / self.k) if v not in self.mate else 1.0
            self.alpha[v] = init
            self.alpha0[v] = init
        for v in self.b_side:
            self.alpha[v] = 1.0
            self.alpha0[v] = 1.0
        self.good_rounds: Dict[Hashable, int] = {}
        self.good_cap = max(1, math.ceil(
            3.0 * d * (self.k ** (2 * d))
            * math.log(1.0 / failure_delta)
        ))
        if max_iterations is None:
            # The Lemma B.11 budget is asymptotic; for small d its
            # constant-free value can undershoot, so floor it — the
            # drain check makes unused budget free.
            budget = lemma_b11_budget(d, self.k, self.delta, failure_delta,
                                      beta=2.0)
            max_iterations = min(max(budget, 120), 500)
        self.max_iterations = max_iterations

    # ------------------------------------------------------------------
    # traversals
    # ------------------------------------------------------------------
    def _forward(self, scope: Set[Hashable], use_alpha: bool = True
                 ) -> Tuple[Dict[Hashable, float],
                            Dict[Hashable, Dict[Hashable, float]],
                            Dict[Hashable, float]]:
        """Forward traversal: returns (P, contrib, raw).

        ``P[b]``       — attenuated path mass at unmatched B-node b,
        ``contrib[v]`` — per-predecessor forward values at v's activation,
        ``raw[v]``     — un-attenuated sum received at v's activation.
        With ``use_alpha=False`` all attenuations are 1, so ``P[b]`` is
        the *count* of length-d augmenting paths ending at b (Claim B.5).
        """

        alpha = self.alpha if use_alpha else {v: 1.0 for v in self.alpha}
        value: Dict[Hashable, float] = {}
        depth: Dict[Hashable, int] = {}
        contrib: Dict[Hashable, Dict[Hashable, float]] = {}
        raw: Dict[Hashable, float] = {}
        path_mass: Dict[Hashable, float] = {}
        for a in self.a_side:
            if a in scope and a not in self.mate:
                value[a] = alpha.get(a, 1.0)
                depth[a] = 0
        for t in range(1, self.d + 1):
            if t % 2 == 1:  # A -> B along non-matching edges
                inbox: Dict[Hashable, Dict[Hashable, float]] = {}
                for a, val in value.items():
                    if depth.get(a) != t - 1:
                        continue
                    for b in self.graph.neighbors(a):
                        if b not in scope or b not in self.b_side:
                            continue
                        if frozenset((a, b)) in self.matching:
                            continue
                        inbox.setdefault(b, {})[a] = val
                for b, sources in inbox.items():
                    if b in depth:
                        continue  # already activated: longer-path traffic
                    total = sum(sources.values())
                    if b in self.mate:
                        if t < self.d:
                            depth[b] = t
                            contrib[b] = sources
                            raw[b] = total
                    elif t == self.d:
                        depth[b] = t
                        contrib[b] = sources
                        raw[b] = total
                        path_mass[b] = alpha.get(b, 1.0) * total
            else:  # matched B -> its A-mate along the matching edge
                for b in list(depth):
                    if depth[b] != t - 1 or b not in self.b_side:
                        continue
                    a = self.mate.get(b)
                    if a is None or a not in scope or a in depth:
                        continue
                    depth[a] = t
                    contrib[a] = {b: raw[b]}
                    raw[a] = raw[b]
                    value[a] = alpha.get(a, 1.0) * raw[b]
        return path_mass, contrib, raw

    def _backward(self, path_mass: Dict[Hashable, float],
                  contrib: Dict[Hashable, Dict[Hashable, float]],
                  raw: Dict[Hashable, float]) -> Dict[Hashable, float]:
        """Backward traversal: every node's total path mass (Claim B.6)."""

        through: Dict[Hashable, float] = {}
        incoming: Dict[Hashable, float] = dict(path_mass)
        frontier = list(path_mass)
        for _ in range(self.d):
            next_incoming: Dict[Hashable, float] = {}
            for v in frontier:
                mass = incoming.get(v, 0.0)
                through[v] = through.get(v, 0.0) + mass
                if v in self.b_side:
                    sources = contrib.get(v, {})
                    total = raw.get(v, 0.0)
                    if total <= 0.0:
                        continue
                    for a, val in sources.items():
                        share = mass * (val / total)
                        next_incoming[a] = next_incoming.get(a, 0.0) + share
                else:  # matched A-node: pass everything to its mate
                    b = self.mate.get(v)
                    if b is not None and b in contrib.get(v, {}):
                        next_incoming[b] = next_incoming.get(b, 0.0) + mass
            incoming = next_incoming
            frontier = list(incoming)
        for v, mass in incoming.items():
            through[v] = through.get(v, 0.0) + mass
        return through

    # ------------------------------------------------------------------
    # one iteration
    # ------------------------------------------------------------------
    def _update_attenuations(self, through: Dict[Hashable, float]) -> None:
        heavy_threshold = 1.0 / (10.0 * self.d)
        shrink = self.k ** (-2.0 * self.d)
        for v in list(self.alpha):
            if v not in self.scope:
                continue
            if v in self.b_side and v in self.mate:
                continue  # matched B-nodes keep α = 1
            if through.get(v, 0.0) >= heavy_threshold:
                self.alpha[v] = max(self.alpha[v] * shrink,
                                    self.alpha_floor)
            else:
                self.alpha[v] = min(self.alpha0[v], self.alpha[v] * self.k)

    def _count_good_iterations(self, through: Dict[Hashable, float]) -> None:
        heavy_threshold = 1.0 / (10.0 * self.d)
        light_scope = {
            v for v in self.scope
            if through.get(v, 0.0) < heavy_threshold
        }
        light_mass, light_contrib, light_raw = self._forward(light_scope)
        light_through = self._backward(light_mass, light_contrib, light_raw)
        good_threshold = 1.0 / (self.d * (self.k ** (2 * self.d)))
        for v in light_scope:
            if light_through.get(v, 0.0) >= good_threshold:
                self.good_rounds[v] = self.good_rounds.get(v, 0) + 1

    def _deactivate_exhausted(self) -> Set[Hashable]:
        exhausted = {
            v for v, count in self.good_rounds.items()
            if count > self.good_cap and v in self.scope
        }
        self.scope -= exhausted
        return exhausted

    def _route_tokens(self, path_mass: Dict[Hashable, float],
                      contrib: Dict[Hashable, Dict[Hashable, float]],
                      raw: Dict[Hashable, float]) -> List[Path]:
        """Marking + link-by-link backward token routing."""

        skip_threshold = 1.0 / self.d
        tokens: Dict[Hashable, List[Hashable]] = {}
        visited: Set[Hashable] = set()
        for b, z in path_mass.items():
            if z > skip_threshold:
                continue
            if self.rng.random() < z:
                tokens[b] = [b]
                visited.add(b)
        for _ in range(self.d):
            moves: Dict[Hashable, List[Hashable]] = {}
            for token_id, path in tokens.items():
                current = path[-1]
                if len(path) == self.d + 1:
                    continue
                if current in self.b_side:
                    sources = contrib.get(current, {})
                    if not sources:
                        moves.setdefault(None, []).append(token_id)
                        continue
                    names = sorted(sources, key=repr)
                    weights = [sources[a] for a in names]
                    target = self.rng.choices(names, weights=weights)[0]
                else:
                    target = self.mate.get(current)
                moves.setdefault(target, []).append(token_id)
            dead: Set[Hashable] = set()
            for target, ids in moves.items():
                if target is None or len(ids) > 1 or target in visited:
                    dead.update(ids)
                    continue
                visited.add(target)
                tokens[ids[0]].append(target)
            for token_id in dead:
                del tokens[token_id]
        successes: List[Path] = []
        for path in tokens.values():
            if len(path) == self.d + 1 and path[-1] in self.a_side \
                    and path[-1] not in self.mate:
                # Token paths run end → start; reverse to a0 ... b_end.
                successes.append(tuple(reversed(path)))
        return successes

    # ------------------------------------------------------------------
    def run(self, ledger: Optional[RoundLedger] = None) -> PhaseOutcome:
        """Iterate until no length-d augmenting path remains in scope."""

        if ledger is None:
            ledger = RoundLedger()
        factor = precision_round_factor(
            self.delta, self.eps, self.graph.number_of_nodes()
        )
        flipped: List[Path] = []
        deactivated: Set[Hashable] = set()
        drained = False
        iterations = 0
        for _ in range(self.max_iterations):
            counts, _, _ = self._forward(self.scope, use_alpha=False)
            if not any(c > 0 for c in counts.values()):
                drained = True
                break
            iterations += 1
            path_mass, contrib, raw = self._forward(self.scope)
            through = self._backward(path_mass, contrib, raw)
            self._count_good_iterations(through)
            successes = self._route_tokens(path_mass, contrib, raw)
            for path in successes:
                self._flip(path)
                flipped.append(path)
            self._update_attenuations(through)
            deactivated |= self._deactivate_exhausted()
            # forward + backward + light rerun + tokens + confirmation.
            ledger.charge(6 * self.d * factor, f"b3-iteration-d{self.d}")
        return PhaseOutcome(
            flipped=flipped,
            deactivated=deactivated,
            iterations=iterations,
            drained=drained,
        )

    def _flip(self, path: Path) -> None:
        if not is_augmenting_path(self.graph, self.matching, path):
            raise AlgorithmContractViolation(
                f"token produced a non-augmenting path {path!r}"
            )
        for i in range(len(path) - 1):
            edge = frozenset((path[i], path[i + 1]))
            if i % 2 == 0:
                self.matching.add(edge)
                self.mate[path[i]] = path[i + 1]
                self.mate[path[i + 1]] = path[i]
            else:
                self.matching.discard(edge)
        # Path nodes leave the phase: they are matched now, and the paper
        # removes them so later tokens cannot route through them.
        self.scope -= set(path)


# ----------------------------------------------------------------------
# full algorithm: bipartite phases inside random-bipartition stages
# ----------------------------------------------------------------------
@dataclass
class CongestOneEpsResult:
    matching: Set[frozenset]
    deactivated: Set[Hashable]
    rounds: int
    stages: int
    ledger: RoundLedger = field(default_factory=RoundLedger)

    @property
    def cardinality(self) -> int:
        return len(self.matching)


def bipartite_matching_1eps_phases(
    graph: nx.Graph,
    a_side: Set[Hashable],
    b_side: Set[Hashable],
    eps: float = 0.5,
    seed: int = 0,
    k: float = 2.0,
    failure_delta: Optional[float] = None,
    initial_matching: Optional[Set[frozenset]] = None,
    ledger: Optional[RoundLedger] = None,
    max_iterations: Optional[int] = None,
    max_rounds: Optional[int] = None,
    capture_state: bool = False,
    resume: Optional[dict] = None,
):
    """Anytime form of :func:`bipartite_matching_1eps`.

    Yields ``(rounds, matching, extras, state)`` after the initial
    state and after every length-d phase; the matching is valid at
    every phase boundary.  With ``max_rounds`` set, stops before
    launching a phase once ``ledger.total`` has reached the budget and
    returns ``None``; otherwise returns the final
    ``(matching, deactivated)`` pair.

    ``capture_state=True`` attaches a resume payload to every
    snapshot; ``resume=`` restarts the phase loop there (phase
    randomness is keyed ``seed + 101·d``, so the continuation replays
    the uncut run's exact stream).
    """

    if failure_delta is None:
        failure_delta = max(1e-3, min(0.1, eps * eps / 4.0))
    if ledger is None:
        ledger = RoundLedger()
    matching = set(initial_matching or set())
    deactivated: Set[Hashable] = set()
    max_length = 2 * math.ceil(1.0 / eps) + 1
    start_d = 1
    if resume is not None:
        start_d = resume["next_d"]
        matching = set(resume["matching"])
        deactivated = set(resume["deactivated"])
        ledger.total = resume["ledger"]["total"]
        ledger.breakdown = dict(resume["ledger"]["breakdown"])
        # The payload pins the resolved options so the continuation
        # replays the identical phase parameters even when the caller
        # omits them on resume.
        k = resume["options"]["k"]
        failure_delta = resume["options"]["failure_delta"]
        max_iterations = resume["options"]["max_iterations"]

    def snapshot(next_d):
        state = None
        if capture_state:
            state = {
                "rounds": ledger.total,
                "next_d": next_d,
                "matching": set(matching),
                "deactivated": set(deactivated),
                "ledger": {"total": ledger.total,
                           "breakdown": dict(ledger.breakdown)},
                "options": {"k": k, "failure_delta": failure_delta,
                            "max_iterations": max_iterations},
            }
        return ledger.total, frozenset(matching), {
            "deactivated": set(deactivated),
        }, state

    yield snapshot(start_d)
    for d in range(start_d, max_length + 1, 2):
        if max_rounds is not None and ledger.total >= max_rounds:
            return None
        phase = BipartiteAugmentingPhase(
            graph, a_side - deactivated, b_side - deactivated,
            matching, d=d, eps=eps, k=k, failure_delta=failure_delta,
            seed=seed + 101 * d, max_iterations=max_iterations,
        )
        outcome = phase.run(ledger)
        matching = phase.matching
        deactivated |= outcome.deactivated
        check_matching(graph, [tuple(e) for e in matching])
        yield snapshot(d + 2)
    return matching, deactivated


def bipartite_matching_1eps(
    graph: nx.Graph,
    a_side: Set[Hashable],
    b_side: Set[Hashable],
    eps: float = 0.5,
    seed: int = 0,
    k: float = 2.0,
    failure_delta: Optional[float] = None,
    initial_matching: Optional[Set[frozenset]] = None,
    ledger: Optional[RoundLedger] = None,
    max_iterations: Optional[int] = None,
) -> Tuple[Set[frozenset], Set[Hashable]]:
    """Run the length-1,3,…,L phase loop on a bipartite graph."""

    from ..utils import drain

    return drain(bipartite_matching_1eps_phases(
        graph, a_side, b_side, eps=eps, seed=seed, k=k,
        failure_delta=failure_delta, initial_matching=initial_matching,
        ledger=ledger, max_iterations=max_iterations,
    ))


def congest_matching_1eps_stages(
    graph: nx.Graph,
    eps: float = 0.5,
    seed: int = 0,
    k: float = 2.0,
    failure_delta: Optional[float] = None,
    stages: Optional[int] = None,
    max_iterations: Optional[int] = None,
    max_rounds: Optional[int] = None,
    capture_state: bool = False,
    resume: Optional[dict] = None,
    notify_wave: bool = False,
):
    """Anytime Theorem B.12: one snapshot per bipartition stage.

    Generator form of :func:`congest_matching_1eps`: yields
    ``(rounds, matching, extras, state)`` after the initial state and
    after every red/blue stage (the matching is vertex-disjoint at
    every stage boundary, so each snapshot is a valid partial
    solution).  With ``max_rounds`` set, the generator stops *before*
    launching a stage once the ledger has consumed the budget —
    cooperatively, so truncation costs nothing beyond the rounds
    actually accounted — and returns ``None``; otherwise it returns
    the usual :class:`CongestOneEpsResult`.  Draining the generator
    with ``max_rounds=None`` reproduces :func:`congest_matching_1eps`
    bit for bit.

    ``capture_state=True`` attaches a resume payload to every
    snapshot, including the stage-coloring RNG state; ``resume=``
    restores it, so the continuation draws the exact red/blue colors
    the uncut run would have drawn.

    ``notify_wave=True`` runs Appendix B.3's waiting-phase probe wave
    (:func:`waiting_phase_wave`) on the message-passing simulator after
    every stage: free nodes flood a depth-``L`` probe so matched
    waiters parked on the wake list learn the stage boundary passed.
    The wave's rounds are charged to the ledger under
    ``"waiting-wave"`` (so budgets and snapshots account for it) and
    the matching itself is untouched; the option is pinned into resume
    payloads like every other stage parameter.  Default off — the
    historical round accounting is bit-identical.
    """

    if eps <= 0:
        raise InvalidInstance(f"eps must be positive, got {eps}")
    if failure_delta is None:
        failure_delta = max(1e-3, min(0.1, 2.0 ** (-1.0 / eps)))
    if stages is None:
        stages = min(48, 4 * 2 ** math.ceil(1.0 / eps))
    rng = stable_rng(seed, "b12-stages")
    ledger = RoundLedger()
    matching: Set[frozenset] = set()
    deactivated: Set[Hashable] = set()
    max_length = 2 * math.ceil(1.0 / eps) + 1
    executed = 0
    start_stage = 0
    finished = False
    if resume is not None:
        start_stage = resume["next_stage"]
        executed = resume["stages"]
        finished = resume["finished"]
        matching = set(resume["matching"])
        deactivated = set(resume["deactivated"])
        ledger.total = resume["ledger"]["total"]
        ledger.breakdown = dict(resume["ledger"]["breakdown"])
        version, internals, gauss = resume["rng"]
        rng.setstate((version, tuple(internals), gauss))
        # The payload pins the resolved options (most importantly the
        # total stage count) so the continuation replays the identical
        # stage loop even when the caller omits them on resume.
        k = resume["options"]["k"]
        failure_delta = resume["options"]["failure_delta"]
        stages = resume["options"]["stages"]
        max_iterations = resume["options"]["max_iterations"]
        # Pre-wave payloads carry no wave flag; they resume wave-less.
        notify_wave = resume["options"].get("notify_wave", False)

    def snapshot(next_stage):
        state = None
        if capture_state:
            version, internals, gauss = rng.getstate()
            options = {"k": k, "failure_delta": failure_delta,
                       "stages": stages,
                       "max_iterations": max_iterations}
            if notify_wave:
                # Written only when on: payloads of wave-less runs stay
                # byte-identical to the historical layout.
                options["notify_wave"] = True
            state = {
                "rounds": ledger.total,
                "next_stage": next_stage,
                "stages": executed,
                "finished": finished,
                "matching": set(matching),
                "deactivated": set(deactivated),
                "ledger": {"total": ledger.total,
                           "breakdown": dict(ledger.breakdown)},
                "rng": [version, list(internals), gauss],
                "options": options,
            }
        extras = {
            "deactivated": set(deactivated),
            "stages": executed,
        }
        if notify_wave:
            extras["notify_waves"] = executed
        return ledger.total, frozenset(matching), extras, state

    yield snapshot(start_stage)
    for stage in range(start_stage, stages):
        if finished:
            break
        if max_rounds is not None and ledger.total >= max_rounds:
            return None
        executed = stage + 1
        colors = {
            v: ("A" if rng.random() < 0.5 else "B") for v in graph.nodes
        }
        mate: Dict[Hashable, Hashable] = {}
        for edge in matching:
            u, v = tuple(edge)
            mate[u] = v
            mate[v] = u
        kept = set()
        for v in graph.nodes:
            if v in deactivated:
                continue
            if v not in mate:
                kept.add(v)
            elif colors[v] != colors[mate[v]] and mate[v] not in deactivated:
                # A matched node enters the stage only alongside its mate;
                # otherwise it would look free in the bipartite subgraph
                # while being matched in G.
                kept.add(v)
        sub = nx.Graph()
        sub.add_nodes_from(kept)
        for u, v in graph.edges:
            if u in kept and v in kept and colors[u] != colors[v]:
                sub.add_edge(u, v)
        ledger.charge(1, "stage-bipartition")
        a_side = {v for v in kept if colors[v] == "A"}
        b_side = {v for v in kept if colors[v] == "B"}
        stage_matching = {
            e for e in matching if all(x in kept for x in e)
        }
        before = len(matching)
        new_stage_matching, new_deactivated = bipartite_matching_1eps(
            sub, a_side, b_side, eps=eps, seed=seed + 7919 * stage, k=k,
            failure_delta=failure_delta,
            initial_matching=stage_matching, ledger=ledger,
            max_iterations=max_iterations,
        )
        matching = (matching - stage_matching) | new_stage_matching
        deactivated |= new_deactivated
        check_matching(graph, [tuple(e) for e in matching])
        if notify_wave:
            # Stage-boundary notification: free nodes flood a probe of
            # depth L so every waiter parked on the wake list observes
            # that the stage completed.  Read-only on the matching;
            # only the round ledger (and hence budgets) sees it.
            wave = waiting_phase_wave(
                graph, matching, d=max_length,
                seed=seed + 7919 * stage + 3571, park=True,
            )
            ledger.charge(wave.rounds, "waiting-wave")
        if len(matching) == before:
            from .augmenting import shortest_augmenting_path_length

            # Evaluated before the yield (it is deterministic, so the
            # order is observationally identical) so the snapshot's
            # resume payload already knows whether the stage loop is
            # over — a resumed run must not launch stages the uncut
            # run would never have run.
            remaining = shortest_augmenting_path_length(
                graph, matching,
                active=set(graph.nodes) - deactivated,
                max_length=max_length,
            )
            finished = remaining is None
        yield snapshot(stage + 1)
        if finished:
            break
    return CongestOneEpsResult(
        matching=matching,
        deactivated=deactivated,
        rounds=ledger.total,
        stages=executed,
        ledger=ledger,
    )


def congest_matching_1eps(
    graph: nx.Graph,
    eps: float = 0.5,
    seed: int = 0,
    k: float = 2.0,
    failure_delta: Optional[float] = None,
    stages: Optional[int] = None,
    max_iterations: Optional[int] = None,
    notify_wave: bool = False,
) -> CongestOneEpsResult:
    """Theorem B.12: (1+ε)-approximate MCM in general graphs (CONGEST).

    Runs 2^{O(1/ε)} random red/blue bipartition stages; each stage's
    bipartite subgraph keeps unmatched nodes and bichromatically-matched
    nodes, so stage augmenting paths are global augmenting paths.  Stops
    early when a stage leaves the matching unchanged and no short
    augmenting path survives among active nodes.  ``notify_wave=True``
    runs the simulator-backed waiting-phase probe wave after every
    stage (see :func:`congest_matching_1eps_stages`).
    """

    from ..utils import drain

    return drain(congest_matching_1eps_stages(
        graph, eps=eps, seed=seed, k=k, failure_delta=failure_delta,
        stages=stages, max_iterations=max_iterations,
        notify_wave=notify_wave,
    ))


# ----------------------------------------------------------------------
# the waiting phase, as a real message-passing program (wake-list port)
# ----------------------------------------------------------------------
class WaitingPhaseProgram(NodeProgram):
    """One node of the (1+ε) matcher's waiting phase, on the simulator.

    Between traversal iterations, Appendix B.3's matched nodes are pure
    *waiters*: they take no action until a forward probe from some free
    node reaches them.  ``park=True`` ports that waiting onto
    :meth:`~repro.congest.NodeContext.sleep` — a waiter is skipped by
    the wake-list scheduler entirely until a probe wakes it, so the
    (typically huge) quiet majority costs nothing per round.
    ``park=False`` is the busy-wait twin, stepped every round; the
    scheduling test pins that both agree on outputs and round count
    while the parked run does a small fraction of the work.

    A free node floods ``("probe", 0)`` and halts; a waiter woken by
    probes at depth ``t`` re-floods at depth ``t+1`` while ``t+1 < d``
    and halts ``("reached", t+1)``.  Waiters never probed stay asleep
    (quiescence ends the run) and output ``None``.
    """

    def __init__(self, free: bool, d: int, park: bool = True,
                 steps: Optional[Dict[str, int]] = None):
        self.free = free
        self.d = d
        self.park = park
        self.steps = steps

    def on_start(self, ctx: NodeContext) -> None:
        if self.free:
            ctx.broadcast("probe", 0)
            ctx.halt(("source", 0))
        elif self.park:
            ctx.sleep()

    def on_round(self, ctx: NodeContext) -> None:
        if self.steps is not None:
            self.steps["stepped"] = self.steps.get("stepped", 0) + 1
        depths = [
            payload[1] for payload in ctx.inbox.values()
            if payload and payload[0] == "probe"
        ]
        if not depths:
            if self.park:
                ctx.sleep()
            return
        depth = min(depths) + 1
        if depth < self.d:
            ctx.broadcast("probe", depth)
        ctx.halt(("reached", depth))


def waiting_phase_wave(
    graph: nx.Graph,
    matching: Set[frozenset],
    d: int,
    network: Optional[SynchronousNetwork] = None,
    seed: int = 0,
    park: bool = True,
    steps: Optional[Dict[str, int]] = None,
    label: str = "b3-waiting-wave",
) -> RunResult:
    """Run one waiting-phase probe wave of depth ``d`` on the simulator.

    Free (unmatched) nodes initiate the wave; every matched node is a
    laggard that — with ``park=True`` (the default) — sleeps on the
    wake list until a probe arrives.  Pass ``steps`` (a mutable dict)
    to count how many times waiters were actually stepped; the parked
    run touches only the nodes within distance ``d`` of a free node,
    which is the wake-list saving the batch-execution PR's scheduler
    was built for.
    """

    mate: Dict[Hashable, Hashable] = {}
    for edge in matching:
        u, v = tuple(edge)
        mate[u] = v
        mate[v] = u
    if network is None:
        network = SynchronousNetwork(graph, seed=seed)
    return network.run(
        lambda v: WaitingPhaseProgram(v not in mate, d, park=park,
                                      steps=steps),
        max_rounds=d + 2,
        quiescence_halts=True,
        label=label,
    )
