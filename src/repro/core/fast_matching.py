"""Theorem 3.2 and Appendix B.1 — time-optimal (2+ε) matching.

Unweighted: run the improved nearly-maximal independent set (Theorem 3.1)
on the line graph.  The result is a *nearly-maximal matching*: each edge
of the optimal matching has probability at most δ of ending "unlucky"
(neither matched nor adjacent to the matching), so in expectation the
found matching is a (2+ε)-approximation for δ ≪ ε (Theorem 3.2).  Because
the algorithm is a local aggregation algorithm, the line-graph execution
costs no congestion penalty in CONGEST (Theorems 2.8/2.9).

Weighted (Appendix B.1, following Lotker et al.):

1. *Bucketing*: weights are classified into big-buckets (powers of a
   constant β) subdivided into small-buckets (powers of 1+ε).  Each
   big-bucket — all in parallel, so the round cost is the maximum over
   big-buckets — processes its small-buckets from heaviest to lightest,
   matching each with the unweighted algorithm and deleting incident
   edges.  Keeping only locally-heaviest chosen edges across big-buckets
   yields an O(1)-approximation [LPSR09].
2. *Augmentation*: O(1/ε) iterations of the [LPSP15 §4] scheme — compute
   the auxiliary weight (gain) of every non-matching edge over length-≤3
   augmenting paths, find an O(1)-approximate matching under auxiliary
   weights with step 1, and augment.  The result is a (2+ε)-approximate
   maximum weight matching.

Round accounting uses a :class:`~repro.congest.RoundLedger`: message-level
sub-protocols contribute measured rounds; O(1)-round bookkeeping phases
are charged as the paper's analysis does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Set, Tuple

import networkx as nx

from ..congest import RoundLedger, line_graph
from ..errors import InvalidInstance
from ..graphs import check_matching, edge_weight
from .nearly_maximal_is import (
    NearlyMaximalISResult,
    improved_nearly_maximal_is,
)


@dataclass
class FastMatchingResult:
    """A matching plus round accounting and the NMIS residual."""

    matching: Set[frozenset]
    weight: int
    rounds: int
    ledger: RoundLedger = field(default_factory=RoundLedger)
    unlucky_edges: Set[frozenset] = field(default_factory=set)


def nearly_maximal_matching(
    graph: nx.Graph,
    failure_delta: float = 0.05,
    k: Optional[float] = None,
    beta: float = 4.0,
    seed: int = 0,
    label: str = "nearly-maximal-matching",
) -> Tuple[Set[frozenset], Set[frozenset], int]:
    """Nearly-maximal matching = improved NMIS on the line graph.

    Returns ``(matching, unlucky_edges, rounds)`` where ``unlucky_edges``
    are line-graph residuals: edges neither matched nor adjacent to the
    matching when the Theorem 3.1 budget ran out.
    """

    if graph.number_of_edges() == 0:
        return set(), set(), 0
    lg = line_graph(graph)
    outcome: NearlyMaximalISResult = improved_nearly_maximal_is(
        lg, failure_delta=failure_delta, k=k, beta=beta, seed=seed,
        label=label,
    )
    matching = {frozenset(e) for e in outcome.independent_set}
    unlucky = {frozenset(e) for e in outcome.residual}
    check_matching(graph, [tuple(e) for e in matching])
    return matching, unlucky, outcome.rounds


def fast_matching_2eps(
    graph: nx.Graph,
    eps: float = 0.5,
    seed: int = 0,
    k: Optional[float] = None,
    beta: float = 4.0,
) -> FastMatchingResult:
    """Theorem 3.2: (2+ε)-approximate maximum *cardinality* matching.

    δ is set to ``min(0.2, ε/8)``; the paper uses ``δ = 2^{-log^0.7 Δ}``,
    which is smaller than any such constant for large Δ — the benchmark
    sweeps both.
    """

    if eps <= 0:
        raise InvalidInstance(f"eps must be positive, got {eps}")
    failure_delta = min(0.2, eps / 8.0)
    matching, unlucky, rounds = nearly_maximal_matching(
        graph, failure_delta=failure_delta, k=k, beta=beta, seed=seed,
    )
    ledger = RoundLedger()
    ledger.charge(rounds, "nmis-on-line-graph")
    return FastMatchingResult(
        matching=matching,
        weight=len(matching),
        rounds=ledger.total,
        ledger=ledger,
        unlucky_edges=unlucky,
    )


# ----------------------------------------------------------------------
# Appendix B.1 — weighted case via Lotker et al. bucketing + augmentation
# ----------------------------------------------------------------------
def _bucket_of(weight: int, beta_bucket: int, eps: float) -> Tuple[int, int]:
    """(big-bucket, small-bucket) indices of a positive weight."""

    big = int(math.floor(math.log(weight, beta_bucket)))
    base = beta_bucket ** big
    small = int(math.floor(math.log(max(1.0, weight / base), 1.0 + eps)))
    return big, small


def bucketed_constant_approx_mwm(
    graph: nx.Graph,
    eps: float = 0.5,
    beta_bucket: int = 16,
    seed: int = 0,
    ledger: Optional[RoundLedger] = None,
) -> Set[frozenset]:
    """O(1)-approximate MWM by big/small-bucket decomposition [LPSR09].

    Big-buckets run in parallel: the ledger charge is the *maximum* round
    cost over big-buckets (each bucket's small-buckets run sequentially),
    plus one round for the cross-bucket keep-heaviest filter.
    """

    if graph.number_of_edges() == 0:
        return set()
    if ledger is None:
        ledger = RoundLedger()
    buckets: Dict[int, Dict[int, list]] = {}
    for u, v in graph.edges:
        w = edge_weight(graph, u, v)
        if w <= 0:
            raise InvalidInstance("edge weights must be positive")
        big, small = _bucket_of(w, beta_bucket, eps)
        buckets.setdefault(big, {}).setdefault(small, []).append((u, v))

    chosen_per_bucket: Dict[int, Set[frozenset]] = {}
    max_bucket_rounds = 0
    for big, smalls in buckets.items():
        bucket_rounds = 0
        removed: Set[Hashable] = set()
        chosen: Set[frozenset] = set()
        for small in sorted(smalls, reverse=True):
            edges = [
                (u, v) for u, v in smalls[small]
                if u not in removed and v not in removed
            ]
            if not edges:
                continue
            sub = nx.Graph()
            sub.add_edges_from(edges)
            matching, _, rounds = nearly_maximal_matching(
                sub, failure_delta=min(0.2, eps / 8.0),
                seed=seed + big * 1000 + small,
                label=f"bucket-{big}-{small}",
            )
            bucket_rounds += rounds + 1  # +1 to broadcast removals
            chosen |= matching
            for e in matching:
                removed.update(e)
        chosen_per_bucket[big] = chosen
        max_bucket_rounds = max(max_bucket_rounds, bucket_rounds)
    ledger.charge(max_bucket_rounds, "bucketed-parallel-matching")

    # Cross-bucket filter: keep a chosen edge only if it is the heaviest
    # chosen edge incident to both endpoints (ties by canonical repr).
    all_chosen = [e for s in chosen_per_bucket.values() for e in s]
    def rank(e: frozenset) -> tuple:
        u, v = tuple(e)
        return (edge_weight(graph, u, v), repr(sorted(map(repr, e))))

    keep: Set[frozenset] = set()
    for e in all_chosen:
        u, v = tuple(e)
        heaviest = True
        for x in (u, v):
            for e2 in all_chosen:
                if e2 != e and x in e2 and rank(e2) > rank(e):
                    heaviest = False
                    break
            if not heaviest:
                break
        if heaviest:
            keep.add(e)
    ledger.charge(1, "cross-bucket-filter")
    check_matching(graph, [tuple(e) for e in keep])
    return keep


def fast_matching_weighted_2eps(
    graph: nx.Graph,
    eps: float = 0.5,
    beta_bucket: int = 16,
    seed: int = 0,
) -> FastMatchingResult:
    """Appendix B.1: (2+ε)-approximate maximum *weight* matching.

    O(1/ε) augmentation iterations over length-≤3 weighted augmenting
    paths, each using the bucketed O(1)-approximation as the black box A
    of [LPSP15 §4].
    """

    if eps <= 0:
        raise InvalidInstance(f"eps must be positive, got {eps}")
    ledger = RoundLedger()
    matching: Set[frozenset] = bucketed_constant_approx_mwm(
        graph, eps=eps, beta_bucket=beta_bucket, seed=seed, ledger=ledger,
    )

    iterations = max(1, math.ceil(1.0 / eps)) + 2
    for iteration in range(iterations):
        mate: Dict[Hashable, frozenset] = {}
        for e in matching:
            for x in e:
                mate[x] = e

        def gain(u: Hashable, v: Hashable) -> int:
            lost = 0
            for x in (u, v):
                if x in mate:
                    a, b = tuple(mate[x])
                    lost += edge_weight(graph, a, b)
            return edge_weight(graph, u, v) - lost

        aux = nx.Graph()
        for u, v in graph.edges:
            if frozenset((u, v)) in matching:
                continue
            g = gain(u, v)
            if g > 0:
                aux.add_edge(u, v, weight=g)
        ledger.charge(2, "auxiliary-weights")
        if aux.number_of_edges() == 0:
            break
        augmenting = bucketed_constant_approx_mwm(
            aux, eps=eps, beta_bucket=beta_bucket,
            seed=seed + 7919 * (iteration + 1), ledger=ledger,
        )
        if not augmenting:
            break
        for e in augmenting:
            for x in e:
                old = mate.get(x)
                if old is not None:
                    matching.discard(old)
                    for y in old:
                        if mate.get(y) is old:
                            del mate[y]
            matching.add(e)
            for x in e:
                mate[x] = e
        ledger.charge(1, "augment")
        check_matching(graph, [tuple(e) for e in matching])

    weight = sum(edge_weight(graph, *tuple(e)) for e in matching)
    return FastMatchingResult(
        matching=matching,
        weight=weight,
        rounds=ledger.total,
        ledger=ledger,
    )
