"""Greedy weighted MIS by parallel peeling (the maxis-layers kernel).

The greedy weighted independent set — every node joins iff no
higher-priority neighbor joins, priority ``(weight, -rank)`` with rank
from the repr-sorted node order — is the sequential baseline the
local-ratio layer algorithms refine.  This module runs it as a
deterministic peeling process: one priority-exchange round up front,
then one round per sweep in which every undecided node that beats all
its undecided neighbors joins and knocks its neighbors out.  The
result is the unique greedy set, independent of sweep order, which is
what makes it portable to the MPC runtime (:mod:`repro.mpc.greedy`)
with exact objective parity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Set, Tuple

import networkx as nx

from ..congest import RoundLedger
from ..graphs import check_independent_set, node_weight


def greedy_priorities(graph: nx.Graph) -> Dict[Hashable, Tuple[int, int]]:
    """Total priority order: ``(weight, -rank)``, rank from the
    repr-sorted node order — unique, so ties are impossible."""

    order = sorted(graph.nodes, key=repr)
    return {v: (node_weight(graph, v), -rank)
            for rank, v in enumerate(order)}


@dataclass
class GreedyMISResult:
    independent_set: frozenset
    weight: int
    rounds: int
    ledger: RoundLedger


def greedy_mis_phases(
    graph: nx.Graph,
    max_rounds: Optional[int] = None,
    capture_state: bool = False,
    resume: Optional[dict] = None,
):
    """Anytime greedy MIS: one snapshot per peeling sweep.

    Yields ``(rounds, chosen, weight, final, state)`` tuples — the
    shape :func:`repro.api.algorithms._drive_simulator_phases` drives —
    after the initial state, after the priority-exchange charge, and
    after every sweep.  The partial set is independent at every
    boundary (a sweep only adds nodes whose neighbors it knocks out
    in the same step).  With ``max_rounds`` set, stops cooperatively
    before any charge past the budget and returns ``None``; otherwise
    returns a :class:`GreedyMISResult`.  Fully deterministic, so a
    resumed run trivially reproduces the uncut one.
    """

    order = sorted(graph.nodes, key=repr)
    priority = greedy_priorities(graph)
    ledger = RoundLedger()
    chosen: Set[Hashable] = set()
    weight = 0
    undecided: Set[Hashable] = set(graph.nodes)
    exchanged = False
    if resume is not None:
        chosen = set(resume["chosen"])
        weight = resume["weight"]
        survivors = resume["undecided"]
        for v in graph.nodes:
            if v not in survivors:
                undecided.discard(v)
        exchanged = resume["exchanged"]
        ledger.total = resume["ledger"]["total"]
        ledger.breakdown = dict(resume["ledger"]["breakdown"])

    def snapshot():
        state = None
        if capture_state:
            state = {
                "rounds": ledger.total,
                "chosen": set(chosen),
                "weight": weight,
                "undecided": set(undecided),
                "exchanged": exchanged,
                "ledger": {"total": ledger.total,
                           "breakdown": dict(ledger.breakdown)},
            }
        return ledger.total, frozenset(chosen), weight, \
            not undecided, state

    yield snapshot()
    if undecided and not exchanged:
        if max_rounds is not None and ledger.total >= max_rounds:
            return None
        ledger.charge(1, "priority-exchange")
        exchanged = True
        yield snapshot()
    while undecided:
        if max_rounds is not None and ledger.total >= max_rounds:
            return None
        joiners = [
            v for v in order
            if v in undecided and all(
                u not in undecided or priority[v] > priority[u]
                for u in graph.neighbors(v)
            )
        ]
        for v in joiners:
            undecided.discard(v)
        for v in joiners:
            chosen.add(v)
            weight += node_weight(graph, v)
            for u in graph.neighbors(v):
                undecided.discard(u)
        ledger.charge(1, "peel")
        yield snapshot()
    check_independent_set(graph, chosen)
    return GreedyMISResult(
        independent_set=frozenset(chosen),
        weight=weight,
        rounds=ledger.total,
        ledger=ledger,
    )


def greedy_mis(graph: nx.Graph) -> GreedyMISResult:
    """Drained form of :func:`greedy_mis_phases`."""

    from ..utils import drain

    return drain(greedy_mis_phases(graph))


__all__ = [
    "GreedyMISResult",
    "greedy_mis",
    "greedy_mis_phases",
    "greedy_priorities",
]
