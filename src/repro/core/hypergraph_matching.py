"""Appendix B.2 — nearly-maximal matching in low-rank hypergraphs.

Augmenting paths of length ℓ are modeled as hyperedges of rank d = ℓ+1
over the graph's nodes; a *matching* of hyperedges (pairwise disjoint)
is a set of vertex-disjoint paths.  The algorithm is the dynamic-
probability scheme of Section 3.1 lifted to hyperedges, with one new
ingredient: **good-round deactivation**.  A round is *good* for node v
when the light hyperedges through v carry probability mass at least
``1/(2dK²)``; in a good round v is removed with probability Θ(1/(dK²)),
so a node surviving Θ(dK² log 1/δ) good rounds is deactivated manually —
an event of probability ≤ δ (Lemma B.10's counting).  Lemma B.3 then
gives the *deterministic* guarantee that after O(d² log Δ / log log Δ)
rounds no hyperedge has all nodes active.

The conflict structure is virtual (the paper's LOCAL algorithm simulates
each of its rounds in O(ℓ) base-graph rounds; the caller charges that via
its ledger), so this module runs the iteration loop centrally but with
per-iteration semantics identical to the distributed protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set

from ..errors import AlgorithmContractViolation
from ..utils import stable_rng


@dataclass
class HypergraphMatchingResult:
    """Outcome of the nearly-maximal hypergraph matching."""

    matched_edges: List[int]
    deactivated: Set[Hashable]
    iterations: int
    #: True when the loop ended because no all-active hyperedge remained
    #: (the Lemma B.3 condition), False when the budget ran out first.
    drained: bool = True


def good_round_cap(d: int, k: float, failure_delta: float,
                   c: float = 3.0) -> int:
    """The Θ(d·K²·log 1/δ) good-round budget before manual deactivation."""

    return max(1, math.ceil(c * d * (k ** 2) * math.log(1.0 / failure_delta)))


def lemma_b3_budget(d: int, k: float, max_degree: int,
                    failure_delta: float, beta: float = 3.0) -> int:
    """Lemma B.3's O(d²K² log 1/δ + d² log_K Δ) iteration budget."""

    delta = max(2, max_degree)
    return max(
        1,
        math.ceil(
            beta * (d * d * (k ** 2) * math.log(1.0 / failure_delta)
                    + d * d * math.log(delta) / math.log(k))
        ),
    )


def nearly_maximal_hypergraph_matching(
    hyperedges: Sequence[FrozenSet[Hashable]],
    rank: int,
    k: float = 2.0,
    failure_delta: float = 0.05,
    seed: int = 0,
    max_iterations: Optional[int] = None,
    good_cap: Optional[int] = None,
) -> HypergraphMatchingResult:
    """Find a matching of hyperedges, maximal among non-deactivated nodes.

    Parameters mirror the paper: rank ``d``, update factor ``K``, failure
    probability ``δ``.  Returns the matched hyperedge indices, the set of
    manually deactivated nodes, and the iterations used.  Invariants
    validated on exit: matched hyperedges are pairwise disjoint, and no
    remaining hyperedge has all nodes active (when ``drained``).
    """

    if rank < 1:
        raise AlgorithmContractViolation(f"rank must be >= 1, got {rank}")
    if k < 2:
        raise AlgorithmContractViolation(f"K must be >= 2, got {k}")
    rng = stable_rng(seed, "hypergraph-nmm")
    edges = [frozenset(e) for e in hyperedges]
    for e in edges:
        if not e or len(e) > rank:
            raise AlgorithmContractViolation(
                f"hyperedge {sorted(map(repr, e))} exceeds rank {rank}"
            )

    # Vertex -> incident edge indices, and the intersection structure.
    incident: Dict[Hashable, List[int]] = {}
    for index, e in enumerate(edges):
        for v in e:
            incident.setdefault(v, []).append(index)
    neighbors: List[Set[int]] = [set() for _ in edges]
    for indices in incident.values():
        for i, a in enumerate(indices):
            for b in indices[i + 1:]:
                neighbors[a].add(b)
                neighbors[b].add(a)

    max_deg = max((len(nbrs) + 1 for nbrs in neighbors), default=2)
    if good_cap is None:
        good_cap = good_round_cap(rank, k, failure_delta)
    if max_iterations is None:
        max_iterations = lemma_b3_budget(rank, k, max_deg, failure_delta)

    p = {i: 1.0 / k for i in range(len(edges))}
    alive = set(range(len(edges)))
    active_nodes = set(incident)
    good_rounds: Dict[Hashable, int] = {v: 0 for v in active_nodes}
    matched: List[int] = []
    deactivated: Set[Hashable] = set()
    threshold = 1.0 / (2.0 * rank * k * k)

    def retire_edges_of(node: Hashable) -> None:
        for index in incident.get(node, ()):
            alive.discard(index)

    iterations = 0
    drained = False
    for iteration in range(max_iterations):
        if not alive:
            drained = True
            break
        iterations = iteration + 1

        # Closed-neighborhood probability mass S(e) = Σ_{e' ∩ e ≠ ∅} p(e').
        mass = {
            i: p[i] + sum(p[j] for j in neighbors[i] if j in alive)
            for i in alive
        }
        light = {i for i in alive if mass[i] < 2.0}

        # Good-round accounting (Lemma B.10) and manual deactivation.
        for v in list(active_nodes):
            light_mass = sum(
                p[i] for i in incident.get(v, ()) if i in light
            )
            if light_mass >= threshold:
                good_rounds[v] += 1
                if good_rounds[v] > good_cap:
                    deactivated.add(v)
                    active_nodes.discard(v)
                    retire_edges_of(v)

        # Marking: an edge joins when marked and no intersecting edge is.
        marked = {i for i in alive if rng.random() < p[i]}
        joined = [
            i for i in sorted(marked)
            if not any(j in marked for j in neighbors[i] if j in alive)
        ]
        for i in joined:
            if i not in alive:
                continue  # a disjoint earlier join cannot retire i, but
                # a shared-node join could have; guard anyway.
            matched.append(i)
            for v in edges[i]:
                active_nodes.discard(v)
                retire_edges_of(v)

        # Probability updates on survivors.
        for i in alive:
            if mass[i] >= 2.0:
                p[i] = p[i] / k
            else:
                p[i] = min(k * p[i], 1.0 / k)
    else:
        drained = not alive

    # Validation: matched edges pairwise disjoint.
    seen: Set[Hashable] = set()
    for i in matched:
        overlap = seen & edges[i]
        if overlap:
            raise AlgorithmContractViolation(
                f"hyperedge matching overlaps at {sorted(map(repr, overlap))}"
            )
        seen |= edges[i]
    if drained:
        for i, e in enumerate(edges):
            if i in alive and e <= (active_nodes - seen):
                raise AlgorithmContractViolation(
                    "drained run left an all-active hyperedge"
                )
    return HypergraphMatchingResult(
        matched_edges=matched,
        deactivated=deactivated,
        iterations=iterations,
        drained=drained,
    )
