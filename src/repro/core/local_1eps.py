"""Theorem B.4 — (1+ε)-approximate maximum cardinality matching, LOCAL.

The Hopcroft–Karp loop: for ℓ = 1, 3, …, 2⌈1/ε⌉+1, find a nearly-maximal
set of vertex-disjoint augmenting paths of length ℓ among *active* nodes
and flip them.  The nearly-maximal set comes from the rank-(ℓ+1)
hypergraph matching of Appendix B.2 (each path = one hyperedge over its
nodes), whose good-round deactivation guarantees that each node is
deactivated with probability ≤ δ per phase — the strong per-node
guarantee that makes discarding the stragglers affordable (the naive
per-path guarantee cannot be union-bounded over the up-to-Δ^ℓ paths
through a node; that is the whole point of Section B.2).

After the loop, no augmenting path of length ≤ 2⌈1/ε⌉+1 exists among
active nodes, so the matching restricted to active nodes is a
(1+ε/2)-approximation there; deactivations cost at most 2δ′|OPT| edges in
expectation, giving (1+ε) overall for δ = Θ(ε²) (Theorem B.4's proof).

Round accounting: one conflict-structure iteration costs O(ℓ) base-graph
rounds in LOCAL; the ledger charges ``iterations × (ℓ+1)`` per phase plus
O(1) per flip wave.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Set

import networkx as nx

from ..congest import RoundLedger
from ..errors import InvalidInstance
from ..graphs import check_matching
from .augmenting import (
    augment_with_disjoint_paths,
    enumerate_augmenting_paths,
    verify_hk_phase,
)
from .hypergraph_matching import nearly_maximal_hypergraph_matching


@dataclass
class OneEpsResult:
    """A matching plus the bookkeeping Theorem B.4 cares about."""

    matching: Set[frozenset]
    deactivated: Set[Hashable]
    rounds: int
    ledger: RoundLedger = field(default_factory=RoundLedger)
    truncated_phases: List[int] = field(default_factory=list)

    @property
    def cardinality(self) -> int:
        return len(self.matching)


def local_matching_1eps_phases(
    graph: nx.Graph,
    eps: float = 0.5,
    seed: int = 0,
    k: float = 2.0,
    failure_delta: Optional[float] = None,
    path_cap: int = 200_000,
    initial_matching: Optional[Set[frozenset]] = None,
    max_rounds: Optional[int] = None,
    capture_state: bool = False,
    resume: Optional[dict] = None,
):
    """Anytime Theorem B.4: one snapshot per Hopcroft–Karp phase.

    A generator yielding ``(rounds, matching, extras, state)`` tuples —
    the initial state and then one snapshot after every length-ℓ phase.
    The matching is vertex-disjoint at every phase boundary, so each
    snapshot is a valid partial solution; ``extras`` carries the
    ``deactivated`` node set and ``truncated_phases`` so far.

    With ``max_rounds`` set, the generator stops *before* launching a
    phase once the ledger has consumed the budget (cooperative: no
    rounds beyond the budget are simulated) and returns ``None``; a
    run that finishes within the budget — and any run without one —
    returns the usual :class:`OneEpsResult`.  Draining the generator
    with ``max_rounds=None`` reproduces :func:`local_matching_1eps`
    bit for bit.

    With ``capture_state=True`` every snapshot's ``state`` is a resume
    payload; feeding one back as ``resume=`` restarts the phase loop
    at the captured boundary with the matching, deactivations and
    ledger restored.  Phase randomness is keyed per phase length
    (``seed + 31·ℓ``), so a resumed loop replays the exact random
    stream the uncut run would have used — resume ≡ never-stopped.
    """

    if eps <= 0:
        raise InvalidInstance(f"eps must be positive, got {eps}")
    if failure_delta is None:
        failure_delta = max(1e-4, min(0.1, eps * eps / 4.0))
    max_length = 2 * math.ceil(1.0 / eps) + 1
    ledger = RoundLedger()
    matching: Set[frozenset] = set(initial_matching or set())
    if matching:
        check_matching(graph, [tuple(e) for e in matching])
    active: Set[Hashable] = set(graph.nodes)
    truncated: List[int] = []
    start_length = 1
    if resume is not None:
        start_length = resume["next_length"]
        matching = set(resume["matching"])
        active -= set(resume["deactivated"])
        truncated = list(resume["truncated_phases"])
        ledger.total = resume["ledger"]["total"]
        ledger.breakdown = dict(resume["ledger"]["breakdown"])
        # The payload pins the options the original run resolved, so
        # the continuation replays the identical phase parameters even
        # when the caller omits them on resume.
        k = resume["options"]["k"]
        failure_delta = resume["options"]["failure_delta"]
        path_cap = resume["options"]["path_cap"]

    def snapshot(next_length):
        deactivated = set(graph.nodes) - active
        state = None
        if capture_state:
            state = {
                "rounds": ledger.total,
                "next_length": next_length,
                "matching": set(matching),
                "deactivated": set(deactivated),
                "truncated_phases": list(truncated),
                "ledger": {"total": ledger.total,
                           "breakdown": dict(ledger.breakdown)},
                "options": {"k": k, "failure_delta": failure_delta,
                            "path_cap": path_cap},
            }
        return ledger.total, frozenset(matching), {
            "deactivated": deactivated,
            "truncated_phases": list(truncated),
        }, state

    yield snapshot(start_length)
    for length in range(start_length, max_length + 1, 2):
        if max_rounds is not None and ledger.total >= max_rounds:
            return None
        paths = enumerate_augmenting_paths(
            graph, matching, length, active=active, cap=path_cap,
        )
        ledger.charge(length + 1, f"enumerate-l{length}")
        if paths:
            if len(paths) >= path_cap:
                truncated.append(length)
            verify_hk_phase(graph, matching, paths)
            hyperedges = [frozenset(p) for p in paths]
            outcome = nearly_maximal_hypergraph_matching(
                hyperedges,
                rank=length + 1,
                k=k,
                failure_delta=failure_delta,
                seed=seed + 31 * length,
            )
            # Each conflict-structure iteration = O(ℓ) base-graph rounds.
            ledger.charge(outcome.iterations * (length + 1),
                          f"nmm-phase-l{length}")
            chosen = [paths[i] for i in outcome.matched_edges]
            matching = augment_with_disjoint_paths(matching, chosen)
            ledger.charge(1, f"flip-l{length}")
            active -= outcome.deactivated
            check_matching(graph, [tuple(e) for e in matching])
        yield snapshot(length + 2)

    return OneEpsResult(
        matching=matching,
        deactivated=set(graph.nodes) - active,
        rounds=ledger.total,
        ledger=ledger,
        truncated_phases=truncated,
    )


def local_matching_1eps(
    graph: nx.Graph,
    eps: float = 0.5,
    seed: int = 0,
    k: float = 2.0,
    failure_delta: Optional[float] = None,
    path_cap: int = 200_000,
    initial_matching: Optional[Set[frozenset]] = None,
) -> OneEpsResult:
    """Run the LOCAL-model (1+ε) algorithm.

    ``failure_delta`` defaults to the paper's δ = Θ(ε²).  ``path_cap``
    bounds path enumeration per phase; phases that hit the cap are
    recorded in ``truncated_phases`` (the guarantee then only holds for
    the enumerated subset — keep instances small or ε moderate).
    """

    from ..utils import drain

    return drain(local_matching_1eps_phases(
        graph, eps=eps, seed=seed, k=k, failure_delta=failure_delta,
        path_cap=path_cap, initial_matching=initial_matching,
    ))


def theorem_b4_round_budget(delta: int, eps: float, k: float = 2.0,
                            failure_delta: Optional[float] = None) -> int:
    """The analytic O(log Δ / (ε³ log log Δ)) budget of Theorem B.4.

    Exposed so the benchmarks can compare measured ledger totals against
    the analytic curve.
    """

    if failure_delta is None:
        failure_delta = max(1e-4, min(0.1, eps * eps / 4.0))
    phases = math.ceil(1.0 / eps) + 1
    per_phase = 0
    for length in range(1, 2 * phases, 2):
        d = length + 1
        per_phase += math.ceil(
            (d ** 2) * ((k ** 2) * math.log(1.0 / failure_delta)
                        + math.log(max(2, delta)) / math.log(k))
        ) * (length + 1)
    return per_phase
