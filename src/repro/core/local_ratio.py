"""Algorithm 1 — the sequential local-ratio meta-algorithm for MaxIS.

This module is the correctness core of Section 2.1.  The local ratio
theorem for maximization problems (Theorem 2.1, [BYBFR04, Theorem 9])
states: if ``w = w1 + w2`` and a feasible ``x`` is r-approximate w.r.t.
both ``w1`` and ``w2``, it is r-approximate w.r.t. ``w``.

The meta-algorithm repeatedly picks an independent set ``U``, subtracts
``w(u)`` from every neighbor of each ``u ∈ U`` (creating the *residual*
weights ``w2`` and *reduced* weights ``w1 = w − w2``), recurses on the
positive-weight remainder, and finally adds back every ``u ∈ U`` with no
neighbor in the recursive solution (Lemma 2.2's exchange step).

The functions here are deliberately faithful to the paper's pseudocode —
including the recursion — because the distributed Algorithms 2 and 3 are
proven correct *by reduction to this meta-algorithm*.  Property tests
assert the Lemma 2.2 invariants on random executions.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Set

import networkx as nx

from ..errors import InvalidInstance
from ..graphs import check_independent_set, node_weight
from ..utils import stable_rng


def split_weights(
    graph: nx.Graph,
    weights: Dict[Hashable, float],
    independent_set: Iterable[Hashable],
) -> tuple[Dict[Hashable, float], Dict[Hashable, float]]:
    """Split ``w`` into (reduced ``w1``, residual ``w2``) around ``U``.

    Each ``u ∈ U`` subtracts its weight from its *closed* neighborhood
    ``N[u]``: ``w2[v] = Σ_{u ∈ U ∩ N[v]} w[u]`` and ``w1 = w − w2``.  In
    particular ``w2[u] = w[u]`` and ``w1[u] = 0`` for every ``u ∈ U``
    (exactly the Lemma 2.2 proof's premise, and what Algorithm 2 does by
    zeroing a candidate's own weight in line 27).  ``w1`` may go negative
    on shared neighbors — Theorem 2.1 explicitly allows this.
    """

    chosen = set(independent_set)
    check_independent_set(graph, chosen)
    residual = {v: 0.0 for v in graph.nodes}
    for u in chosen:
        residual[u] += weights[u]
        for v in graph.neighbors(u):
            residual[v] += weights[u]
    reduced = {v: weights[v] - residual[v] for v in graph.nodes}
    return reduced, residual


def exchange_step(
    graph: nx.Graph,
    independent_set: Set[Hashable],
    recursive_solution: Set[Hashable],
) -> Set[Hashable]:
    """Lemma 2.2's completion: add every u ∈ U with no chosen neighbor.

    Equation (1) of the paper: x'[u] = 1 iff u ∈ U and no v ∈ N(u) has
    x[v] = 1; otherwise x'[u] = x[u].
    """

    solution = set(recursive_solution)
    for u in independent_set:
        if not any(v in solution for v in graph.neighbors(u)):
            solution.add(u)
    return solution


SelectorFn = Callable[[nx.Graph, Dict[Hashable, float]], Set[Hashable]]


def _default_selector(subgraph: nx.Graph,
                      weights: Dict[Hashable, float]) -> Set[Hashable]:
    """Pick a single maximum-weight node — the simplest independent set."""

    best = max(subgraph.nodes, key=lambda v: (weights[v], repr(v)))
    return {best}


def random_mis_selector(seed: int) -> SelectorFn:
    """A selector that greedily builds an MIS in random order.

    Used by property tests to exercise the meta-algorithm with the same
    kind of sets the distributed implementations produce.
    """

    rng = stable_rng(seed, "lr-selector")

    def selector(subgraph: nx.Graph,
                 weights: Dict[Hashable, float]) -> Set[Hashable]:
        order = sorted(subgraph.nodes, key=repr)
        rng.shuffle(order)
        chosen: Set[Hashable] = set()
        blocked: Set[Hashable] = set()
        for v in order:
            if v not in blocked:
                chosen.add(v)
                blocked.add(v)
                blocked.update(subgraph.neighbors(v))
        return chosen

    return selector


def sequential_local_ratio_iter(
    graph: nx.Graph,
    weights: Optional[Dict[Hashable, float]] = None,
    selector: Optional[SelectorFn] = None,
    trace: Optional[List[dict]] = None,
):
    """Anytime Algorithm 1: one snapshot per exchange level.

    Generator form of :func:`sequential_local_ratio`: after the
    descent, every Lemma 2.2 exchange step yields ``(level,
    solution)`` with the partially assembled independent set — each
    intermediate state is itself independent (the exchange only adds
    nodes with no chosen neighbor), so every snapshot is a valid
    partial solution.  Returns the final set; draining the generator
    reproduces :func:`sequential_local_ratio` exactly.
    """

    if weights is None:
        weights = {v: float(node_weight(graph, v)) for v in graph.nodes}
    else:
        missing = set(graph.nodes) - set(weights)
        if missing:
            raise InvalidInstance(f"weights missing for {len(missing)} nodes")
        weights = {v: float(w) for v, w in weights.items()}
    if selector is None:
        selector = _default_selector

    # Descend: peel zero/negative nodes, pick U, reduce weights.
    levels: List[Set[Hashable]] = []
    active = {v for v in graph.nodes if weights[v] > 0}
    current = dict(weights)
    while active:
        subgraph = graph.subgraph(active)
        chosen = selector(subgraph, current)
        check_independent_set(subgraph, chosen)
        if not chosen:
            raise InvalidInstance("selector returned an empty set")
        reduced, residual = split_weights(subgraph, current, chosen)
        if trace is not None:
            trace.append({
                "level": len(levels),
                "set": set(chosen),
                "weights": dict(current),
                "reduced": reduced,
                "residual": residual,
            })
        levels.append(set(chosen))
        for v in subgraph.nodes:
            current[v] = reduced[v]
        active = {v for v in active if current[v] > 0}

    # Ascend: Lemma 2.2 exchange at every level, deepest first.
    solution: Set[Hashable] = set()
    for level in range(len(levels) - 1, -1, -1):
        solution = exchange_step(graph, levels[level], solution)
        yield level, frozenset(solution)
    check_independent_set(graph, solution)
    return solution


def sequential_local_ratio(
    graph: nx.Graph,
    weights: Optional[Dict[Hashable, float]] = None,
    selector: Optional[SelectorFn] = None,
    trace: Optional[List[dict]] = None,
) -> Set[Hashable]:
    """Algorithm 1 (SeqLR): Δ-approximate maximum weight independent set.

    Parameters
    ----------
    graph:
        Input graph; node weights default to the ``weight`` attribute.
    weights:
        Optional explicit weight vector (overrides node attributes).
    selector:
        How the independent set ``U`` is picked each level (the paper
        leaves this open; correctness holds for any choice).
    trace:
        Optional list that receives one record per recursion level with
        the chosen set and the weight split — consumed by property tests
        asserting the Lemma 2.2 invariants.

    Returns the chosen independent set.  Implemented iteratively (an
    explicit stack) to avoid Python's recursion limit on deep instances,
    but structured exactly as the paper's recursion.
    """

    from ..utils import drain

    return drain(sequential_local_ratio_iter(graph, weights=weights,
                                             selector=selector, trace=trace))


def local_ratio_bound(graph: nx.Graph, delta: Optional[int] = None) -> int:
    """The approximation factor Δ guaranteed by the meta-algorithm.

    On a line graph the neighborhood independence number is 2, which is
    why the same algorithm is a 2-approximation for matching (§2.4).
    """

    if delta is not None:
        return max(1, delta)
    return max((d for _, d in graph.degree()), default=1) or 1
