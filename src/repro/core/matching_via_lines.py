"""Section 2.4 / Theorem 2.10 — 2-approximate maximum weight matching.

A maximum-weight independent set of the line graph ``L(G)`` is a
maximum-weight matching of ``G``, and in ``L(G)`` the largest independent
set inside any closed neighborhood ``N[e]`` has size 2, so the local-ratio
MaxIS algorithms of Section 2 are *2*-approximations there (the Δ in
Lemma 2.2's charging argument becomes 2).

Both MaxIS algorithms of this library are local aggregation algorithms
(Theorem 2.9) — their neighbor access is AND/OR/SUM/MAX folds — so by
Theorem 2.8 they run on the line graph in CONGEST with no congestion
penalty.  :func:`matching_local_ratio` executes them on ``L(G)`` with an
optional :class:`~repro.congest.CongestionAudit` that measures exactly
that claim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Set

import networkx as nx

from ..congest import CongestionAudit, line_graph
from ..congest.network import CONGEST, SynchronousNetwork
from ..errors import InvalidInstance, RoundLimitExceeded
from ..graphs import check_matching, edge_weight, max_node_weight
from ..mis.coloring import delta_plus_one_coloring
from .maxis_coloring import MaxISColoringProgram
from .maxis_coloring import IN_IS as COLORING_IN_IS
from .maxis_layers import IN_IS, MaxISLayersProgram
from .stepwise import stepper_snapshots
from ..utils import drain


@dataclass
class MatchingResult:
    """A matching, its weight, and the rounds the algorithm used."""

    matching: Set[frozenset]
    weight: int
    rounds: int
    audit: Optional[CongestionAudit] = None


def matching_lines_phases(
    graph: nx.Graph,
    method: str = "layers",
    seed: int = 0,
    audit: Optional[CongestionAudit] = None,
    max_rounds: Optional[int] = None,
    capture_state: bool = False,
    resume: Optional[dict] = None,
    snapshots: bool = True,
):
    """Anytime Theorem 2.10: MaxIS on ``L(G)``, one snapshot per
    selection phase of the underlying MaxIS engine.

    Yields ``(rounds, matching, weight, final, state)`` tuples; the
    matching is vertex-disjoint at every boundary because the line
    graph's independent-set invariant holds at every prefix.  Returns
    the usual :class:`MatchingResult` on completion, ``None`` when
    ``max_rounds`` cuts the run cooperatively.
    :func:`matching_local_ratio` *is* the drain of this generator
    (``snapshots=False``: no mid-run snapshots are yielded or paid
    for; the matching is read off the final outputs instead), so the
    two paths cannot drift.  ``capture_state`` / ``resume`` follow the
    :func:`~repro.core.maxis_layers.maxis_layers_phases` protocol; the
    line graph is deterministic and rebuilt at resume, never
    serialized.
    """

    if graph.number_of_edges() == 0:
        return MatchingResult(matching=set(), weight=0, rounds=0,
                              audit=audit)

    lg = line_graph(graph)
    # An explicit budget always wins — including max_rounds=0, which
    # must truncate at the initial state, not fall back to the default
    # cap (`or` would swallow it).
    if method == "layers":
        w = max(2, max_node_weight(lg))
        n = max(2, lg.number_of_nodes())
        budget = max_rounds if max_rounds is not None else 600 * (
            (math.ceil(math.log2(n)) + 2) * (math.ceil(math.log2(w)) + 2)
        )

        def factory(e):
            return MaxISLayersProgram(lg.nodes[e].get("weight", 1))

        winner_output = IN_IS
        run_label = "mwm-2approx-layers"
        checkpoint_every = 3
    elif method == "coloring":
        coloring = delta_plus_one_coloring(lg)

        def factory(e):
            neighbor_colors = {
                e2: coloring.colors[e2] for e2 in lg.neighbors(e)
            }
            return MaxISColoringProgram(
                weight=lg.nodes[e].get("weight", 1),
                color=coloring.colors[e],
                neighbor_colors=neighbor_colors,
            )

        budget = max_rounds if max_rounds is not None else (
            20 * (coloring.palette + 2) + 4 * lg.number_of_nodes()
        )
        winner_output = COLORING_IN_IS
        run_label = "mwm-2approx-coloring"
        checkpoint_every = 1
    else:
        raise InvalidInstance(f"unknown method {method!r}")

    # Same construction as run_on_line_graph (which matching_local_ratio
    # uses), unrolled because the audit hook and the stepwise driver
    # both need the network object.
    network = SynchronousNetwork(lg, model=CONGEST, seed=seed)
    if audit is not None:
        def trace(round_index, envelope):
            audit.record_line_message(round_index, envelope.src,
                                      envelope.dst)
            audit.record_aggregated_round(round_index, graph)

        network.trace = trace

    matching: Set[frozenset] = set()
    weight = 0
    sim_state = None
    if resume is not None:
        matching = set(resume["matching"])
        weight = resume["weight"]
        sim_state = resume["sim"]
    stepper = network.run_stepwise(
        factory,
        max_rounds=budget,
        label=run_label,
        stop_on_limit=True,
        checkpoint_every=checkpoint_every if snapshots else None,
        capture_state=capture_state,
        resume_state=sim_state,
    )

    def fold(newly_halted):
        nonlocal weight
        for line_node, output in newly_halted:
            if output == winner_output:
                matching.add(frozenset(line_node))
                weight += edge_weight(graph, *line_node)
        return frozenset(matching), weight

    def make_state(rounds, objective, sim):
        return {"rounds": rounds, "method": method,
                "matching": set(matching), "weight": objective,
                "sim": sim}

    result = yield from stepper_snapshots(stepper, fold, make_state)
    if not snapshots:
        # Fast-drain form: the stepper yielded nothing, so read the
        # winners off the final outputs (the historical code path).
        fold((line_node, output)
             for line_node, output in result.outputs.items())
    check_matching(graph, [tuple(e) for e in matching])
    if not result.completed:
        return None
    return MatchingResult(matching=set(matching), weight=weight,
                          rounds=result.rounds, audit=audit)


def matching_local_ratio(
    graph: nx.Graph,
    method: str = "layers",
    seed: int = 0,
    audit: Optional[CongestionAudit] = None,
    max_rounds: Optional[int] = None,
) -> MatchingResult:
    """2-approximate maximum weight matching via MaxIS on ``L(G)``.

    ``method`` selects the MaxIS engine: ``"layers"`` (Algorithm 2,
    randomized, O(MIS·log W) rounds) or ``"coloring"`` (Algorithm 3,
    deterministic, O(Δ + log* n) rounds with the coloring as a black
    box).  Edge weights come from the ``weight`` attribute (default 1).

    This is the fast drain of :func:`matching_lines_phases` (one code
    path, so the two cannot drift; no per-phase bookkeeping is paid).
    A ``max_rounds`` the protocol cannot meet raises
    :class:`~repro.errors.RoundLimitExceeded` — the historical
    contract of this entry point; use the phase generator (or the
    anytime facade) for cooperative truncation instead.
    """

    result = drain(matching_lines_phases(
        graph, method=method, seed=seed, audit=audit,
        max_rounds=max_rounds, snapshots=False,
    ))
    if result is None:
        raise RoundLimitExceeded(max_rounds or 0, ())
    return result
