"""Section 2.4 / Theorem 2.10 — 2-approximate maximum weight matching.

A maximum-weight independent set of the line graph ``L(G)`` is a
maximum-weight matching of ``G``, and in ``L(G)`` the largest independent
set inside any closed neighborhood ``N[e]`` has size 2, so the local-ratio
MaxIS algorithms of Section 2 are *2*-approximations there (the Δ in
Lemma 2.2's charging argument becomes 2).

Both MaxIS algorithms of this library are local aggregation algorithms
(Theorem 2.9) — their neighbor access is AND/OR/SUM/MAX folds — so by
Theorem 2.8 they run on the line graph in CONGEST with no congestion
penalty.  :func:`matching_local_ratio` executes them on ``L(G)`` with an
optional :class:`~repro.congest.CongestionAudit` that measures exactly
that claim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Set

import networkx as nx

from ..congest import CongestionAudit, line_graph, run_on_line_graph
from ..errors import InvalidInstance
from ..graphs import check_matching, edge_weight, max_node_weight
from ..mis.coloring import delta_plus_one_coloring
from .maxis_coloring import MaxISColoringProgram
from .maxis_coloring import IN_IS as COLORING_IN_IS
from .maxis_layers import IN_IS, MaxISLayersProgram


@dataclass
class MatchingResult:
    """A matching, its weight, and the rounds the algorithm used."""

    matching: Set[frozenset]
    weight: int
    rounds: int
    audit: Optional[CongestionAudit] = None


def matching_local_ratio(
    graph: nx.Graph,
    method: str = "layers",
    seed: int = 0,
    audit: Optional[CongestionAudit] = None,
    max_rounds: Optional[int] = None,
) -> MatchingResult:
    """2-approximate maximum weight matching via MaxIS on ``L(G)``.

    ``method`` selects the MaxIS engine: ``"layers"`` (Algorithm 2,
    randomized, O(MIS·log W) rounds) or ``"coloring"`` (Algorithm 3,
    deterministic, O(Δ + log* n) rounds with the coloring as a black
    box).  Edge weights come from the ``weight`` attribute (default 1).
    """

    if graph.number_of_edges() == 0:
        return MatchingResult(matching=set(), weight=0, rounds=0, audit=audit)

    lg = line_graph(graph)
    if method == "layers":
        w = max(2, max_node_weight(lg))
        n = max(2, lg.number_of_nodes())
        budget = max_rounds or 600 * (
            (math.ceil(math.log2(n)) + 2) * (math.ceil(math.log2(w)) + 2)
        )
        result = run_on_line_graph(
            graph,
            lambda e: MaxISLayersProgram(lg.nodes[e].get("weight", 1)),
            seed=seed,
            max_rounds=budget,
            label="mwm-2approx-layers",
            audit=audit,
        )
        winners = result.output_set(IN_IS)
    elif method == "coloring":
        coloring = delta_plus_one_coloring(lg)

        def factory(e):
            neighbor_colors = {
                e2: coloring.colors[e2] for e2 in lg.neighbors(e)
            }
            return MaxISColoringProgram(
                weight=lg.nodes[e].get("weight", 1),
                color=coloring.colors[e],
                neighbor_colors=neighbor_colors,
            )

        budget = max_rounds or (
            20 * (coloring.palette + 2) + 4 * lg.number_of_nodes()
        )
        result = run_on_line_graph(
            graph, factory, seed=seed, max_rounds=budget,
            label="mwm-2approx-coloring", audit=audit,
        )
        winners = result.output_set(COLORING_IN_IS)
    else:
        raise InvalidInstance(f"unknown method {method!r}")

    matching = {frozenset(e) for e in winners}
    check_matching(graph, [tuple(e) for e in winners])
    weight = sum(edge_weight(graph, *tuple(e)) for e in matching)
    return MatchingResult(matching=matching, weight=weight,
                         rounds=result.rounds, audit=audit)
