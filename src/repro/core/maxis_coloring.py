"""Algorithm 3 — deterministic coloring-based Δ-approximation for MaxIS.

Instead of weight layers, nodes are prioritized by a proper (Δ+1)-coloring:
a node whose color is a *local maximum* among its still-active neighbors
performs the closed-neighborhood local-ratio step (sends ``reduce`` and
becomes a candidate).  Because the coloring is proper, two adjacent nodes
can never both be local maxima, so the reducing set is always independent
— this is the whole trick that makes the selection deterministic.

After one sweep the top color class is entirely candidates or removed;
after at most Δ+1 sweeps the removal stage is done (O(Δ) rounds).  The
addition stage is the same candidate/wait-set stack discipline as
Algorithm 2.

The (Δ+1)-coloring itself comes from :mod:`repro.mis.coloring`; the paper
charges O(Δ + log* n) rounds for it citing [BEK14, Bar15] — see DESIGN.md
§4 for the substitution we make there.  The result reports the coloring
rounds (measured and accounted) separately from the local-ratio rounds.

Everything in this algorithm is deterministic: running it twice yields
bit-identical outputs, which the test suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Set

import networkx as nx

from ..congest import (
    NodeContext,
    NodeProgram,
    SynchronousNetwork,
    make_network,
)
from ..errors import InvalidInstance
from ..graphs import check_independent_set, node_weight
from ..mis.coloring import ColoringResult, delta_plus_one_coloring
from .stepwise import stepper_snapshots

IN_IS = "InIS"
NOT_IN_IS = "NotInIS"


class MaxISColoringProgram(NodeProgram):
    """One node of Algorithm 3.

    One round per iteration: digest ``reduce``/``removed``/``join``,
    retire on non-positive weight, then — if the node's color beats every
    believed-active neighbor's color — perform the local-ratio step.
    Color comparisons need no fresh messages because colors are static
    and the believed-active set only ever shrinks (stale beliefs merely
    delay eligibility by one round, never break independence).
    """

    ACTIVE = "active"
    CANDIDATE = "candidate"

    def __init__(self, weight: int, color: int,
                 neighbor_colors: Dict[Hashable, int]):
        if weight <= 0:
            raise InvalidInstance(
                f"Algorithm 3 needs positive weights, got {weight}"
            )
        self.weight = int(weight)
        self.color = color
        self.neighbor_colors = dict(neighbor_colors)

    def on_start(self, ctx: NodeContext) -> None:
        self.status = self.ACTIVE
        self.active_neighbors: Set[Hashable] = set(ctx.neighbors)
        self.wait_set: Set[Hashable] = set()
        self._act(ctx)

    # -- checkpoint support (resume protocol) --------------------------
    def export_state(self) -> dict:
        return {
            "weight": self.weight,
            "status": self.status,
            "active_neighbors": set(self.active_neighbors),
            "wait_set": set(self.wait_set),
        }

    def restore_state(self, state: dict) -> None:
        self.weight = state["weight"]
        self.status = state["status"]
        self.active_neighbors = set(state["active_neighbors"])
        self.wait_set = set(state["wait_set"])

    def on_round(self, ctx: NodeContext) -> None:
        for src, payload in ctx.inbox.items():
            kind = payload[0] if payload else None
            if kind == "reduce":
                self.weight -= payload[1]
                self.active_neighbors.discard(src)
            elif kind == "removed":
                self.active_neighbors.discard(src)
                self.wait_set.discard(src)
            elif kind == "join":
                ctx.broadcast("removed")
                ctx.halt(NOT_IN_IS)
                return
        self._act(ctx)

    def _act(self, ctx: NodeContext) -> None:
        if self.status == self.ACTIVE:
            if self.weight <= 0:
                ctx.broadcast("removed")
                ctx.halt(NOT_IN_IS)
                return
            if all(self.color > self.neighbor_colors[u]
                   for u in self.active_neighbors):
                for u in self.active_neighbors:
                    ctx.send(u, "reduce", self.weight)
                self.wait_set = set(self.active_neighbors)
                self.weight = 0
                self.status = self.CANDIDATE
        if self.status == self.CANDIDATE and not self.wait_set:
            ctx.broadcast("join")
            ctx.halt(IN_IS)


@dataclass
class MaxISColoringResult:
    """Outcome of Algorithm 3 plus coloring round accounting."""

    independent_set: Set[Hashable]
    weight: int
    local_ratio_rounds: int
    coloring: ColoringResult

    @property
    def measured_rounds(self) -> int:
        """Local-ratio rounds plus the measured coloring pipeline rounds."""

        return self.local_ratio_rounds + self.coloring.measured_rounds

    @property
    def accounted_rounds(self) -> int:
        """Local-ratio rounds plus the paper's O(Δ + log* n) coloring."""

        return self.local_ratio_rounds + self.coloring.accounted_bek14_rounds


def maxis_coloring_phases(
    graph: nx.Graph,
    network: Optional[SynchronousNetwork] = None,
    coloring: Optional[ColoringResult] = None,
    max_rounds: Optional[int] = None,
    label: str = "maxis-coloring",
    checkpoint_every: int = 1,
    capture_state: bool = False,
    resume: Optional[dict] = None,
):
    """Anytime Algorithm 3: one snapshot per local-ratio sweep round.

    Yields ``(rounds, chosen, weight, final, state)`` tuples where
    ``rounds`` is the paper-*accounted* cumulative count — the
    O(Δ + log* n) coloring charge (``accounted_bek14_rounds``) plus
    the local-ratio rounds simulated so far — matching what
    :class:`MaxISColoringResult.accounted_rounds` reports at the end.
    ``chosen`` is independent at every boundary (same stack discipline
    as Algorithm 2), so every snapshot is a valid partial solution.

    ``max_rounds`` budgets the accounted count: a budget below the
    coloring charge stops before simulating anything (the generator
    returns ``None`` without yielding), and otherwise the local-ratio
    simulation is capped at the remainder.  Returns the usual
    :class:`MaxISColoringResult` on completion, ``None`` on a budget
    cut.  ``capture_state`` / ``resume`` follow the
    :func:`~repro.core.maxis_layers.maxis_layers_phases` protocol: the
    final snapshot's ``state`` resumes the run bit-for-bit (the
    coloring itself is deterministic and recomputed, not serialized).
    Draining with no budget reproduces
    :func:`maxis_local_ratio_coloring` bit for bit.
    """

    if coloring is None:
        coloring = delta_plus_one_coloring(graph)
    colors = coloring.colors
    if network is None:
        network = make_network(graph, seed=0)
    base = coloring.accounted_bek14_rounds
    if max_rounds is None:
        sim_cap = 20 * (coloring.palette + 2) + 4 * graph.number_of_nodes()
    else:
        if max_rounds < base and resume is None:
            # The budget cannot even pay for the coloring black box:
            # stop cooperatively before simulating a single round.
            return None
        sim_cap = max(0, max_rounds - base)

    def factory(node: Hashable) -> MaxISColoringProgram:
        neighbor_colors = {u: colors[u] for u in graph.neighbors(node)}
        return MaxISColoringProgram(
            weight=node_weight(graph, node),
            color=colors[node],
            neighbor_colors=neighbor_colors,
        )

    chosen: Set[Hashable] = set()
    weight = 0
    sim_state = None
    if resume is not None:
        chosen = set(resume["chosen"])
        weight = resume["weight"]
        sim_state = resume["sim"]
    stepper = network.run_stepwise(
        factory,
        max_rounds=sim_cap,
        label=label,
        stop_on_limit=True,
        checkpoint_every=checkpoint_every,
        capture_state=capture_state,
        resume_state=sim_state,
    )

    def fold(newly_halted):
        nonlocal weight
        for node, output in newly_halted:
            if output == IN_IS:
                chosen.add(node)
                weight += node_weight(graph, node)
        return frozenset(chosen), weight

    def make_state(rounds, objective, sim):
        return {"rounds": rounds, "chosen": set(chosen),
                "weight": objective, "sim": sim}

    result = yield from stepper_snapshots(stepper, fold, make_state,
                                          rounds_offset=base)
    check_independent_set(graph, chosen)
    if not result.completed:
        return None
    return MaxISColoringResult(
        independent_set=set(chosen),
        weight=weight,
        local_ratio_rounds=result.rounds,
        coloring=coloring,
    )


def maxis_local_ratio_coloring(
    graph: nx.Graph,
    network: Optional[SynchronousNetwork] = None,
    coloring: Optional[ColoringResult] = None,
    max_rounds: Optional[int] = None,
    label: str = "maxis-coloring",
) -> MaxISColoringResult:
    """Run Algorithm 3 on ``graph`` (node attribute ``weight``, default 1)."""

    if coloring is None:
        coloring = delta_plus_one_coloring(graph)
    colors = coloring.colors
    if network is None:
        network = make_network(graph, seed=0)
    if max_rounds is None:
        # Removal needs at most one sweep per color; addition cascades at
        # most once per color class as well.  Generous constant on top.
        max_rounds = 20 * (coloring.palette + 2) + 4 * graph.number_of_nodes()

    def factory(node: Hashable) -> MaxISColoringProgram:
        neighbor_colors = {u: colors[u] for u in graph.neighbors(node)}
        return MaxISColoringProgram(
            weight=node_weight(graph, node),
            color=colors[node],
            neighbor_colors=neighbor_colors,
        )

    result = network.run(factory, max_rounds=max_rounds, label=label)
    chosen = result.output_set(IN_IS)
    check_independent_set(graph, chosen)
    total = sum(node_weight(graph, v) for v in chosen)
    return MaxISColoringResult(
        independent_set=chosen,
        weight=total,
        local_ratio_rounds=result.rounds,
        coloring=coloring,
    )
