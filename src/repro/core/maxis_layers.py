"""Algorithm 2 — distributed Δ-approximation for weighted MaxIS.

The algorithm layers the nodes by weight (layer ``i`` holds nodes with
``2^{i-1} < w <= 2^i``) and repeatedly selects an independent set among
*locally top-layer* nodes — nodes with no higher-layer active neighbor —
using randomized bidding (the Luby-style MIS black box of Theorem 2.3).
Selected nodes become *candidates*: they subtract their weight from their
closed neighborhood (their own weight becomes 0, Section 2.1's closed-
neighborhood local-ratio step) and later, in the addition stage, join the
independent set exactly when every neighbor they were waiting on has
decided *not* to join (the stack discipline of Algorithm 1, realized by
message passing).

Round structure — three rounds per selection iteration:

* phase A (``round % 3 == 0``): digest ``reduce``/``removed``/``join``
  messages, retire if the weight dropped to zero or below, broadcast the
  fresh ``(weight, layer)``;
* phase B: nodes with no higher-layer active neighbor broadcast a random
  bid (these are exactly the nodes the paper lets run the MIS — locally
  top-layer nodes never wait);
* phase C: a bidder that beats every same-layer bid in its neighborhood
  is selected (selected nodes are independent: same-layer ties are broken
  strictly and cross-layer adjacent winners are impossible because the
  lower one would not have been eligible); it sends ``reduce`` to its
  believed-active neighbors and becomes a candidate.

Candidates wait for every neighbor that was active at their candidacy to
announce a final decision; a ``join`` from a *later* candidate knocks
them out (they were popped later in the stack), an empty wait set lets
them join.  The paper's Theorem 2.3 accounting — O(MIS(G) · log W)
rounds — shows up as the measured round count growing like
log n · log W with the Luby-style selection.

Outputs per node: ``"InIS"`` / ``"NotInIS"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set

import networkx as nx

from ..congest import (
    NodeContext,
    NodeProgram,
    SynchronousNetwork,
    make_network,
)
from ..errors import InvalidInstance
from ..graphs import check_independent_set, max_node_weight, node_weight
from ..utils import geometric_layers
from .stepwise import stepper_snapshots

IN_IS = "InIS"
NOT_IN_IS = "NotInIS"


@dataclass
class LayerTrace:
    """Instrumentation for the Lemma A.1 figure.

    ``occupancy[t]`` maps a phase-A round index to the set of layers that
    still contain active nodes — the quantity that loses its topmost
    member after every completed MIS selection round on the top layer.
    """

    occupancy: Dict[int, Set[int]] = field(default_factory=dict)

    def record(self, round_index: int, layer: int) -> None:
        self.occupancy.setdefault(round_index, set()).add(layer)

    def top_layer_series(self) -> List[int]:
        """The topmost occupied layer per recorded round, in round order."""

        return [max(layers) for _, layers in sorted(self.occupancy.items())]


class MaxISLayersProgram(NodeProgram):
    """One node of Algorithm 2 (see module docstring for the protocol)."""

    ACTIVE = "active"
    CANDIDATE = "candidate"

    def __init__(self, weight: int, trace: Optional[LayerTrace] = None):
        if weight <= 0 or int(weight) != weight:
            raise InvalidInstance(
                f"Algorithm 2 needs positive integer weights, got {weight}"
            )
        self.weight = int(weight)
        self.trace = trace

    def on_start(self, ctx: NodeContext) -> None:
        self.status = self.ACTIVE
        self.active_neighbors: Set[Hashable] = set(ctx.neighbors)
        self.wait_set: Set[Hashable] = set()
        self.neighbor_layers: Dict[Hashable, int] = {}
        self.bid: Optional[float] = None
        self.eligible = False

    # -- checkpoint support (resume protocol) --------------------------
    def export_state(self) -> dict:
        return {
            "weight": self.weight,
            "status": self.status,
            "active_neighbors": set(self.active_neighbors),
            "wait_set": set(self.wait_set),
            "neighbor_layers": dict(self.neighbor_layers),
            "bid": self.bid,
            "eligible": self.eligible,
        }

    def restore_state(self, state: dict) -> None:
        self.weight = state["weight"]
        self.status = state["status"]
        self.active_neighbors = set(state["active_neighbors"])
        self.wait_set = set(state["wait_set"])
        self.neighbor_layers = dict(state["neighbor_layers"])
        self.bid = state["bid"]
        self.eligible = state["eligible"]

    # ------------------------------------------------------------------
    def on_round(self, ctx: NodeContext) -> None:
        if self._process_inbox(ctx):
            return
        if self._maybe_transition(ctx):
            return
        phase = ctx.round % 3
        if self.status == self.ACTIVE:
            if phase == 0:
                self._phase_broadcast(ctx)
            elif phase == 1:
                self._phase_bid(ctx)
            else:
                self._phase_resolve(ctx)

    # ------------------------------------------------------------------
    def _process_inbox(self, ctx: NodeContext) -> bool:
        """Apply status messages; return True if this node halted."""

        for src, payload in ctx.inbox.items():
            kind = payload[0] if payload else None
            if kind == "reduce":
                # Only active nodes are ever sent a reduce (candidates were
                # dropped from the sender's neighborhood at their own
                # candidacy), so the weight update below is safe.
                self.weight -= payload[1]
                self.active_neighbors.discard(src)
            elif kind == "removed":
                self.active_neighbors.discard(src)
                self.wait_set.discard(src)
            elif kind == "join":
                # A neighbor entered the independent set; we cannot.
                ctx.broadcast("removed")
                ctx.halt(NOT_IN_IS)
                return True
        return False

    def _maybe_transition(self, ctx: NodeContext) -> bool:
        if self.status == self.ACTIVE and self.weight <= 0:
            ctx.broadcast("removed")
            ctx.halt(NOT_IN_IS)
            return True
        if self.status == self.CANDIDATE and not self.wait_set:
            ctx.broadcast("join")
            ctx.halt(IN_IS)
            return True
        return False

    # ------------------------------------------------------------------
    @property
    def layer(self) -> int:
        return geometric_layers(self.weight)

    def _phase_broadcast(self, ctx: NodeContext) -> None:
        if self.trace is not None:
            self.trace.record(ctx.round, self.layer)
        ctx.broadcast("info", self.weight, self.layer)

    def _phase_bid(self, ctx: NodeContext) -> None:
        self.neighbor_layers = {
            src: payload[2]
            for src, payload in ctx.inbox.items()
            if payload and payload[0] == "info"
        }
        self.eligible = all(
            layer <= self.layer for layer in self.neighbor_layers.values()
        )
        self.bid = None
        if self.eligible:
            # O(log n)-bit random priority (CONGEST-sized message).
            self.bid = ctx.rng.randrange(max(2, ctx.n) ** 3)
            ctx.broadcast("bid", self.bid)

    def _phase_resolve(self, ctx: NodeContext) -> None:
        if self.bid is None:
            return
        mine = (self.bid, repr(ctx.node))
        for src, payload in ctx.inbox.items():
            if not payload or payload[0] != "bid":
                continue
            if self.neighbor_layers.get(src) != self.layer:
                continue
            if (payload[1], repr(src)) > mine:
                return  # beaten by a same-layer neighbor
        # Selected: perform the closed-neighborhood local-ratio step.
        for u in self.active_neighbors:
            ctx.send(u, "reduce", self.weight)
        self.wait_set = set(self.active_neighbors)
        self.weight = 0
        self.status = self.CANDIDATE


@dataclass
class MaxISResult:
    """Outcome of a distributed MaxIS execution."""

    independent_set: Set[Hashable]
    rounds: int
    weight: int
    trace: Optional[LayerTrace] = None


def default_round_budget(graph: nx.Graph) -> int:
    """Theorem 2.3's budget with generous constants: O(MIS(G) · log W)
    selection rounds plus the addition-stage cascade."""

    import math

    n = max(2, graph.number_of_nodes())
    w = max(2, max_node_weight(graph))
    return 600 * (math.ceil(math.log2(n)) + 2) * (
        math.ceil(math.log2(w)) + 2
    )


def maxis_layers_phases(
    graph: nx.Graph,
    seed: int = 0,
    network: Optional[SynchronousNetwork] = None,
    max_rounds: Optional[int] = None,
    trace: Optional[LayerTrace] = None,
    label: str = "maxis-layers",
    checkpoint_every: int = 3,
    capture_state: bool = False,
    resume: Optional[dict] = None,
):
    """Anytime Algorithm 2: one snapshot per selection phase.

    A generator that drives the protocol through
    :meth:`~repro.congest.SynchronousNetwork.run_stepwise` and yields a
    ``(rounds, chosen, weight, final, state)`` tuple at every
    selection-phase boundary (one phase = 3 simulator rounds;
    ``final`` marks the run's last snapshot).  ``chosen`` is the set
    of nodes that have joined the independent set so far — independent
    at *every* prefix of the execution, because the stack discipline
    only lets a node join once every undecided neighbor has declined —
    so each snapshot is a valid partial solution in its own right (the
    "expected value by round T" object of the MaxIS analysis).

    Returns (as ``StopIteration.value``) the usual :class:`MaxISResult`
    when the protocol completes, or ``None`` when the ``max_rounds``
    budget interrupts it cooperatively; the last yielded snapshot then
    holds the best partial solution, and no rounds beyond the budget
    are executed.  Draining the generator with no budget reproduces
    :func:`maxis_local_ratio_layers` bit for bit.

    With ``capture_state=True`` the final snapshot's ``state`` holds a
    resume payload (the simulator execution state plus the partial
    solution); passing it back as ``resume=`` continues the protocol
    from that boundary — same messages, same randomness, continued
    round/metric accounting — as if the budget had never cut it.
    ``max_rounds`` stays cumulative across the hops.
    """

    if network is None:
        network = make_network(graph, seed=seed)
    if max_rounds is None:
        max_rounds = default_round_budget(graph)
    chosen: Set[Hashable] = set()
    weight = 0
    sim_state = None
    if resume is not None:
        chosen = set(resume["chosen"])
        weight = resume["weight"]
        sim_state = resume["sim"]
    stepper = network.run_stepwise(
        lambda node: MaxISLayersProgram(node_weight(graph, node), trace),
        max_rounds=max_rounds,
        label=label,
        stop_on_limit=True,
        checkpoint_every=checkpoint_every,
        capture_state=capture_state,
        resume_state=sim_state,
    )

    def fold(newly_halted):
        nonlocal weight
        for node, output in newly_halted:
            if output == IN_IS:
                chosen.add(node)
                weight += node_weight(graph, node)
        return frozenset(chosen), weight

    def make_state(rounds, objective, sim):
        return {"rounds": rounds, "chosen": set(chosen),
                "weight": objective, "sim": sim}

    result = yield from stepper_snapshots(stepper, fold, make_state)
    check_independent_set(graph, chosen)
    if not result.completed:
        return None
    return MaxISResult(independent_set=set(chosen), rounds=result.rounds,
                       weight=weight, trace=trace)


def maxis_local_ratio_layers(
    graph: nx.Graph,
    seed: int = 0,
    network: Optional[SynchronousNetwork] = None,
    max_rounds: Optional[int] = None,
    trace: Optional[LayerTrace] = None,
    label: str = "maxis-layers",
) -> MaxISResult:
    """Run Algorithm 2 on ``graph`` (node attribute ``weight``, default 1).

    Returns the independent set, the measured round count and the total
    weight of the solution.  The output is validated for independence
    (the Δ-approximation guarantee itself is asserted against exact
    oracles in the test suite).
    """

    if network is None:
        network = make_network(graph, seed=seed)
    if max_rounds is None:
        max_rounds = default_round_budget(graph)
    # One pass over the node data instead of a node_weight() call per
    # factory invocation — at n=10^5 the per-call attribute chasing is
    # measurable against the vectorized backend.
    weights = dict(graph.nodes(data="weight", default=1))
    result = network.run(
        lambda node: MaxISLayersProgram(weights[node], trace),
        max_rounds=max_rounds,
        label=label,
    )
    chosen = result.output_set(IN_IS)
    check_independent_set(graph, chosen)
    total = sum(weights[v] for v in chosen)
    return MaxISResult(independent_set=chosen, rounds=result.rounds,
                       weight=total, trace=trace)
