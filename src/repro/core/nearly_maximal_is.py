"""Section 3.1 — the improved nearly-maximal independent set (Theorem 3.1).

Ghaffari's algorithm updates marking probabilities by a factor 2; the
paper's improvement raises the update factor to ``K = Θ(log^0.1 Δ)``,
giving round complexity ``O(log Δ / log K + K² log 1/δ)`` for per-node
failure probability δ — which is ``O(log Δ / log log Δ)`` and matches the
[KMW06] lower bound.  The probability dynamics themselves are shared with
:mod:`repro.mis.ghaffari`; this module contributes the parameterization,
the Theorem 3.1 round budget, and the residual-decay measurement used to
reproduce the theorem's guarantee empirically.

Note on scale: Θ(log^0.1 Δ) only exceeds 2 for astronomically large Δ,
so on simulable graphs we expose K directly (default the paper's formula
floored at 2).  The *shape* claim — larger K flattens the log Δ / log K
term while inflating the additive K² log(1/δ) term — is exactly what the
decay benchmark sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Optional, Set

import networkx as nx

from ..congest import SynchronousNetwork
from ..graphs import max_degree
from ..mis.ghaffari import GoldenRoundStats, nearly_maximal_is


def paper_k(delta: int) -> float:
    """``K = Θ(log^0.1 Δ)`` from Theorem 3.1, floored at 2.

    For every graph a laptop can hold, ``log^0.1 Δ < 2``; the floor keeps
    the dynamics meaningful while preserving the formula's asymptotics.
    """

    if delta < 2:
        return 2.0
    return max(2.0, math.log2(delta) ** 0.1)


def theorem_3_1_budget(delta: int, k: float, failure_delta: float,
                       beta: float = 4.0) -> int:
    """The iteration budget ``β(log Δ / log K + K² log 1/δ)``."""

    if not 0 < failure_delta < 1:
        raise ValueError("failure probability must be in (0, 1)")
    delta = max(2, delta)
    log_term = math.log2(delta) / math.log2(k)
    additive = (k ** 2) * math.log(1.0 / failure_delta)
    return max(1, math.ceil(beta * (log_term + additive)))


@dataclass
class NearlyMaximalISResult:
    """Outcome of the improved nearly-maximal IS."""

    independent_set: Set[Hashable]
    residual: Set[Hashable]
    rounds: int
    iterations: int
    k: float
    stats: Optional[GoldenRoundStats] = None

    @property
    def residual_fraction(self) -> float:
        total = len(self.independent_set) + len(self.residual)
        # Residual fraction is relative to all nodes that entered; the
        # caller usually divides by n instead — provide both views.
        return 0.0 if not self.residual else len(self.residual) / max(
            1, total
        )


def improved_nearly_maximal_is(
    graph: nx.Graph,
    failure_delta: float = 0.05,
    k: Optional[float] = None,
    beta: float = 4.0,
    seed: int = 0,
    network: Optional[SynchronousNetwork] = None,
    participants=None,
    collect_stats: bool = False,
    label: str = "improved-nmis",
) -> NearlyMaximalISResult:
    """Theorem 3.1's nearly-maximal IS with the paper's parameterization.

    Every node ends in the set, dominated, or *residual*; Theorem 3.1
    bounds P[residual] by ``failure_delta`` per node (and the guarantee
    is local — it survives adversarial randomness outside the node's
    2-neighborhood, which is what lets Theorem 3.2 sum residuals against
    the optimal matching).
    """

    delta = max_degree(graph)
    if k is None:
        k = paper_k(delta)
    iterations = theorem_3_1_budget(delta, k, failure_delta, beta)
    stats = GoldenRoundStats() if collect_stats else None
    independent, residual, rounds = nearly_maximal_is(
        graph,
        iterations=iterations,
        k=k,
        seed=seed,
        network=network,
        participants=participants,
        stats=stats,
        label=label,
    )
    return NearlyMaximalISResult(
        independent_set=independent,
        residual=residual,
        rounds=rounds,
        iterations=iterations,
        k=k,
        stats=stats,
    )


def residual_decay_series(
    graph: nx.Graph,
    k: float,
    max_iterations: int,
    seeds,
) -> list:
    """Fraction of nodes neither in nor dominated, per iteration budget.

    Runs the algorithm once per (seed, budget) pair and reports the mean
    undecided fraction — the empirical version of Theorem 3.1's decay,
    plotted by ``benchmarks/bench_nmis_decay.py``.
    """

    n = max(1, graph.number_of_nodes())
    series = []
    for iterations in range(1, max_iterations + 1):
        fractions = []
        for seed in seeds:
            _, residual, _ = nearly_maximal_is(
                graph, iterations=iterations, k=k, seed=seed,
            )
            fractions.append(len(residual) / n)
        series.append(sum(fractions) / len(fractions))
    return series
