"""Appendix B.4 — the alternative fast (2+ε) unweighted matching.

Bipartite algorithm (Lemma B.13): every round, each left node proposes on
a uniformly random *remaining* incident edge; each right node accepts the
proposal with the highest id and the pair retires.  For any K, after
O(K log 1/ε + log Δ / log K) rounds each left node is matched, isolated,
or *unlucky* with probability ≤ ε/2 — per round, either a left node's
live degree fell by a factor K or its proposal succeeded with probability
≥ 1/K (the lemma's dichotomy).  The guarantee is per-node and independent
of other nodes' randomness, which gives the exponential concentration the
paper highlights (footnote 8).

General graphs (Lemma B.14): O(log 1/ε) repetitions of "randomly split
into left/right, run the bipartite algorithm on the crossing edges,
remove matched nodes".

Both run as genuine message-passing programs on the simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Optional, Set, Tuple

import networkx as nx

from ..congest import (
    NodeContext,
    NodeProgram,
    RoundLedger,
    SynchronousNetwork,
    make_network,
)
from ..errors import InvalidInstance
from ..graphs import check_matching, max_degree
from ..utils import stable_rng

MATCHED = "matched"
UNLUCKY = "unlucky"
ISOLATED = "isolated"


def lemma_b13_rounds(delta: int, eps: float, k: int) -> int:
    """The O(K log 1/ε + log Δ / log K) phase budget of Lemma B.13."""

    if k < 2:
        raise InvalidInstance(f"K must be >= 2, got {k}")
    delta = max(2, delta)
    return max(1, math.ceil(
        3.0 * (k * math.log(2.0 / eps)
               + math.log(delta) / math.log(k))
    ))


def optimal_k(delta: int, eps: float) -> int:
    """K minimizing the Lemma B.13 bound (the paper's optimized choice
    gives O(log Δ / log(log Δ / log 1/ε)) rounds)."""

    best_k, best_val = 2, float("inf")
    for k in range(2, max(3, delta + 2)):
        val = k * math.log(2.0 / eps) + math.log(max(2, delta)) / math.log(k)
        if val < best_val:
            best_k, best_val = k, val
    return best_k


class ProposalProgram(NodeProgram):
    """One node of the bipartite proposal algorithm.

    Two rounds per phase: left nodes propose, right nodes accept the
    highest-id proposal (acceptance is a commitment — the proposer always
    honors it).  Matched nodes announce ``retired`` so neighbors prune
    their live edge lists.  After ``phases`` phases, a left node with
    live edges left halts ``unlucky``; right nodes halt when all
    neighbors retired (or the budget ends).
    """

    def __init__(self, side: str, phases: int):
        if side not in ("L", "R"):
            raise InvalidInstance(f"side must be 'L' or 'R', got {side!r}")
        self.side = side
        self.phases = phases

    def on_start(self, ctx: NodeContext) -> None:
        self.live: Set[Hashable] = set(ctx.neighbors)
        self.proposed_to: Optional[Hashable] = None

    # -- checkpoint support (resume protocol) --------------------------
    def export_state(self) -> dict:
        return {
            "live": set(self.live),
            "proposed_to": self.proposed_to,
        }

    def restore_state(self, state: dict) -> None:
        self.live = set(state["live"])
        self.proposed_to = state["proposed_to"]

    def on_round(self, ctx: NodeContext) -> None:
        for src, payload in ctx.inbox.items():
            if payload and payload[0] == "retired":
                self.live.discard(src)
        if ctx.round % 2 == 0:
            self._propose_step(ctx)
        else:
            self._respond_step(ctx)

    def _propose_step(self, ctx: NodeContext) -> None:
        # An accept from the previous respond step seals the match.
        for src, payload in ctx.inbox.items():
            if payload and payload[0] == "accept":
                ctx.broadcast("retired")
                ctx.halt((MATCHED, src))
                return
        if not self.live:
            ctx.halt((ISOLATED, None))
            return
        if ctx.round // 2 >= self.phases:
            ctx.halt((UNLUCKY, None))
            return
        if self.side == "L":
            target = ctx.rng.choice(sorted(self.live, key=repr))
            self.proposed_to = target
            ctx.send(target, "propose")

    def _respond_step(self, ctx: NodeContext) -> None:
        if self.side == "L":
            return
        proposers = sorted(
            (src for src, payload in ctx.inbox.items()
             if payload and payload[0] == "propose"),
            key=repr,
        )
        if proposers:
            winner = proposers[-1]  # highest id accepts (Lemma B.13)
            # One message per edge per round: broadcast the retirement,
            # then overwrite the winner's slot with the accept (which
            # implies retirement — the winner halts on receiving it).
            ctx.broadcast("retired")
            ctx.send(winner, "accept")
            ctx.halt((MATCHED, winner))


@dataclass
class ProposalResult:
    matching: Set[frozenset]
    unlucky: Set[Hashable]
    rounds: int
    phases: int


def bipartite_proposal_phases(
    graph: nx.Graph,
    left: Set[Hashable],
    right: Set[Hashable],
    eps: float = 0.25,
    k: Optional[int] = None,
    seed: int = 0,
    network: Optional[SynchronousNetwork] = None,
    phases: Optional[int] = None,
    max_rounds: Optional[int] = None,
    capture_state: bool = False,
    resume: Optional[dict] = None,
    snapshots: bool = True,
    backend: Optional[str] = None,
):
    """Anytime Lemma B.13: one snapshot per propose/respond phase.

    Yields ``(rounds, matching, unlucky, final, state)`` tuples every
    two simulator rounds (one proposal phase); the matching is
    vertex-disjoint at every boundary because pairs retire atomically.
    Returns the usual :class:`ProposalResult` on completion, ``None``
    when ``max_rounds`` cuts the protocol cooperatively (the
    simulator stops at the budget; no further rounds are executed).
    Draining with ``max_rounds=None`` reproduces
    :func:`bipartite_proposal_matching` bit for bit.
    ``capture_state`` / ``resume`` follow the
    :func:`~repro.core.maxis_layers.maxis_layers_phases` protocol.
    ``snapshots=False`` is the fast-drain form the legacy entry point
    uses: no mid-run snapshots are yielded or paid for, and the
    matching is read off the final outputs instead — identical result,
    zero per-phase bookkeeping.  ``backend`` picks the simulator engine
    when ``network`` is not supplied (results are bit-identical either
    way).
    """

    delta = max_degree(graph)
    if k is None:
        k = optimal_k(delta, eps)
    if phases is None:
        phases = lemma_b13_rounds(delta, eps, k)
    if resume is not None:
        # The payload pins the parameters the original run derived, so
        # a resumed protocol replays the identical phase deadline even
        # if the caller omitted explicit overrides.
        k = resume["k"]
        phases = resume["phases"]
    if network is None:
        network = make_network(graph, seed=seed, backend=backend)
    sides = {v: ("L" if v in left else "R") for v in graph.nodes}
    for u, v in graph.edges:
        if sides[u] == sides[v]:
            raise InvalidInstance(
                f"edge ({u!r}, {v!r}) does not cross the bipartition"
            )
    cap = 2 * phases + 4 if max_rounds is None else max_rounds
    matching: Set[frozenset] = set()
    unlucky: Set[Hashable] = set()
    sim_state = None
    if resume is not None:
        matching = set(resume["matching"])
        unlucky = set(resume["unlucky"])
        sim_state = resume["sim"]
    stepper = network.run_stepwise(
        lambda node: ProposalProgram(sides[node], phases),
        max_rounds=cap,
        label="proposal-matching",
        stop_on_limit=max_rounds is not None,
        checkpoint_every=2 if snapshots else None,
        capture_state=capture_state,
        resume_state=sim_state,
    )
    while True:
        try:
            snapshot = next(stepper)
        except StopIteration as stop:
            result = stop.value
            break
        for node, output in snapshot.newly_halted:
            status, partner = output if output else (UNLUCKY, None)
            if status == MATCHED:
                matching.add(frozenset((node, partner)))
            elif status == UNLUCKY:
                unlucky.add(node)
        state = None
        if snapshot.state is not None:
            state = {
                "rounds": snapshot.rounds,
                "k": k,
                "phases": phases,
                "matching": set(matching),
                "unlucky": set(unlucky),
                "sim": snapshot.state,
            }
        yield snapshot.rounds, frozenset(matching), set(unlucky), \
            snapshot.final, state
    if not snapshots:
        # Fast-drain form: the stepper yielded nothing, so read the
        # outcome off the final outputs (the historical code path).
        for node, output in result.outputs.items():
            status, partner = output if output else (UNLUCKY, None)
            if status == MATCHED:
                matching.add(frozenset((node, partner)))
            elif status == UNLUCKY:
                unlucky.add(node)
    check_matching(graph, [tuple(e) for e in matching])
    if not result.completed:
        return None
    return ProposalResult(
        matching=matching,
        unlucky=unlucky,
        rounds=result.rounds,
        phases=phases,
    )


def bipartite_proposal_matching(
    graph: nx.Graph,
    left: Set[Hashable],
    right: Set[Hashable],
    eps: float = 0.25,
    k: Optional[int] = None,
    seed: int = 0,
    network: Optional[SynchronousNetwork] = None,
    phases: Optional[int] = None,
    backend: Optional[str] = None,
) -> ProposalResult:
    """Lemma B.13's algorithm on a bipartite graph with given sides."""

    from ..utils import drain

    return drain(bipartite_proposal_phases(
        graph, left, right, eps=eps, k=k, seed=seed, network=network,
        phases=phases, snapshots=False, backend=backend,
    ))


def general_proposal_phases(
    graph: nx.Graph,
    eps: float = 0.25,
    k: Optional[int] = None,
    seed: int = 0,
    repetitions: Optional[int] = None,
    max_rounds: Optional[int] = None,
    capture_state: bool = False,
    resume: Optional[dict] = None,
    backend: Optional[str] = None,
):
    """Anytime Lemma B.14: one snapshot per bipartition repetition.

    Yields ``(rounds, matching, final, state)`` after the initial
    state and after every repetition; the matching is vertex-disjoint
    at every boundary (repetitions only ever add disjoint pairs).
    With ``max_rounds`` set, stops before launching a repetition once
    the ledger has consumed the budget and returns ``None``;
    otherwise returns the usual ``(matching, rounds, ledger)`` triple.
    Draining with no budget reproduces
    :func:`general_proposal_matching` bit for bit.

    ``capture_state=True`` attaches a resume payload (matching,
    surviving node pool, ledger, split-RNG state) to every snapshot;
    ``resume=`` restores it.  The surviving pool is rebuilt with the
    exact insert-then-discard history of the uncut run so the split
    comprehension's iteration order — and with it the RNG assignment —
    is reproduced verbatim.
    """

    if repetitions is None:
        repetitions = max(1, math.ceil(2.0 * math.log(2.0 / eps))) + 1
    rng = stable_rng(seed, "b14-splits")
    ledger = RoundLedger()
    matching: Set[frozenset] = set()
    remaining: Set[Hashable] = set(graph.nodes)
    start_rep = 0
    if resume is not None:
        start_rep = resume["repetition"]
        repetitions = resume["repetitions"]
        matching = set(resume["matching"])
        survivors = resume["remaining"]
        for v in graph.nodes:
            if v not in survivors:
                remaining.discard(v)
        ledger.total = resume["ledger"]["total"]
        ledger.breakdown = dict(resume["ledger"]["breakdown"])
        version, internals, gauss = resume["rng"]
        rng.setstate((version, tuple(internals), gauss))

    def snapshot(next_rep):
        state = None
        if capture_state:
            version, internals, gauss = rng.getstate()
            state = {
                "rounds": ledger.total,
                "repetition": next_rep,
                "repetitions": repetitions,
                "matching": set(matching),
                "remaining": set(remaining),
                "ledger": {"total": ledger.total,
                           "breakdown": dict(ledger.breakdown)},
                "rng": [version, list(internals), gauss],
            }
        return ledger.total, frozenset(matching), \
            next_rep >= repetitions, state

    yield snapshot(start_rep)
    for repetition in range(start_rep, repetitions):
        if max_rounds is not None and ledger.total >= max_rounds:
            return None
        left = {v for v in remaining if rng.random() < 0.5}
        right = remaining - left
        sub = nx.Graph()
        sub.add_nodes_from(remaining)
        sub.add_edges_from(
            (u, v) for u, v in graph.edges
            if (u in left and v in right) or (u in right and v in left)
        )
        ledger.charge(1, "bipartition")
        if sub.number_of_edges() > 0:
            outcome = bipartite_proposal_matching(
                sub, left, right, eps=eps, k=k,
                seed=seed + 13 * (repetition + 1), backend=backend,
            )
            ledger.charge(outcome.rounds, "bipartite-proposals")
            matching |= outcome.matching
            for e in outcome.matching:
                remaining -= set(e)
        yield snapshot(repetition + 1)
    check_matching(graph, [tuple(e) for e in matching])
    return matching, ledger.total, ledger


def general_proposal_matching(
    graph: nx.Graph,
    eps: float = 0.25,
    k: Optional[int] = None,
    seed: int = 0,
    repetitions: Optional[int] = None,
    backend: Optional[str] = None,
) -> Tuple[Set[frozenset], int, RoundLedger]:
    """Lemma B.14: O(log 1/ε) random-bipartition repetitions.

    Returns ``(matching, rounds, ledger)``.  Each repetition splits the
    remaining nodes uniformly into left/right, keeps crossing edges, and
    runs the bipartite algorithm; matched nodes leave the pool.
    """

    from ..utils import drain

    return drain(general_proposal_phases(
        graph, eps=eps, k=k, seed=seed, repetitions=repetitions,
        backend=backend,
    ))
