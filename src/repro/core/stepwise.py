"""Shared driver for simulator-backed anytime phase generators.

The three MaxIS/line-graph anytime runners all follow the same shape:
drive :meth:`~repro.congest.SynchronousNetwork.run_stepwise`, fold the
``newly_halted`` nodes of each :class:`~repro.congest.StepSnapshot`
into an incrementally maintained partial solution, and re-emit
``(rounds, solution, objective, final, state)`` tuples where ``state``
is the algorithm's resume payload on state-carrying snapshots.  This
module keeps that loop — and with it the capture-protocol tuple shape
— in exactly one place, so a change to the resume payload contract
cannot silently miss one of the runners.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple


def stepper_snapshots(
    stepper,
    fold: Callable[[tuple], Tuple[frozenset, int]],
    make_state: Callable[[int, int, dict], Optional[dict]],
    rounds_offset: int = 0,
):
    """Yield phase-snapshot tuples from a ``run_stepwise`` generator;
    return its :class:`~repro.congest.RunResult`.

    ``fold(newly_halted)`` absorbs the nodes that halted since the last
    snapshot into the caller's partial solution and returns the current
    ``(solution, objective)`` pair (solution as a frozenset).
    ``make_state(rounds, objective, sim_state)`` wraps the simulator's
    captured execution state into the algorithm's resume payload; it is
    only called for snapshots that carry one (the final snapshot of a
    capturing run).  ``rounds_offset`` shifts simulator rounds onto the
    algorithm's accounted scale (Algorithm 3 charges its coloring black
    box up front).
    """

    while True:
        try:
            snapshot = next(stepper)
        except StopIteration as stop:
            return stop.value
        solution, objective = fold(snapshot.newly_halted)
        rounds = rounds_offset + snapshot.rounds
        state = None
        if snapshot.state is not None:
            state = make_state(rounds, objective, snapshot.state)
        yield rounds, solution, objective, snapshot.final, state


__all__ = ["stepper_snapshots"]
