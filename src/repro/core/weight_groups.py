"""Footnote 5 — 2-approx MWM via weight groups directly on G.

Footnote 5 of the paper notes that running the layered MaxIS algorithm
on L(G) "is equivalent to iteratively running a maximal matching on
weight groups in G and performing local ratio steps on the edges of the
matching".  This module implements that direct formulation:

* edges are grouped into weight layers L_i = {e : 2^{i-1} < w(e) ≤ 2^i};
* each iteration finds a maximal matching among *locally top* edges
  (edges with no higher-layer active edge sharing an endpoint) — the
  matched edges are an independent set in L(G);
* matched edges apply the closed-neighborhood local-ratio step: their
  weight is zeroed and subtracted from every adjacent edge, and edges
  driven to zero or below retire;
* the addition stage pops candidates in reverse selection order, adding
  an edge when none of the adjacent edges it waited on joined.

The guarantee is the same factor 2 as Theorem 2.10 (the neighborhood
independence number of a line graph is 2).  Rounds are charged to a
ledger: one maximal-matching sub-protocol per iteration (the black box,
O(log n) with Israeli–Itai) plus O(1) bookkeeping, mirroring how the
paper charges MIS(G) per layer.

This exists both as a usable algorithm (it avoids materializing L(G))
and as the ablation target for ``benchmarks/bench_ablation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set

import networkx as nx

from ..congest import RoundLedger
from ..errors import InvalidInstance
from ..graphs import check_matching, edge_weight
from ..utils import geometric_layers, stable_rng

Edge = frozenset


@dataclass
class WeightGroupResult:
    """Outcome of the weight-group matching."""

    matching: Set[Edge]
    weight: int
    rounds: int
    iterations: int
    ledger: RoundLedger = field(default_factory=RoundLedger)


def _adjacent_edges(graph: nx.Graph, edge: Edge):
    u, v = tuple(edge)
    for x in (u, v):
        for w in graph.neighbors(x):
            other = frozenset((x, w))
            if other != edge:
                yield other


def _maximal_matching_among(edges: Set[Edge], rng) -> Set[Edge]:
    """Greedy maximal matching in random order (the black box; charged
    as one distributed maximal-matching execution by the caller)."""

    order = sorted(edges, key=repr)
    rng.shuffle(order)
    used: Set[Hashable] = set()
    chosen: Set[Edge] = set()
    for edge in order:
        u, v = tuple(edge)
        if u not in used and v not in used:
            chosen.add(edge)
            used.update((u, v))
    return chosen


def weight_group_matching(
    graph: nx.Graph,
    seed: int = 0,
    max_iterations: int = 10_000,
    mm_rounds_charge: Optional[int] = None,
) -> WeightGroupResult:
    """Footnote 5's 2-approximate maximum weight matching on G.

    ``mm_rounds_charge`` is the per-iteration round cost of the maximal
    matching black box (defaults to the Israeli–Itai O(log n) figure,
    3·⌈log2 m⌉ rounds for m edges).
    """

    rng = stable_rng(seed, "weight-groups")
    weights: Dict[Edge, int] = {}
    for u, v in graph.edges:
        w = edge_weight(graph, u, v)
        if w <= 0:
            raise InvalidInstance("edge weights must be positive")
        weights[frozenset((u, v))] = w
    ledger = RoundLedger()
    if mm_rounds_charge is None:
        import math

        m = max(2, graph.number_of_edges())
        mm_rounds_charge = 3 * math.ceil(math.log2(m))

    active: Set[Edge] = set(weights)
    selection_order: List[Set[Edge]] = []
    iterations = 0
    while active and iterations < max_iterations:
        iterations += 1
        layer = {e: geometric_layers(weights[e]) for e in active}
        top_local = {
            e for e in active
            if all(layer.get(e2, -1) <= layer[e]
                   for e2 in _adjacent_edges(graph, e) if e2 in active)
        }
        ledger.charge(1, "layer-exchange")
        selected = _maximal_matching_among(top_local, rng)
        ledger.charge(mm_rounds_charge, "maximal-matching")
        if not selected:
            continue
        selection_order.append(selected)
        # Closed-neighborhood local-ratio step.
        for e in selected:
            w = weights[e]
            weights[e] = 0
            for e2 in _adjacent_edges(graph, e):
                if e2 in active and e2 not in selected:
                    weights[e2] -= w
        ledger.charge(1, "reduce")
        active = {e for e in active if weights[e] > 0}
    else:
        if active:
            raise InvalidInstance(
                "weight-group matching did not converge; increase "
                "max_iterations"
            )

    # Addition stage: pop candidate groups in reverse selection order.
    chosen: Set[Edge] = set()
    blocked: Set[Hashable] = set()
    for selected in reversed(selection_order):
        for e in sorted(selected, key=repr):
            u, v = tuple(e)
            if u not in blocked and v not in blocked:
                chosen.add(e)
                blocked.update((u, v))
        ledger.charge(1, "addition")

    check_matching(graph, [tuple(e) for e in chosen])
    total = sum(edge_weight(graph, *tuple(e)) for e in chosen)
    return WeightGroupResult(
        matching=chosen,
        weight=total,
        rounds=ledger.total,
        iterations=iterations,
        ledger=ledger,
    )
