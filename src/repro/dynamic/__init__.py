"""``repro.dynamic`` — dynamic graphs: incremental re-solve under churn.

A deployed matching/MaxIS service does not get a fresh graph per
request: edges churn.  This package makes the anytime/resume protocol
churn-aware:

* :class:`Mutation` / :class:`MutationBatch` — typed graph edits
  (edge insert/delete, weight change, node add), validated and
  normalized where they are applied (:func:`apply_batch`);
* :class:`DynamicInstance` — a base :class:`~repro.api.Instance` plus
  an ordered stream of mutation batches (graph versions);
* :class:`MutationCompat` — the resume policy that relaxes the strict
  fingerprint check for a *declared, verified* batch: it invalidates
  only the mutation's influence region and splices the captured
  simulator state back to re-runnable form
  (``resume(payload, instance=mutated, allow=MutationCompat(batch))``);
* :func:`resolve_incremental` — the driver: re-solve every version
  warm-started from the previous one, paying rounds only for the
  repaired region (the ``churn`` experiment benchmarks this against
  from-scratch solves).

Quickstart::

    from repro.api import Instance
    from repro.dynamic import (DynamicInstance, remove_edge, add_edge,
                               resolve_incremental)

    dyn = DynamicInstance(Instance(g, seed=3), batches=[
        [remove_edge(0, 1)], [add_edge(2, 7)],
    ])
    result = resolve_incremental(dyn, "maxis-layers")
    print(result.final.objective, result.total_repair_rounds)
"""

from .compat import COMPATIBLE_OPS, MutationCompat
from .driver import DynamicSolveReport, DynamicStep, resolve_incremental
from .instance import DynamicInstance
from .mutations import (
    Mutation,
    MutationBatch,
    add_edge,
    add_node,
    apply_batch,
    as_batch,
    graphs_equal,
    influence_region,
    invert_batch,
    remove_edge,
    remove_node,
    set_edge_weight,
    set_node_weight,
)
from .splice import SPLICERS, get_splicer, register_splicer

__all__ = [
    "COMPATIBLE_OPS",
    "DynamicInstance",
    "DynamicSolveReport",
    "DynamicStep",
    "Mutation",
    "MutationBatch",
    "MutationCompat",
    "SPLICERS",
    "add_edge",
    "add_node",
    "apply_batch",
    "as_batch",
    "get_splicer",
    "graphs_equal",
    "influence_region",
    "invert_batch",
    "register_splicer",
    "remove_edge",
    "remove_node",
    "resolve_incremental",
    "set_edge_weight",
    "set_node_weight",
]
