"""``MutationCompat`` — the typed compatible-mutation relaxation of the
strict resume fingerprint check.

``resume(payload, instance=mutated, allow=MutationCompat(batch))``
declares *how* the instance differs from the one the checkpoint was
captured on.  The policy never takes the caller's word for it:

1. the batch's ops must all be compatible (node removal is not — the
   frozen state of every neighbor would be unsound) and the algorithm
   must have a registered state splicer;
2. the pre-mutation graph (passed as ``base=``, or reconstructed by
   inverting a normalized batch) must reproduce the payload's
   budget-agnostic fingerprint — i.e. the checkpoint really was
   captured on ``instance minus batch``;
3. re-applying the batch to that base must yield exactly the target
   instance's graph — no undeclared edits ride along.

Only then is the influence region (``radius`` hops around the touched
nodes, over the union of before/after edges) invalidated and the
captured state spliced back to re-runnable form.  Anything that fails
validation raises :class:`~repro.errors.ResumeMismatch`, exactly like
the strict path it relaxes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union

import networkx as nx

from ..api.instance import Instance
from ..api.serialize import from_jsonable
from ..errors import ResumeMismatch
from .mutations import (
    REMOVE_NODE,
    MutationBatch,
    apply_batch,
    as_batch,
    graphs_equal,
    influence_region,
    invert_batch,
)
from .splice import get_splicer

#: Ops the relaxation accepts.  ``remove_node`` is deliberately absent:
#: deleting a node invalidates every neighbor's frozen view of it, and
#: the sound repair (cascading invalidation of the whole component) is
#: indistinguishable from a fresh solve.
COMPATIBLE_OPS = frozenset({"add_edge", "remove_edge", "set_edge_weight",
                            "set_node_weight", "add_node"})


@dataclass(frozen=True)
class MutationCompat:
    """Resume policy: accept ``batch`` as the fingerprint delta."""

    batch: MutationBatch
    #: The pre-mutation graph (or Instance); reconstructed by inverting
    #: the (normalized) batch when omitted.
    base: Optional[Union[Instance, nx.Graph]] = None
    #: Invalidation radius in hops around the mutation's touched nodes.
    radius: int = 1

    def __post_init__(self):
        object.__setattr__(self, "batch", as_batch(self.batch))

    def reconcile(self, payload: dict, instance: Instance,
                  algorithm: str):
        """Validate the delta and return spliced (re-runnable) state."""

        incompatible = sorted(
            {m.op for m in self.batch if m.op not in COMPATIBLE_OPS}
        )
        if incompatible:
            raise ResumeMismatch(
                f"mutation op(s) {incompatible} are not resume-"
                "compatible: re-solve from scratch"
            )
        splicer = get_splicer(algorithm)
        if splicer is None:
            raise ResumeMismatch(
                f"algorithm {algorithm!r} has no mutation splicer: "
                "the strict fingerprint rule applies"
            )
        base = self.base
        if isinstance(base, Instance):
            base = base.graph
        if base is None:
            base = invert_batch(instance.graph, self.batch)
        from ..api.facade import _resume_fingerprint
        expected = _resume_fingerprint(replace(instance, graph=base))
        if payload["fingerprint"] != expected:
            raise ResumeMismatch(
                "the checkpoint was not captured on this instance minus "
                "the declared batch (base-graph fingerprint mismatch)"
            )
        mutated = apply_batch(base, self.batch)
        if not graphs_equal(mutated, instance.graph):
            raise ResumeMismatch(
                "applying the declared batch to the checkpoint's graph "
                "does not reproduce the target instance (undeclared "
                "edits present)"
            )
        state = from_jsonable(payload["state"])
        if isinstance(state, dict) and state.get("fresh"):
            return state
        region = influence_region(base, instance.graph, self.batch,
                                  self.radius)
        if not region:
            return state
        return splicer(state, instance.graph, region)


__all__ = ["COMPATIBLE_OPS", "MutationCompat"]
