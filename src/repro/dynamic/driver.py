"""``resolve_incremental`` — warm-started re-solve over a churn stream.

Solves version 0 of a :class:`~repro.dynamic.DynamicInstance` once,
then re-solves each mutated version by resuming from the previous
run's checkpoint under a :class:`~repro.dynamic.MutationCompat`
policy, repairing only the mutation's influence region.  Round and
traffic accounting *continue* across versions, so each step's repair
cost is directly the delta of the cumulative round counter — the
number the ``churn`` experiment compares against a from-scratch solve
of the same version.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..api.facade import resume_iter, solve_iter
from ..api.report import SolveReport
from ..core.maxis_layers import default_round_budget
from ..errors import NotResumable
from .compat import MutationCompat
from .instance import DynamicInstance
from .mutations import influence_region


def _drain_keep_payload(stream) -> Tuple[SolveReport, Optional[dict]]:
    """Drain a checkpoint stream, keeping the last resume payload.

    Completed budgeted runs attach their state to the final
    state-carrying checkpoint (not to the report, which only carries
    one when truncated), so the driver harvests it from the stream.
    """

    payload = None
    while True:
        try:
            checkpoint = next(stream)
        except StopIteration as stop:
            return stop.value, payload
        if checkpoint.resume_state is not None:
            payload = checkpoint.resume_state


@dataclass(frozen=True)
class DynamicStep:
    """One version's outcome in an incremental re-solve."""

    version: int
    report: SolveReport
    #: Rounds paid for this version alone (cumulative delta).
    repair_rounds: int
    #: Nodes whose state was invalidated (empty for version 0).
    region: frozenset


@dataclass(frozen=True)
class DynamicSolveReport:
    """Per-version reports of one :func:`resolve_incremental` run."""

    algorithm: str
    steps: Tuple[DynamicStep, ...]

    @property
    def final(self) -> SolveReport:
        return self.steps[-1].report

    @property
    def total_repair_rounds(self) -> int:
        """Rounds paid on mutated versions (the incremental cost)."""

        return sum(step.repair_rounds for step in self.steps[1:])


def resolve_incremental(
    dynamic: DynamicInstance,
    algorithm: str,
    radius: int = 1,
    **options,
) -> DynamicSolveReport:
    """Solve every version of ``dynamic``, warm-starting each from the
    previous version's checkpoint.

    Each version runs under an explicit cumulative round budget
    (previous total + the paper's fresh-run budget for the current
    graph) — budgeted runs are what capture resumable state, and the
    slack guarantees the budget never truncates the repair.  Every
    per-version report is certified on its own (mutated) graph by the
    facade, so feasibility of the incremental solution is checked at
    every step, not just at the end.
    """

    steps: List[DynamicStep] = []
    instance = dynamic.version(
        0, max_rounds=default_round_budget(dynamic.graph(0)))
    report, payload = _drain_keep_payload(
        solve_iter(instance, algorithm, **options))
    steps.append(DynamicStep(version=0, report=report,
                             repair_rounds=report.rounds,
                             region=frozenset()))
    for t, batch in enumerate(dynamic.batches, start=1):
        if payload is None:
            raise NotResumable(
                f"algorithm {algorithm!r} produced no resumable "
                "checkpoint; incremental re-solve needs state capture"
            )
        before, after = dynamic.graph(t - 1), dynamic.graph(t)
        budget = report.rounds + default_round_budget(after)
        instance = dynamic.version(t, max_rounds=budget)
        policy = MutationCompat(batch, base=before, radius=radius)
        report, payload = _drain_keep_payload(
            resume_iter(payload, instance=instance, allow=policy,
                        **options))
        region = influence_region(before, after, batch, radius)
        steps.append(DynamicStep(
            version=t,
            report=report,
            repair_rounds=report.rounds - steps[-1].report.rounds,
            region=frozenset(region),
        ))
    return DynamicSolveReport(algorithm=algorithm, steps=tuple(steps))


__all__ = ["DynamicSolveReport", "DynamicStep", "resolve_incremental"]
