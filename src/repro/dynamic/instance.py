"""``DynamicInstance`` — a base :class:`~repro.api.Instance` plus an
ordered stream of :class:`~repro.dynamic.mutations.MutationBatch`es.

Version ``0`` is the base graph; version ``t`` is the base with the
first ``t`` batches applied.  All batches are validated and normalized
(priors recorded) eagerly at construction, so a mutation referencing a
node absent from the graph it lands on fails here with a typed
:class:`~repro.errors.InvalidMutation`, not later inside a solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

import networkx as nx

from ..api.instance import Instance
from ..errors import InvalidMutation
from .mutations import MutationBatch, apply_batch, as_batch


@dataclass(frozen=True)
class DynamicInstance:
    """A churn workload: base instance + mutation-batch stream."""

    base: Instance
    batches: Tuple[MutationBatch, ...] = ()
    #: Graph snapshots, one per version (filled at construction).
    _graphs: tuple = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        base = self.base
        if isinstance(base, nx.Graph):
            base = Instance(base)
        if not isinstance(base, Instance):
            raise InvalidMutation(
                f"DynamicInstance wraps an Instance, got "
                f"{type(self.base).__name__}"
            )
        object.__setattr__(self, "base", base)
        graphs = [base.graph]
        normalized = []
        for raw in self.batches:
            mutated, batch = apply_batch(graphs[-1], as_batch(raw),
                                         record=True)
            graphs.append(mutated)
            normalized.append(batch)
        object.__setattr__(self, "batches", tuple(normalized))
        object.__setattr__(self, "_graphs", tuple(graphs))

    def __len__(self) -> int:
        return len(self.batches)

    def graph(self, t: int) -> nx.Graph:
        """The graph after the first ``t`` batches (``t=0`` → base)."""

        return self._graphs[t]

    def version(self, t: int, **overrides) -> Instance:
        """The :class:`~repro.api.Instance` for version ``t``; keyword
        overrides (e.g. ``max_rounds=``) are applied on top."""

        return replace(self.base, graph=self._graphs[t], **overrides)


__all__ = ["DynamicInstance"]
