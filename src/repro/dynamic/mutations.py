"""Graph mutations: the dynamic-graph delta vocabulary.

A :class:`Mutation` is one typed edit of a weighted graph — edge
insert/delete, edge/node weight change, node add/remove — and a
:class:`MutationBatch` is an ordered tuple of them, applied atomically
between two solver runs.  :func:`apply_batch` validates every edit
against the graph it targets *before* touching it, so a mutation
referencing an unknown node raises a typed
:class:`~repro.errors.InvalidMutation` instead of a late ``KeyError``
deep in partition/CSR code.

Applied batches are *normalized*: deletions and weight changes record
the prior value they overwrote, which makes a batch invertible
(:func:`invert_batch`) — the compat policy uses this to reconstruct
the pre-mutation graph a resume payload was fingerprinted on without
requiring the caller to keep it around.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Hashable, Iterable, Iterator, Optional, Set, Tuple

import networkx as nx

from ..errors import InvalidMutation
from ..graphs.weights import edge_weight, node_weight

ADD_EDGE = "add_edge"
REMOVE_EDGE = "remove_edge"
SET_EDGE_WEIGHT = "set_edge_weight"
SET_NODE_WEIGHT = "set_node_weight"
ADD_NODE = "add_node"
REMOVE_NODE = "remove_node"

OPS = frozenset({ADD_EDGE, REMOVE_EDGE, SET_EDGE_WEIGHT,
                 SET_NODE_WEIGHT, ADD_NODE, REMOVE_NODE})
_EDGE_OPS = frozenset({ADD_EDGE, REMOVE_EDGE, SET_EDGE_WEIGHT})
_NODE_OPS = frozenset({SET_NODE_WEIGHT, ADD_NODE, REMOVE_NODE})


@dataclass(frozen=True)
class Mutation:
    """One edit: ``op`` plus its endpoint(s), new value and prior value.

    ``prior`` is filled in by :func:`apply_batch` (normalization); user
    code normally leaves it ``None``.
    """

    op: str
    u: Hashable = None
    v: Hashable = None
    weight: Optional[int] = None
    prior: Optional[int] = None

    def __post_init__(self):
        if self.op not in OPS:
            raise InvalidMutation(
                f"unknown mutation op {self.op!r} (expected one of "
                f"{sorted(OPS)})"
            )
        if self.op in _EDGE_OPS and (self.u is None or self.v is None):
            raise InvalidMutation(f"{self.op} needs both endpoints u and v")
        if self.op in _NODE_OPS and self.v is not None:
            raise InvalidMutation(f"{self.op} takes a single node u")
        if self.op in (SET_EDGE_WEIGHT, SET_NODE_WEIGHT) \
                and self.weight is None:
            raise InvalidMutation(f"{self.op} needs the new weight")

    def touched(self) -> Tuple[Hashable, ...]:
        """The node(s) this mutation references."""

        if self.op in _EDGE_OPS:
            return (self.u, self.v)
        return (self.u,)


def add_edge(u, v, weight: Optional[int] = None) -> Mutation:
    return Mutation(ADD_EDGE, u, v, weight=weight)


def remove_edge(u, v) -> Mutation:
    return Mutation(REMOVE_EDGE, u, v)


def set_edge_weight(u, v, weight: int) -> Mutation:
    return Mutation(SET_EDGE_WEIGHT, u, v, weight=weight)


def set_node_weight(u, weight: int) -> Mutation:
    return Mutation(SET_NODE_WEIGHT, u, weight=weight)


def add_node(u, weight: Optional[int] = None) -> Mutation:
    return Mutation(ADD_NODE, u, weight=weight)


def remove_node(u) -> Mutation:
    return Mutation(REMOVE_NODE, u)


@dataclass(frozen=True)
class MutationBatch:
    """An ordered, atomically-applied tuple of :class:`Mutation` edits."""

    mutations: Tuple[Mutation, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "mutations", tuple(self.mutations))
        for m in self.mutations:
            if not isinstance(m, Mutation):
                raise InvalidMutation(
                    f"MutationBatch holds Mutation objects, got "
                    f"{type(m).__name__}"
                )

    def __iter__(self) -> Iterator[Mutation]:
        return iter(self.mutations)

    def __len__(self) -> int:
        return len(self.mutations)

    def touched_nodes(self) -> Set[Hashable]:
        return {node for m in self.mutations for node in m.touched()}


def as_batch(batch) -> MutationBatch:
    """Coerce a MutationBatch / Mutation / iterable of Mutations."""

    if isinstance(batch, MutationBatch):
        return batch
    if isinstance(batch, Mutation):
        return MutationBatch((batch,))
    return MutationBatch(tuple(batch))


def _require_node(graph: nx.Graph, node, index: int, op: str) -> None:
    if node not in graph:
        raise InvalidMutation(
            f"mutation #{index} ({op}) references node {node!r}, which "
            "is absent from the base graph"
        )


def _apply_one(graph: nx.Graph, m: Mutation, index: int) -> Mutation:
    """Validate + apply one mutation in place; return it normalized."""

    if m.op == ADD_NODE:
        if m.u in graph:
            raise InvalidMutation(
                f"mutation #{index} (add_node) re-adds existing node "
                f"{m.u!r}"
            )
        graph.add_node(m.u)
        if m.weight is not None:
            graph.nodes[m.u]["weight"] = m.weight
        return m
    _require_node(graph, m.u, index, m.op)
    if m.op == REMOVE_NODE:
        prior = node_weight(graph, m.u)
        graph.remove_node(m.u)
        return replace(m, prior=prior)
    if m.op == SET_NODE_WEIGHT:
        prior = node_weight(graph, m.u)
        graph.nodes[m.u]["weight"] = m.weight
        return replace(m, prior=prior)
    _require_node(graph, m.v, index, m.op)
    if m.u == m.v:
        raise InvalidMutation(
            f"mutation #{index} ({m.op}) is a self-loop on {m.u!r}"
        )
    has_edge = graph.has_edge(m.u, m.v)
    if m.op == ADD_EDGE:
        if has_edge:
            raise InvalidMutation(
                f"mutation #{index} (add_edge) re-inserts existing edge "
                f"({m.u!r}, {m.v!r})"
            )
        graph.add_edge(m.u, m.v)
        if m.weight is not None:
            graph.edges[m.u, m.v]["weight"] = m.weight
        return m
    if not has_edge:
        raise InvalidMutation(
            f"mutation #{index} ({m.op}) targets missing edge "
            f"({m.u!r}, {m.v!r})"
        )
    prior = edge_weight(graph, m.u, m.v)
    if m.op == REMOVE_EDGE:
        graph.remove_edge(m.u, m.v)
    else:  # SET_EDGE_WEIGHT
        graph.edges[m.u, m.v]["weight"] = m.weight
    return replace(m, prior=prior)


def apply_batch(graph: nx.Graph, batch,
                record: bool = False):
    """Apply ``batch`` to a *copy* of ``graph``.

    Returns the mutated copy, or ``(copy, normalized_batch)`` with
    ``record=True`` where the normalized batch carries the prior
    weights the edits overwrote (making it invertible).  Every edit is
    validated against the graph state it meets — unknown nodes, missing
    or duplicate edges raise :class:`~repro.errors.InvalidMutation`.
    """

    batch = as_batch(batch)
    out = graph.copy()
    normalized = tuple(_apply_one(out, m, i)
                       for i, m in enumerate(batch))
    if record:
        return out, MutationBatch(normalized)
    return out


def invert_batch(mutated: nx.Graph, batch) -> nx.Graph:
    """Reconstruct the pre-batch graph from the post-batch one.

    Requires a *normalized* batch (priors recorded) for deletions and
    weight changes; raises :class:`~repro.errors.InvalidMutation` when
    a prior is missing (pass the base graph explicitly instead).
    """

    batch = as_batch(batch)
    inverse = []
    for i, m in enumerate(batch):
        if m.op == ADD_EDGE:
            inverse.append(Mutation(REMOVE_EDGE, m.u, m.v))
        elif m.op == ADD_NODE:
            inverse.append(Mutation(REMOVE_NODE, m.u))
        elif m.op in (REMOVE_EDGE, REMOVE_NODE, SET_EDGE_WEIGHT,
                      SET_NODE_WEIGHT):
            if m.prior is None and m.op != REMOVE_EDGE:
                raise InvalidMutation(
                    f"mutation #{i} ({m.op}) carries no prior value: "
                    "only a normalized batch (from apply_batch/"
                    "DynamicInstance) is invertible — pass base= to "
                    "MutationCompat instead"
                )
            if m.op == REMOVE_EDGE:
                inverse.append(Mutation(ADD_EDGE, m.u, m.v, weight=m.prior))
            elif m.op == REMOVE_NODE:
                inverse.append(Mutation(ADD_NODE, m.u, weight=m.prior))
            elif m.op == SET_EDGE_WEIGHT:
                inverse.append(Mutation(SET_EDGE_WEIGHT, m.u, m.v,
                                        weight=m.prior))
            else:
                inverse.append(Mutation(SET_NODE_WEIGHT, m.u,
                                        weight=m.prior))
    return apply_batch(mutated, MutationBatch(tuple(reversed(inverse))))


def graphs_equal(a: nx.Graph, b: nx.Graph) -> bool:
    """Structural + weight equality (node set, node weights, edge set,
    edge weights) — the identity the compat policy verifies."""

    if set(a.nodes) != set(b.nodes):
        return False
    if any(node_weight(a, v) != node_weight(b, v) for v in a.nodes):
        return False

    def keyed(g):
        return {frozenset((u, v)): edge_weight(g, u, v) for u, v in g.edges}

    return keyed(a) == keyed(b)


def influence_region(base: nx.Graph, target: nx.Graph, batch,
                     radius: int = 1) -> Set[Hashable]:
    """Nodes within ``radius`` hops (over the union of the before/after
    edge sets) of any node a mutation touches.

    This is the invalidation region: state of nodes inside it is
    spliced back to re-runnable form, everything outside keeps its
    captured state verbatim.
    """

    batch = as_batch(batch)
    adjacency: dict = {}
    for g in (base, target):
        for u, v in g.edges:
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
    region = set(batch.touched_nodes())
    frontier = set(region)
    for _ in range(max(0, radius)):
        frontier = {n for v in frontier
                    for n in adjacency.get(v, ())} - region
        if not frontier:
            break
        region |= frontier
    return region


__all__ = [
    "ADD_EDGE", "ADD_NODE", "Mutation", "MutationBatch", "OPS",
    "REMOVE_EDGE", "REMOVE_NODE", "SET_EDGE_WEIGHT", "SET_NODE_WEIGHT",
    "add_edge", "add_node", "apply_batch", "as_batch", "graphs_equal",
    "influence_region", "invert_batch", "remove_edge", "remove_node",
    "set_edge_weight", "set_node_weight",
]
