"""Per-algorithm state splicers for the compatible-mutation resume path.

A splicer takes a decoded resume ``state`` (the algorithm's raw
checkpoint payload), the *mutated* graph, and the invalidation region
computed by :func:`~repro.dynamic.mutations.influence_region`, and
rewrites the state so the solver can continue on the new graph:
nodes inside the region are reverted to re-runnable form (fresh
program state, stable per-node RNG stream), everything outside keeps
its captured state — and its already-paid rounds — verbatim.

Splicers own their input: they mutate the decoded state in place and
return it.  Registry is keyed by registry algorithm name; algorithms
without a splicer stay under the strict fingerprint rule (a mutated
graph raises :class:`~repro.errors.ResumeMismatch`).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Set

import networkx as nx

from ..core.maxis_layers import NOT_IN_IS, MaxISLayersProgram
from ..errors import ResumeMismatch
from ..graphs.weights import node_weight

SPLICERS: Dict[str, Callable] = {}


def register_splicer(name: str):
    def decorator(fn):
        SPLICERS[name] = fn
        return fn
    return decorator


def get_splicer(name: str):
    return SPLICERS.get(name)


@register_splicer("maxis-layers")
def splice_maxis_layers(state: dict, graph: nx.Graph,
                        region: Set[Hashable]) -> dict:
    """Algorithm 2: revive the region, keep the frozen stack.

    Frozen decisions (halted nodes outside the region) stand.  Region
    nodes are re-examined: one adjacent to a frozen in-set node is
    force-halted ``NotInIS`` (it can never join), every other one
    restarts as a fresh ``active`` node with full weight.  A revived
    node's ``active_neighbors`` excludes frozen candidates — they
    already ran their local-ratio step and must not be re-entered into
    a wait cycle (their eventual join/removed broadcast still reaches
    the revived node, so independence is preserved).
    """

    sim = state.get("sim")
    if sim is None:
        raise ResumeMismatch(
            "payload carries no simulator state to splice (capture "
            "happens on budgeted runs only)"
        )
    local = {v for v in region if v in graph}
    halted = sim["halted"]
    live = sim["live"]
    chosen = set(state["chosen"])
    frozen_chosen = {v for v in chosen if v not in local}
    for v in local:
        halted.pop(v, None)
        live.pop(v, None)
    for v in list(live):
        if v not in graph:
            raise ResumeMismatch(
                f"node {v!r} left the graph outside the declared "
                "mutation batch"
            )
    # The protocol's 3-round phases assume revived nodes start at a
    # phase boundary (info broadcast).  Mid-phase captures can only be
    # spliced when no third-party live state would be shifted.
    round_ = sim["round"]
    if round_ % 3:
        if live:
            raise ResumeMismatch(
                "cannot splice a mid-phase capture while other nodes "
                "are still live (truncate at a phase boundary)"
            )
        round_ += 3 - round_ % 3
    forced, revived = set(), set()
    for v in local:
        if any(u in frozen_chosen for u in graph[v]):
            forced.add(v)
        else:
            revived.add(v)
    active = MaxISLayersProgram.ACTIVE
    for v in forced:
        halted[v] = NOT_IN_IS
        # Stand in for the "removed" broadcast a live node would have
        # sent: nobody may keep waiting on a silently-halted node.
        for u in graph[v]:
            entry = live.get(u)
            if entry is not None:
                prog = entry["program"]
                prog["active_neighbors"].discard(v)
                prog["wait_set"].discard(v)
                prog["neighbor_layers"].pop(v, None)
    for v in revived:
        neighbors = {
            u for u in graph[v]
            if u in revived
            or (u in live and live[u]["program"]["status"] == active)
        }
        live[v] = {
            "sleeping": False,
            "rng": None,  # fresh stable per-node stream
            "program": {
                "weight": node_weight(graph, v),
                "status": active,
                "active_neighbors": neighbors,
                "wait_set": set(),
                "neighbor_layers": {},
                "bid": None,
                "eligible": False,
            },
        }
    sim["in_flight"] = [
        message for message in sim["in_flight"]
        if message[0] not in local and message[1] not in local
    ]
    sim["round"] = round_
    state["rounds"] = max(state["rounds"], round_)
    state["chosen"] = frozen_chosen
    state["weight"] = sum(node_weight(graph, v) for v in frozen_chosen)
    return state


@register_splicer("matching-proposal")
def splice_matching_proposal(state: dict, graph: nx.Graph,
                             region: Set[Hashable]) -> dict:
    """Lemma B.14: unmatch the region, re-run repetitions on the pool.

    Matched edges with an endpoint in the region (or no longer present
    in the graph) are dissolved; both endpoints — plus their unmatched
    neighbors, so a released node can re-pair locally — form the new
    surviving pool, and the repetition counter rewinds to zero so the
    full bipartition schedule runs again over just that pool.  Rounds,
    ledger and the split-RNG stream continue where they left off.
    """

    local = {v for v in region if v in graph}
    matching = set(state["matching"])
    kept, released = set(), set()
    for edge in matching:
        u, v = tuple(edge)
        if u in local or v in local or not graph.has_edge(u, v):
            released.update((u, v))
        else:
            kept.add(edge)
    matched = {v for edge in kept for v in edge}
    pool = {v for v in (local | released) if v in graph}
    pool |= {u for v in pool for u in graph[v] if u not in matched}
    pool -= matched
    state["matching"] = kept
    state["remaining"] = pool
    state["repetition"] = 0
    return state


__all__ = ["SPLICERS", "get_splicer", "register_splicer",
           "splice_maxis_layers", "splice_matching_proposal"]
