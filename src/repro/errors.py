"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single except clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SimulationError(ReproError):
    """A distributed simulation could not proceed (deadlock, overrun, ...)."""


class RoundLimitExceeded(SimulationError):
    """A protocol did not terminate within its round budget.

    Attributes
    ----------
    rounds:
        The number of rounds that were executed before giving up.
    pending:
        Node identifiers that had not halted when the budget ran out.
    """

    def __init__(self, rounds: int, pending: tuple = ()):  # noqa: D401
        self.rounds = rounds
        self.pending = tuple(pending)
        message = f"protocol did not terminate within {rounds} rounds"
        if self.pending:
            message += f" ({len(self.pending)} nodes still active)"
        super().__init__(message)


class BandwidthViolation(SimulationError):
    """A message exceeded the CONGEST per-edge bandwidth in strict mode."""

    def __init__(self, src, dst, bits: int, bandwidth: int):
        self.src = src
        self.dst = dst
        self.bits = bits
        self.bandwidth = bandwidth
        super().__init__(
            f"message {src}->{dst} uses {bits} bits, exceeding the "
            f"CONGEST bandwidth of {bandwidth} bits"
        )


class MPCCapacityError(SimulationError):
    """A machine's per-round communication exceeded its O(S) budget.

    The MPC runtime enforces sublinearity as a hard invariant: in every
    round, each machine may send plus receive at most
    ``capacity = ceil(capacity_factor * n**delta)`` cross-machine
    messages.  When adaptive sparsification cannot (or may not) bring a
    round's traffic under that cap, the shuffle raises this error
    instead of silently recording a violation.

    Attributes
    ----------
    machine:
        Index of the overloaded machine.
    round_index:
        MPC round in which the overload occurred.
    load:
        Cross-machine messages the machine would have sent + received.
    capacity:
        The per-round message budget that was exceeded.
    """

    def __init__(self, machine: int, round_index: int, load: int,
                 capacity: int):
        self.machine = machine
        self.round_index = round_index
        self.load = load
        self.capacity = capacity
        super().__init__(
            f"machine {machine} would move {load} messages in round "
            f"{round_index}, exceeding its sublinear capacity of "
            f"{capacity}"
        )


class InvalidInstance(ReproError):
    """An input graph/weighting does not satisfy a precondition."""


class InvalidMutation(InvalidInstance):
    """A graph mutation cannot be applied to the graph it targets.

    Raised where mutations are *applied* — referencing a node absent
    from the base graph, deleting an edge that does not exist,
    inserting one that already does — instead of letting a bare
    ``KeyError`` surface later from partition/CSR code.
    """


class ResumeError(ReproError):
    """A checkpointed run could not be resumed."""


class NotResumable(ResumeError):
    """The source of a resume carries no usable checkpoint state.

    Raised when resuming a ``status="complete"`` report (there is
    nothing left to run), a report/checkpoint without a
    ``resume_state`` payload, a malformed payload, or when the new
    round budget is already below the checkpoint's consumed rounds.
    """


class ResumeMismatch(ResumeError):
    """A resume payload does not match the instance/algorithm it was
    asked to continue on.

    The payload pins the algorithm name and a budget-agnostic
    instance fingerprint (graph structure, weights, model, ε, seed);
    resuming against anything else would silently break the
    "resume ≡ never-stopped" contract, so it raises instead.
    """


class TransientFault(ReproError):
    """A failure worth retrying (the retry policies' marker class).

    The fault-injection plane raises this at its ``worker.transient``
    site, and user algorithm code may raise it (or a subclass) to opt a
    failure into the bounded-retry path of the solver service and
    ``solve_many``.  Anything else fails fast, as it always has.
    """


class FaultPlanError(ReproError):
    """A fault-injection plan is malformed (unknown site, bad rule,
    unreadable ``--fault-plan`` file)."""


class AlgorithmContractViolation(ReproError):
    """An algorithm produced output that violates its own guarantees.

    This is raised by the validation helpers (used heavily in tests) when,
    for example, an "independent set" contains an edge or a "matching"
    contains two edges sharing an endpoint.
    """
