"""Experiment registry, runner and versioned benchmark artifacts.

This package is the reproduction's experiment subsystem: every
benchmark — the regenerated Table 1, the figures, the ablations and
the CI smoke gate — is a declarative
:class:`~repro.experiments.spec.ExperimentSpec` registered in
:mod:`~repro.experiments.catalog` and executed by the shared
:class:`~repro.experiments.runner.Runner`.  The three consumers are:

* ``python -m repro bench <experiment>`` — the CLI entry point; lists,
  runs and validates experiments and writes artifacts;
* ``benchmarks/bench_*.py`` — thin pytest declarations (one line per
  experiment) that run the same specs under pytest-benchmark;
* CI — the smoke-bench job runs ``python -m repro bench smoke --json -``
  and fails on schema violations or regressions past recorded bounds.

Measurement adapters sit on the :mod:`repro.api` facade: every adapter
that *runs* an algorithm dispatches through :func:`repro.api.solve`
against the algorithm registry, so a new algorithm needs one registry
entry plus (optionally) one small adapter that maps its
:class:`~repro.api.SolveReport` onto the measure names a spec wants —
no bespoke seed/ε/oracle plumbing (see
:mod:`repro.experiments.measurements`).

Artifact schema (``repro-bench/1``)
-----------------------------------
Running an experiment produces a single JSON document, canonically
written to ``BENCH_<name>.json``.  The top level carries ``schema``
(the version tag consumers must verify), ``experiment``/``title``/
``description`` metadata, a ``sections`` list and a ``summary``.  Each
section records its ``trials`` (one record per ``(grid cell, seed)``
pair: the cell's graph spec and parameters, the seed, the
measurement's ``measures`` dict and an optional ``NetworkMetrics``
snapshot), the reduced table ``rows`` consumed by
:func:`repro.analysis.render_artifact`, and the outcome of every
``check`` — the paper's shape claims, recorded as pass/fail instead of
aborting the run.  The ``summary`` block repeats the section/trial/
check counts so a truncated artifact cannot validate.

Determinism: with default runner options the same spec and seeds
produce a **byte-identical** artifact (sorted keys, no timestamps, no
host data) — this is what lets CI diff artifacts across commits.  The
contract extends to parallel execution: ``--workers N`` fans trials
across the shared batch engine but merges them in spec order, so the
artifact is byte-identical at any worker count (CI diffs a
``--workers 2`` smoke run against the serial one).  Wall-clock
measurements only appear under the optional top-level ``timing`` block
when explicitly requested (``--timing``; add ``--repeat N`` for
p50/p95 percentiles over N executions).  The ``perf`` experiment is
the deliberate exception — its measures *are* wall-clock numbers — and
is recorded, never byte-diffed.

How CI consumes it
------------------
The smoke-bench job runs the tiny ``smoke`` experiment, writes the
artifact, and gates on three things: the runner's exit status (any
failed check — e.g. an approximation ratio regressing past the
recorded bounds in ``catalog.SMOKE_BOUNDS``, or the pinned simulator
message/bit counters drifting — fails the job), the structural
validator (:func:`~repro.experiments.artifact.validate_artifact`), and
the determinism contract (two runs must serialize identically).
"""

from .artifact import (
    SCHEMA,
    artifact_path,
    artifact_to_json,
    load_artifact,
    metrics_snapshot,
    validate_artifact,
    write_artifact,
)
from .diff import diff_artifacts, render_diff
from .registry import (
    UnknownExperiment,
    build_graph,
    get_experiment,
    get_measurement,
    list_experiments,
    list_measurements,
    register_experiment,
    register_graph_family,
    register_measurement,
)
from .runner import Runner, run_experiment
from .spec import Check, ExperimentSpec, Section

__all__ = [
    "SCHEMA",
    "Check",
    "ExperimentSpec",
    "Runner",
    "Section",
    "UnknownExperiment",
    "artifact_path",
    "artifact_to_json",
    "build_graph",
    "diff_artifacts",
    "get_experiment",
    "get_measurement",
    "list_experiments",
    "list_measurements",
    "load_artifact",
    "metrics_snapshot",
    "register_experiment",
    "register_graph_family",
    "register_measurement",
    "render_diff",
    "run_experiment",
    "validate_artifact",
    "write_artifact",
]
