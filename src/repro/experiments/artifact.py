"""Versioned JSON benchmark artifacts (``BENCH_<name>.json``).

The artifact is the machine-readable output of one experiment run.  Its
schema is versioned by the ``"schema"`` field (currently
``"repro-bench/1"``); consumers — ``repro.analysis`` table rendering
and the CI smoke-bench gate — must reject artifacts whose schema they
do not understand.

Schema ``repro-bench/1``::

    {
      "schema": "repro-bench/1",
      "experiment": "<name>",
      "title": "...",
      "description": "...",
      "sections": [
        {
          "name": "...", "title": "...", "measurement": "...",
          "render": "table" | "series",
          "render_params": {...},
          "trials": [
            {"cell": <grid index>, "params": {...}, "seed": <int>,
             "measures": {...},          # adapter output, JSON scalars
             "metrics": {...} | null}    # NetworkMetrics snapshot
          ],
          "rows": [{...}, ...],          # reduced table rows
          "checks": [
            {"name": "...", "passed": true|false, "detail": "..."}
          ]
        }
      ],
      "summary": {"sections": N, "trials": N,
                  "checks_total": N, "checks_failed": N, "passed": bool},
      "timing": {...}    # OPTIONAL, wall-clock; never emitted by default
    }

Determinism contract: with the default runner options (``timing``
off), the same spec and seeds produce a **byte-identical** JSON
artifact across processes and platforms — no timestamps, no host
information, keys always sorted.  Wall-clock data, being inherently
non-deterministic, only appears when explicitly requested and lives in
the separate top-level ``"timing"`` block.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

SCHEMA = "repro-bench/1"

#: Keys every section record must carry.
_SECTION_KEYS = ("name", "title", "measurement", "render", "trials",
                 "rows", "checks")
_TRIAL_KEYS = ("cell", "params", "seed", "measures")
_CHECK_KEYS = ("name", "passed", "detail")


def artifact_path(name: str, directory: Union[str, Path, None] = None) -> Path:
    """The canonical artifact filename for experiment ``name``."""

    base = Path(directory) if directory is not None else Path(".")
    return base / f"BENCH_{name}.json"


def artifact_to_json(artifact: Dict) -> str:
    """Serialize deterministically (sorted keys, 2-space indent, LF)."""

    return json.dumps(artifact, indent=2, sort_keys=True,
                      allow_nan=False) + "\n"


def write_artifact(artifact: Dict,
                   path: Union[str, Path, None] = None) -> Path:
    """Write ``artifact`` to ``path`` (default ``BENCH_<name>.json``)."""

    if path is None:
        path = artifact_path(artifact["experiment"])
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(artifact_to_json(artifact), encoding="utf-8")
    return path


def load_artifact(path: Union[str, Path]) -> Dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def validate_artifact(artifact: object) -> List[str]:
    """Return a list of schema problems (empty means valid).

    This is the structural gate CI runs against the smoke artifact: it
    checks the schema version, the shape of every section/trial/check
    record, and that the summary's counters are consistent with the
    section contents (so a truncated or hand-edited artifact cannot
    sneak past the gate).
    """

    problems: List[str] = []
    if not isinstance(artifact, dict):
        return [f"artifact must be a JSON object, got {type(artifact).__name__}"]
    if artifact.get("schema") != SCHEMA:
        problems.append(
            f"schema mismatch: expected {SCHEMA!r}, got "
            f"{artifact.get('schema')!r}"
        )
    if not isinstance(artifact.get("experiment"), str):
        problems.append("missing/invalid 'experiment' name")
    sections = artifact.get("sections")
    if not isinstance(sections, list) or not sections:
        problems.append("'sections' must be a non-empty list")
        sections = []
    trials_seen = 0
    checks_seen = 0
    checks_failed = 0
    for i, section in enumerate(sections):
        where = f"sections[{i}]"
        if not isinstance(section, dict):
            problems.append(f"{where} is not an object")
            continue
        for key in _SECTION_KEYS:
            if key not in section:
                problems.append(f"{where} missing key {key!r}")
        for j, trial in enumerate(section.get("trials", ())):
            if not isinstance(trial, dict):
                problems.append(f"{where}.trials[{j}] is not an object")
                continue
            trials_seen += 1
            for key in _TRIAL_KEYS:
                if key not in trial:
                    problems.append(f"{where}.trials[{j}] missing {key!r}")
        rows = section.get("rows", ())
        if not isinstance(rows, list):
            problems.append(f"{where}.rows must be a list")
        for j, check in enumerate(section.get("checks", ())):
            if not isinstance(check, dict):
                problems.append(f"{where}.checks[{j}] is not an object")
                continue
            checks_seen += 1
            for key in _CHECK_KEYS:
                if key not in check:
                    problems.append(f"{where}.checks[{j}] missing {key!r}")
            if check.get("passed") is False:
                checks_failed += 1
            elif check.get("passed") is not True:
                problems.append(
                    f"{where}.checks[{j}].passed must be a boolean"
                )
    summary = artifact.get("summary")
    if not isinstance(summary, dict):
        problems.append("missing 'summary' object")
    else:
        expected = {
            "sections": len(sections),
            "trials": trials_seen,
            "checks_total": checks_seen,
            "checks_failed": checks_failed,
            "passed": checks_failed == 0,
        }
        for key, value in expected.items():
            if summary.get(key) != value:
                problems.append(
                    f"summary.{key} is {summary.get(key)!r}, "
                    f"expected {value!r}"
                )
    return problems


def metrics_snapshot(metrics) -> Optional[Dict]:
    """Serialize a :class:`NetworkMetrics` into a stable JSON object."""

    if metrics is None:
        return None
    return {
        "rounds": metrics.rounds,
        "messages": metrics.messages,
        "bits": metrics.bits,
        "max_bits_per_edge_round": metrics.max_bits_per_edge_round,
        "violations": metrics.violations,
        "round_breakdown": {
            str(label): rounds
            for label, rounds in sorted(metrics.round_breakdown.items())
        },
    }
