"""pytest-benchmark glue: run registered experiments under pytest.

``benchmarks/bench_*.py`` files declare exactly one line each::

    test_table1 = experiment_bench("table1")

which expands into a test parameterized over the experiment's
sections.  Every section runs through the shared
:class:`~repro.experiments.runner.Runner`, prints its rendered table
(visible with ``pytest -s``), and fails if any of the section's
registered checks — the paper's shape claims — fail.

``run_once`` is the shared single-execution benchmark helper the old
``benchmarks/_helpers.py`` used to carry: the paper's metric is
synchronous rounds, not wall-clock, so one measured run is enough for
timing context.
"""

from __future__ import annotations

from ..analysis import render_section_result
from .registry import get_experiment
from .runner import Runner


def run_once(benchmark, fn):
    """Benchmark ``fn`` with a single measured execution and return its
    result."""

    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def experiment_bench(name: str):
    """Build a pytest test function covering every section of ``name``."""

    import pytest

    spec = get_experiment(name)

    @pytest.mark.parametrize(
        "section", [section.name for section in spec.sections]
    )
    def bench(benchmark, section):
        runner = Runner(spec)
        record = run_once(benchmark, lambda: runner.run_section(section))
        print()
        print(render_section_result(record))
        failed = [
            f"{check['name']}: {check['detail']}"
            for check in record["checks"] if not check["passed"]
        ]
        assert not failed, "\n".join(failed)

    bench.__name__ = f"test_{name}"
    bench.__doc__ = spec.description
    return bench
