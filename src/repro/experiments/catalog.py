"""The experiment catalog: every benchmark as a declarative spec.

This module is the single source of truth for the paper's evaluation
artifacts.  Each ``benchmarks/bench_*.py`` file used to carry its own
copy of the workload construction, seed sweeps and shape assertions;
those now live here as :class:`~repro.experiments.spec.ExperimentSpec`
declarations executed by the shared
:class:`~repro.experiments.runner.Runner`.  The pytest benchmark suite
and the ``python -m repro bench`` CLI both run the specs registered
below.

The ``smoke`` experiment at the bottom is the CI gate: a tiny grid
(seconds, not minutes) whose checks pin recorded approximation-ratio
bounds and exact simulator counters, so a regression in either fails
the pipeline.
"""

from __future__ import annotations

from ..analysis import growth_exponent, pearson
from ..graphs import (
    bipartite_regular_graph,
    complete_graph,
    gnp_graph,
    grid_graph,
    layered_graph,
    power_law_graph,
    random_bipartite_graph,
    random_regular_graph,
    sparse_gnp_graph,
    star_graph,
)
from ..mis import delta_plus_one_coloring
from .registry import register_experiment, register_graph_family
from .spec import Check, ExperimentSpec, Section

from . import measurements  # noqa: F401  (registers adapters on import)

# ----------------------------------------------------------------------
# graph families
# ----------------------------------------------------------------------
register_graph_family("gnp")(gnp_graph)
register_graph_family("random_regular")(random_regular_graph)
register_graph_family("complete")(complete_graph)
register_graph_family("star")(star_graph)
register_graph_family("grid")(grid_graph)
register_graph_family("power_law")(power_law_graph)
register_graph_family("layered")(layered_graph)
register_graph_family("random_bipartite")(random_bipartite_graph)
register_graph_family("bipartite_regular")(bipartite_regular_graph)
register_graph_family("sparse_gnp")(sparse_gnp_graph)


@register_graph_family("layered_geometric")
def _layered_geometric(layers: int, width: int = 6, seed: int = 1,
                       p: float = 1.0):
    """Layered chain with weight ``2^layer`` — the serializing workload
    that realizes Algorithm 2's log W staircase.  ``p < 1`` keeps the
    inter-layer bipartite edges sparse for the large perf workloads."""

    g = layered_graph(layers, width, seed=seed, p=p)
    for v, data in g.nodes(data=True):
        g.nodes[v]["weight"] = 2 ** data["layer"]
    return g


@register_graph_family("serializing_clique")
def _serializing_clique(degree: int):
    """A (Δ+1)-clique whose weights descend with the greedy coloring,
    forcing Algorithm 3 through exactly Δ+1 removal sweeps."""

    g = complete_graph(degree + 1)
    coloring = delta_plus_one_coloring(g)
    for v in g.nodes:
        g.nodes[v]["weight"] = 2 ** (coloring.palette - coloring.colors[v])
    return g


@register_graph_family("figure1")
def _figure1_instance():
    """The curated Figure 1 instance: a layered bipartite graph with a
    partial matching and multiple overlapping length-3 augmenting
    paths.  The matching ships in ``g.graph["matching"]``."""

    import networkx as nx

    g = nx.Graph()
    a_nodes = [f"a{i}" for i in range(5)]
    b_nodes = [f"b{i}" for i in range(5)]
    for a in a_nodes:
        g.add_node(a, side="A")
    for b in b_nodes:
        g.add_node(b, side="B")
    g.add_edges_from([
        # free A-nodes a0, a4 fan into the matched middle
        ("a0", "b0"), ("a0", "b1"), ("a4", "b1"), ("a4", "b2"),
        # matched pairs: (a1, b0), (a2, b1), (a3, b2)
        ("a1", "b0"), ("a2", "b1"), ("a3", "b2"),
        # matched A-nodes fan out to the free B-nodes b3, b4
        ("a1", "b3"), ("a1", "b4"), ("a2", "b3"), ("a3", "b4"),
    ])
    g.graph["matching"] = [("a1", "b0"), ("a2", "b1"), ("a3", "b2")]
    return g


# ----------------------------------------------------------------------
# grid/reduce/check helpers
# ----------------------------------------------------------------------
def _gnp(n, p, seed, node_w=None, edge_w=None):
    spec = {"family": "gnp", "args": {"n": n, "p": p, "seed": seed}}
    if node_w:
        spec["node_weights"] = node_w
    if edge_w:
        spec["edge_weights"] = edge_w
    return spec


def _sparse_gnp(n, p, seed, node_w=None):
    """Large sparse G(n, p) via the O(n + m) geometric sampler."""

    spec = {"family": "sparse_gnp", "args": {"n": n, "p": p, "seed": seed}}
    if node_w:
        spec["node_weights"] = node_w
    return spec


def _group_by_cell(trials):
    """Group trial records by grid cell, preserving first-seen order."""

    order, by_cell = [], {}
    for trial in trials:
        if trial["cell"] not in by_cell:
            order.append(trial["cell"])
            by_cell[trial["cell"]] = []
        by_cell[trial["cell"]].append(trial)
    return [by_cell[cell] for cell in order]


def _mean_over_seeds(*value_keys):
    """Reduce: one row per grid cell, averaging ``value_keys`` over the
    seed sweep and keeping the cell's params as identifying columns."""

    def reduce(trials):
        rows = []
        for group in _group_by_cell(trials):
            row = dict(group[0]["params"])
            for key in value_keys:
                values = [t["measures"][key] for t in group]
                row[key] = sum(values) / len(values)
            rows.append(row)
        return rows

    return reduce


def _rows_check(name, fn, description=""):
    return Check(name=name, fn=fn, description=description)


def _per_row(name, predicate, message, description=""):
    """Check factory: ``predicate(row)`` must hold for every row."""

    def fn(rows):
        for row in rows:
            assert predicate(row), message.format(**row)

    return Check(name=name, fn=fn, description=description)


def _growth_check(name, x_key, y_key, below, description=""):
    def fn(rows):
        exponent = growth_exponent([r[x_key] for r in rows],
                                   [r[y_key] for r in rows])
        assert exponent < below, (
            f"{y_key} grows like {x_key}^{exponent:.2f} "
            f"(allowed < {below})"
        )

    return Check(name=name, fn=fn, description=description)


def _pearson_check(name, x_key, y_key, above, description=""):
    def fn(rows):
        correlation = pearson([r[x_key] for r in rows],
                              [r[y_key] for r in rows])
        assert correlation > above, (
            f"corr({x_key}, {y_key}) = {correlation:.3f} "
            f"(required > {above})"
        )

    return Check(name=name, fn=fn, description=description)


def _series_rows(x_name, y_name, offset=0):
    """Reduce: expand the single trial's ``series`` measure to rows."""

    def reduce(trials):
        series = trials[0]["measures"].get("series")
        if series is None:
            series = trials[0]["measures"]["top_layer_series"]
        return [
            {x_name: i + offset, y_name: value}
            for i, value in enumerate(series)
        ]

    return reduce


def _series_values(rows, y_key):
    return [row[y_key] for row in rows]


# ======================================================================
# T1 — Table 1 (the paper's results table)
# ======================================================================
def _t1_1b_check(rows):
    rounds = [r["rounds"] for r in rows]
    assert max(rounds) <= 4 * max(1, rounds[0]), (
        f"rounds {rounds} not flat in W on the typical sparse workload"
    )


def _t1_4b_reduce(trials):
    order, by_delta = [], {}
    for trial in trials:
        delta = trial["params"]["delta"]
        if delta not in by_delta:
            order.append(delta)
            by_delta[delta] = {}
        by_delta[delta][f"rounds_k{trial['params']['k']}"] = (
            trial["measures"]["rounds"]
        )
    return [{"delta": d, **by_delta[d]} for d in order]


def _t1_4b_check(rows):
    for k in (2, 3, 4):
        exponent = growth_exponent([r["delta"] for r in rows],
                                   [r[f"rounds_k{k}"] for r in rows])
        assert exponent < 0.8, f"K={k}: rounds grow like Δ^{exponent:.2f}"


def _one_eps_guarantee(rows):
    for row in rows:
        effective = row["found"] + row["deactivated"]
        assert (1 + row["eps"]) * effective >= row["opt"], (
            f"(1+ε) guarantee violated: found={row['found']} "
            f"deactivated={row['deactivated']} opt={row['opt']}"
        )


def _t1_summary_reduce(trials):
    rows = []
    for trial in trials:
        measures = trial["measures"]
        label = trial["params"]
        if "ratio" in measures:
            ratio = measures["ratio"]
        else:  # the (1+ε) row: effective cardinality vs optimum
            effective = measures["found"] + measures["deactivated"]
            ratio = measures["opt"] / max(1, effective)
        bound = label["bound"]
        if bound == "delta":
            bound = measures["delta"]
        rounds = measures.get("rounds", measures.get("accounted"))
        rows.append({"row": label["row"], "bound": bound,
                     "measured_ratio": ratio, "rounds": rounds})
    return rows


_T1_SUMMARY_NODE_G = _gnp(18, 0.25, 1, node_w={"max_weight": 64, "seed": 2})
_T1_SUMMARY_EDGE_G = _gnp(18, 0.25, 1, edge_w={"max_weight": 64, "seed": 2})

TABLE1 = register_experiment(ExperimentSpec(
    name="table1",
    title="Table 1 (regenerated): bounds vs measured",
    description=(
        "Each row of the paper's Table 1 is an algorithm with an "
        "approximation factor and a round complexity; every section "
        "measures one row's approximation and round scaling on "
        "concrete workloads, serializing (worst-case shape) and "
        "typical."
    ),
    tags=("table1", "paper"),
    sections=(
        Section(
            name="t1_1a",
            title="T1.1a: Algorithm 2 rounds vs W (serializing layered "
                  "chain)",
            measurement="maxis_layers",
            grid=tuple(
                {"graph": {"family": "layered_geometric",
                           "args": {"layers": layers, "width": 6,
                                    "seed": 1}},
                 "label": {"W": 2 ** (layers - 1), "log2W": layers - 1}}
                for layers in (2, 4, 8, 12, 16)
            ),
            seeds=(0, 1, 2),
            reduce=_mean_over_seeds("rounds"),
            checks=(
                _pearson_check("rounds_track_log_w", "log2W", "rounds",
                               0.95, "rounds must track log W"),
                _growth_check("rounds_sublinear_in_w", "W", "rounds",
                              0.4, "rounds must be far sublinear in W"),
                _rows_check(
                    "rounds_grow",
                    lambda rows: _assert(
                        rows[-1]["rounds"] > rows[0]["rounds"],
                        "largest W must use more rounds than smallest"),
                ),
            ),
        ),
        Section(
            name="t1_1b",
            title="T1.1b: Algorithm 2 rounds vs W (typical sparse "
                  "G(n,p))",
            measurement="maxis_layers",
            grid=tuple(
                {"graph": _gnp(96, 0.05, 1,
                               node_w={"max_weight": w,
                                       "scheme": "log-uniform",
                                       "seed": 2}),
                 "label": {"W": w}}
                for w in (1, 16, 256, 4096)
            ),
            seeds=(0, 1, 2),
            reduce=_mean_over_seeds("rounds"),
            checks=(_rows_check("rounds_flat_in_w", _t1_1b_check),),
        ),
        Section(
            name="t1_1c",
            title="T1.1c: Algorithm 2 rounds vs n (W=64, sparse G(n,p))",
            measurement="maxis_layers",
            grid=tuple(
                {"graph": _gnp(n, min(0.9, 6.0 / n), 3,
                               node_w={"max_weight": 64,
                                       "scheme": "log-uniform",
                                       "seed": 4}),
                 "label": {"n": n}}
                for n in (32, 64, 128, 256, 512)
            ),
            seeds=(0, 1, 2),
            reduce=_mean_over_seeds("rounds"),
            checks=(
                _growth_check("rounds_logarithmic_in_n", "n", "rounds",
                              0.5, "rounds should grow ~logarithmically"),
            ),
        ),
        Section(
            name="t1_1d",
            title="T1.1d: Algorithm 2 approximation ratio vs exact MWIS "
                  "(bound: Δ)",
            measurement="maxis_layers",
            grid=tuple(
                {"graph": _gnp(18, 0.25, seed,
                               node_w={"max_weight": 64, "seed": seed}),
                 "oracle": True,
                 "seeds": (seed,)}
                for seed in range(6)
            ),
            checks=(
                _per_row("delta_approximation",
                         lambda r: r["ratio"] <= r["delta"],
                         "ratio {ratio} exceeds the Δ={delta} bound"),
            ),
        ),
        Section(
            name="t1_2a",
            title="T1.2a: Algorithm 3 rounds vs Δ (serializing clique "
                  "workload)",
            measurement="maxis_coloring",
            grid=tuple(
                {"graph": {"family": "serializing_clique",
                           "args": {"degree": degree}}}
                for degree in (3, 5, 8, 12, 16)
            ),
            checks=(
                _pearson_check("rounds_track_delta", "delta", "lr_rounds",
                               0.95, "removal rounds must track Δ"),
                _per_row("sweeps_bounded",
                         lambda r: r["lr_rounds"] <= 2 * (r["delta"] + 1),
                         "clique uses {lr_rounds} rounds for Δ={delta}"),
            ),
        ),
        Section(
            name="t1_2b",
            title="T1.2b: Algorithm 3 rounds vs Δ (typical random "
                  "regular)",
            measurement="maxis_coloring",
            grid=tuple(
                {"graph": {"family": "random_regular",
                           "args": {"degree": degree, "n": 60, "seed": 5},
                           "node_weights": {"max_weight": 32, "seed": 6}}}
                for degree in (3, 5, 8, 12, 16)
            ),
            checks=(
                _per_row("accounting_dominates",
                         lambda r: r["lr_rounds"] <= r["accounted"],
                         "lr_rounds {lr_rounds} > accounted {accounted}"),
            ),
        ),
        Section(
            name="t1_2c",
            title="T1.2c: Algorithm 3 determinism + ratio (bound: Δ)",
            measurement="maxis_coloring",
            grid=tuple(
                {"graph": _gnp(16, 0.3, seed,
                               node_w={"max_weight": 32,
                                       "seed": seed + 1}),
                 "oracle": True, "check_deterministic": True}
                for seed in range(5)
            ),
            checks=(
                _per_row("deterministic", lambda r: r["deterministic"],
                         "two runs disagreed on the independent set"),
                _per_row("delta_approximation",
                         lambda r: r["ratio"] <= r["delta"],
                         "ratio {ratio} exceeds the Δ={delta} bound"),
            ),
        ),
        Section(
            name="t1_3",
            title="T1.3: MWM 2-approx on L(G) (bound: 2)",
            measurement="matching_lines",
            grid=tuple(
                {"graph": _gnp(24, 0.15, seed,
                               edge_w={"max_weight": 64,
                                       "seed": seed + 1}),
                 "method": method, "oracle": True, "seeds": (seed,)}
                for method in ("layers", "coloring")
                for seed in range(4)
            ),
            checks=(
                _per_row("two_approximation",
                         lambda r: r["ratio"] <= 2.0,
                         "MWM ratio {ratio} exceeds 2"),
            ),
        ),
        Section(
            name="t1_4a",
            title="T1.4a: (2+ε) MWM, ε=0.5 (bound: 2.5)",
            measurement="fast2eps_weighted",
            grid=tuple(
                {"graph": _gnp(22, 0.2, seed,
                               edge_w={"max_weight": 32,
                                       "seed": seed + 1}),
                 "eps": 0.5, "oracle": True, "seeds": (seed,)}
                for seed in range(4)
            ),
            checks=(
                _per_row("two_plus_eps",
                         lambda r: r["ratio"] <= 2.5,
                         "weighted ratio {ratio} exceeds 2+ε=2.5"),
            ),
        ),
        Section(
            name="t1_4b",
            title="T1.4b: (2+ε) MCM rounds vs Δ for update factors K",
            measurement="fast2eps",
            grid=tuple(
                {"graph": {"family": "random_regular",
                           "args": {"degree": degree, "n": 72, "seed": 7}},
                 "eps": 0.5, "k": k, "label": {"delta": degree}}
                for degree in (4, 8, 16, 24)
                for k in (2, 3, 4)
            ),
            seeds=(8,),
            reduce=_t1_4b_reduce,
            checks=(_rows_check("rounds_flatten_with_k", _t1_4b_check),),
        ),
        Section(
            name="t1_5a",
            title="T1.5a: (1+ε) MCM LOCAL, ε=0.5",
            measurement="oneeps_local",
            grid=tuple(
                {"graph": _gnp(26, 0.18, seed), "eps": 0.5,
                 "oracle": True, "seeds": (seed,)}
                for seed in range(4)
            ),
            checks=(_rows_check("one_eps_guarantee",
                                _one_eps_guarantee),),
        ),
        Section(
            name="t1_5b",
            title="T1.5b: (1+ε) MCM CONGEST, ε=0.5",
            measurement="oneeps_congest",
            grid=tuple(
                {"graph": _gnp(20, 0.2, seed), "eps": 0.5,
                 "oracle": True, "seeds": (seed,)}
                for seed in range(3)
            ),
            checks=(_rows_check("one_eps_guarantee",
                                _one_eps_guarantee),),
        ),
        Section(
            name="t1_summary",
            title="Table 1 (regenerated, n=18 workload): bound vs "
                  "measured",
            measurement="maxis_layers",
            grid=(
                {"graph": _T1_SUMMARY_NODE_G, "oracle": True,
                 "label": {"row": "MaxIS Δ rand (Alg.2)",
                           "bound": "delta"}},
                {"graph": _T1_SUMMARY_NODE_G, "oracle": True,
                 "measurement": "maxis_coloring",
                 "label": {"row": "MaxIS Δ det (Alg.3)",
                           "bound": "delta"}},
                {"graph": _T1_SUMMARY_EDGE_G, "oracle": True,
                 "measurement": "matching_lines", "method": "layers",
                 "label": {"row": "MWM 2 (line graph)", "bound": 2}},
                {"graph": _T1_SUMMARY_EDGE_G, "oracle": True,
                 "measurement": "fast2eps_weighted", "eps": 0.5,
                 "label": {"row": "MWM 2+eps (Thm 3.2/B.1)",
                           "bound": 2.5}},
                {"graph": _T1_SUMMARY_EDGE_G, "oracle": True,
                 "measurement": "oneeps_local", "eps": 0.5,
                 "label": {"row": "MCM 1+eps (Thm B.4)", "bound": 1.5}},
            ),
            seeds=(3,),
            reduce=_t1_summary_reduce,
            checks=(
                _per_row("bound_respected",
                         lambda r: r["measured_ratio"]
                         <= r["bound"] + 1e-9,
                         "{row}: measured {measured_ratio} exceeds "
                         "bound {bound}"),
            ),
        ),
    ),
))


def _assert(condition, message):
    assert condition, message


# ======================================================================
# FLA1 — Lemma A.1 layer-emptying dynamics
# ======================================================================
def _staircase_checks(max_phases=None, min_drop_fraction=False):
    def fn(rows):
        series = _series_values(rows, "top_layer")
        assert all(b <= a for a, b in zip(series, series[1:])), (
            "top layer must never climb"
        )
        if min_drop_fraction:
            assert series[0] == max(series)
            drops = sum(1 for a, b in zip(series, series[1:]) if b < a)
            assert drops >= len(series) // 2 - 1, (
                f"staircase too shallow: {drops} drops over "
                f"{len(series)} phases"
            )
        if max_phases is not None:
            assert len(series) <= max_phases, (
                f"typical case used {len(series)} phases "
                f"(expected <= {max_phases})"
            )

    return fn


def _layer_drops_reduce(trials):
    rows = []
    for trial in trials:
        measures = trial["measures"]
        rows.append({
            **trial["params"],
            "initial_top": measures["initial_top"],
            "layer_drops": measures["layer_drops"],
            "phases": measures["phases"],
        })
    return rows


def _layer_drops_check(rows):
    for row in rows:
        assert row["layer_drops"] <= row["log2W"] + 1, (
            f"Lemma A.1 budget exceeded: {row['layer_drops']} drops "
            f"for log2W={row['log2W']}"
        )
    drops = [r["layer_drops"] for r in rows]
    assert drops == sorted(drops), "drops must increase with W"
    assert drops[-1] > drops[0], "the budget must actually be used"


LAYERS = register_experiment(ExperimentSpec(
    name="layers",
    title="FLA1: Lemma A.1 layer-emptying dynamics",
    description=(
        "After one MIS phase on the locally-top layer every node of "
        "the top layer has its weight at least halved, so the top "
        "layer empties: a staircase on serializing chains, a collapse "
        "on sparse random graphs."
    ),
    tags=("lemma-a1", "figure"),
    sections=(
        Section(
            name="staircase",
            title="FLA1a: topmost occupied layer per selection phase "
                  "(layered chain, W=1024)",
            measurement="maxis_layers",
            grid=(
                {"graph": {"family": "layered_geometric",
                           "args": {"layers": 11, "width": 5, "seed": 1}},
                 "trace": True},
            ),
            seeds=(3,),
            reduce=_series_rows("phase", "top_layer"),
            render="series",
            render_params={"x": "phase", "y": "top_layer"},
            checks=(
                _rows_check("staircase_descends",
                            _staircase_checks(min_drop_fraction=True)),
            ),
        ),
        Section(
            name="drop_scaling",
            title="FLA1b: layer drops vs log W (layered chain)",
            measurement="maxis_layers",
            grid=tuple(
                {"graph": {"family": "layered_geometric",
                           "args": {"layers": layers, "width": 5,
                                    "seed": 1}},
                 "trace": True,
                 "label": {"W": 2 ** (layers - 1), "log2W": layers - 1}}
                for layers in (3, 7, 11)
            ),
            seeds=(6,),
            reduce=_layer_drops_reduce,
            checks=(_rows_check("lemma_a1_budget", _layer_drops_check),),
        ),
        Section(
            name="typical_collapse",
            title="FLA1c: typical case (sparse G(n,p), W=1024)",
            measurement="maxis_layers",
            grid=(
                {"graph": _gnp(80, 0.06, 1,
                               node_w={"max_weight": 1024,
                                       "scheme": "log-uniform",
                                       "seed": 2}),
                 "trace": True},
            ),
            seeds=(3,),
            reduce=_series_rows("phase", "top_layer"),
            render="series",
            render_params={"x": "phase", "y": "top_layer"},
            checks=(
                _rows_check("layers_collapse",
                            _staircase_checks(max_phases=11)),
            ),
        ),
    ),
))


# ======================================================================
# FT28 — Theorem 2.8 congestion separation
# ======================================================================
def _naive_grows_check(rows):
    exponent = growth_exponent([r["delta"] for r in rows],
                               [r["naive_max"] for r in rows])
    assert exponent > 0.7, (
        f"naive load must grow ~linearly in Δ, got Δ^{exponent:.2f}"
    )


def _audit_monotone_check(rows):
    loads = [r["naive_max"] for r in rows]
    assert loads == sorted(loads), "naive load must grow with Δ"
    assert all(r["aggregated_max"] == 2 for r in rows), (
        "aggregation must keep every physical edge at 2 messages"
    )


CONGESTION = register_experiment(ExperimentSpec(
    name="congestion",
    title="FT28: Theorem 2.8's congestion separation",
    description=(
        "A naive line-graph simulation loads the busiest physical "
        "edge with Θ(Δ) messages per round; the aggregation mechanism "
        "keeps every edge at 2."
    ),
    tags=("theorem-2.8", "congest"),
    sections=(
        Section(
            name="star_cost",
            title="FT28a: per-edge load of one line-graph round on "
                  "stars",
            measurement="t28_cost",
            grid=tuple(
                {"graph": {"family": "star", "args": {"leaves": degree}}}
                for degree in (4, 8, 16, 32, 64)
            ),
            checks=(
                _rows_check("naive_load_linear_in_delta",
                            _naive_grows_check),
                _per_row("aggregated_constant",
                         lambda r: r["aggregated_max"] == 2,
                         "aggregated load {aggregated_max} != 2"),
            ),
        ),
        Section(
            name="regular_cost",
            title="FT28b: per-edge load on random regular graphs",
            measurement="t28_cost",
            grid=tuple(
                {"graph": {"family": "random_regular",
                           "args": {"degree": degree, "n": 48,
                                    "seed": 1}}}
                for degree in (4, 8, 12)
            ),
            checks=(
                _per_row("separation",
                         lambda r: r["naive_max"] > r["aggregated_max"],
                         "no separation at Δ={delta}"),
            ),
        ),
        Section(
            name="full_audit",
            title="FT28c: measured audit over a full "
                  "Algorithm-2-on-L(G) run",
            measurement="matching_lines",
            grid=tuple(
                {"graph": {"family": "star",
                           "args": {"leaves": leaves},
                           "edge_weights": {"max_weight": 16, "seed": 2}},
                 "audit": True, "label": {"delta": leaves}}
                for leaves in (6, 12, 18)
            ),
            seeds=(3,),
            checks=(_rows_check("audit_separation",
                                _audit_monotone_check),),
        ),
    ),
))


# ======================================================================
# F1 — Figure 1 traversal counts (Claims B.5/B.6)
# ======================================================================
def _figure1_reduce(trials):
    return list(trials[0]["measures"]["node_rows"])


def _figure1_exact_check(rows):
    for row in rows:
        assert abs(row["through_b6"] - row["brute_force"]) < 1e-9, (
            f"node {row['node']}: backward share {row['through_b6']} "
            f"!= brute force {row['brute_force']}"
        )


def _figure1_summary_check(rows):
    for row in rows:
        assert row["paths"] >= 4, "instance must have overlapping paths"
        assert row["forward_err"] == 0, (
            f"forward counts off by {row['forward_err']}"
        )
        assert row["through_err"] < 1e-9, (
            f"backward shares off by {row['through_err']}"
        )


FIGURE1 = register_experiment(ExperimentSpec(
    name="figure1",
    title="F1: Figure 1 augmenting-path counts",
    description=(
        "Forward (Claim B.5) and backward (Claim B.6) traversal "
        "counts on the Figure 1 instance and on random bipartite "
        "graphs, validated against brute-force path enumeration."
    ),
    tags=("figure1", "claims-b5-b6"),
    sections=(
        Section(
            name="curated_counts",
            title="Figure 1 (reproduced): augmenting-path counts via "
                  "forward/backward traversal vs brute force",
            measurement="figure1_counts",
            grid=({"graph": {"family": "figure1"}},),
            reduce=_figure1_reduce,
            checks=(_rows_check("traversal_exact",
                                _figure1_exact_check),),
        ),
        Section(
            name="figure1_summary",
            title="F1b: traversal error summary (curated instance)",
            measurement="figure1_counts",
            grid=({"graph": {"family": "figure1"}},),
            checks=(_rows_check("counts_match_brute_force",
                                _figure1_summary_check),),
        ),
        Section(
            name="random_instances",
            title="F1c: Claims B.5/B.6 on random bipartite instances",
            measurement="figure1_counts",
            grid=tuple(
                {"graph": {"family": "random_bipartite",
                           "args": {"left": 6, "right": 6, "p": 0.4,
                                    "seed": seed}},
                 "greedy_matching": True, "seeds": (seed,)}
                for seed in range(5)
            ),
            reduce=lambda trials: [
                {"seed": t["seed"], "paths": t["measures"]["paths"],
                 "through_err": t["measures"]["through_err"]}
                for t in trials
            ],
            checks=(
                _per_row("traversal_exact",
                         lambda r: r["through_err"] < 1e-9,
                         "seed {seed}: traversal error {through_err}"),
            ),
        ),
    ),
))


# ======================================================================
# FT31 — Theorem 3.1 residual decay
# ======================================================================
def _decay_curve_check(rows):
    series = _series_values(rows, "residual")
    assert series[0] > series[-1], "residual mass must decay"
    assert series[-1] <= 0.05, f"tail residual {series[-1]} > 0.05"
    midpoint = series[len(series) // 2]
    assert midpoint <= series[0], "decay must not climb by midpoint"


def _k_sweep_reduce(trials):
    rows = []
    for trial in trials:
        series = trial["measures"]["series"]
        rows.append({
            "K": trial["params"]["k"],
            "resid@3": series[2],
            "resid@6": series[5],
            "resid@10": series[9],
        })
    return rows


NMIS_DECAY = register_experiment(ExperimentSpec(
    name="nmis_decay",
    title="FT31: Theorem 3.1 residual decay",
    description=(
        "The undecided-node fraction decays geometrically in the "
        "iteration budget; larger update factors K reach low residual "
        "mass faster on the log Δ/log K leg."
    ),
    tags=("theorem-3.1", "nmis"),
    sections=(
        Section(
            name="decay_curve",
            title="FT31a: undecided fraction vs budget (K=2, Δ=8, "
                  "n=120)",
            measurement="residual_decay",
            grid=(
                {"graph": {"family": "random_regular",
                           "args": {"degree": 8, "n": 120, "seed": 1}},
                 "k": 2, "max_iterations": 14, "num_seeds": 4},
            ),
            reduce=_series_rows("iters", "residual", offset=1),
            render="series",
            render_params={"x": "iters", "y": "residual"},
            checks=(_rows_check("geometric_decay",
                                _decay_curve_check),),
        ),
        Section(
            name="k_sweep",
            title="FT31b: residual fraction by update factor K",
            measurement="residual_decay",
            grid=tuple(
                {"graph": {"family": "random_regular",
                           "args": {"degree": 8, "n": 120, "seed": 2}},
                 "k": k, "max_iterations": 10, "num_seeds": 3}
                for k in (2, 3, 4)
            ),
            reduce=_k_sweep_reduce,
            checks=(
                _per_row("budget_helps",
                         lambda r: r["resid@10"] <= r["resid@3"] + 1e-9,
                         "K={K}: residual grew with budget"),
            ),
        ),
        Section(
            name="golden_rounds",
            title="FT31d: golden-round occurrence (Lemma B.1/B.2)",
            measurement="golden_rounds",
            grid=(
                {"graph": _gnp(120, 0.06, 5), "iterations": 25, "k": 2},
            ),
            seeds=(6,),
            checks=(
                _per_row("golden_rounds_occur",
                         lambda r: r["type1_total"] + r["type2_total"]
                         > 0,
                         "no golden rounds at all"),
                _per_row("type1_occurs",
                         lambda r: r["type1_nodes"] > 0,
                         "no type-1 golden rounds"),
            ),
        ),
        Section(
            name="budget_suffices",
            title="FT31c: Theorem 3.1 budget leaves ≈ δ residuals",
            measurement="nmis_budget_residual",
            grid=(
                {"graph": {"family": "random_regular",
                           "args": {"degree": 6, "n": 100, "seed": 3}},
                 "delta": 6, "k": 2.0, "failure_delta": 0.05,
                 "num_seeds": 5},
            ),
            checks=(
                _per_row("residual_rate_bounded",
                         lambda r: r["rate"] <= 2 * r["failure_delta"],
                         "residual rate {rate} exceeds 2δ"),
            ),
        ),
    ),
))


# ======================================================================
# FB13/FB14 — the Appendix B.4 proposal algorithm
# ======================================================================
def _unlucky_reduce(trials):
    rows = []
    for group in _group_by_cell(trials):
        unlucky = sum(t["measures"]["unlucky_left"] for t in group)
        total = sum(t["measures"]["left_size"] for t in group)
        rows.append({"phases": group[0]["params"]["phases"],
                     "unlucky_rate": unlucky / total})
    return rows


def _unlucky_check(rows):
    rates = [r["unlucky_rate"] for r in rows]
    assert rates[-1] <= rates[0], "more phases must not hurt"
    assert rates[-1] <= 0.05, f"tail unlucky rate {rates[-1]} > 0.05"


def _b14_check(rows):
    good = sum(1 for r in rows if r["ok"])
    assert good >= 3, f"only {good}/4 runs met the (2+ε) bound"


PROPOSAL = register_experiment(ExperimentSpec(
    name="proposal",
    title="FB13/FB14: the Appendix B.4 proposal algorithm",
    description=(
        "Lemma B.13: after O(K log 1/ε + log Δ/log K) phases each "
        "left node is matched or isolated except with probability "
        "≤ ε/2; Lemma B.14 lifts this to general graphs."
    ),
    tags=("appendix-b4", "proposal"),
    sections=(
        Section(
            name="unlucky_rate",
            title="FB13a: unlucky left-node rate vs phase budget (Δ=5)",
            measurement="proposal_bipartite",
            grid=tuple(
                {"graph": {"family": "bipartite_regular",
                           "args": {"side_size": 40, "degree": 5,
                                    "seed": 1}},
                 "phases": phases}
                for phases in (1, 2, 4, 8, 16)
            ),
            seeds=(0, 1, 2, 3),
            reduce=_unlucky_reduce,
            checks=(_rows_check("unlucky_rate_decays",
                                _unlucky_check),),
        ),
        Section(
            name="k_tradeoff",
            title="FB13b: analytic phase budget, K=2 vs optimized K",
            measurement="proposal_budget",
            grid=tuple(
                {"delta": delta, "eps": 0.25}
                for delta in (8, 64, 1024, 2 ** 15)
            ),
            checks=(
                _per_row("optimized_k_wins",
                         lambda r: r["budget_kstar"] <= r["budget_k2"],
                         "Δ={delta}: optimized K loses to K=2"),
            ),
        ),
        Section(
            name="lemma_b14",
            title="FB14: general proposal matching, ε=0.5 (bound 2+ε)",
            measurement="proposal_general",
            grid=tuple(
                {"graph": _gnp(60, 0.08, seed), "eps": 0.5,
                 "oracle": True, "seeds": (seed,)}
                for seed in range(4)
            ),
            checks=(_rows_check("mostly_within_bound", _b14_check),),
        ),
    ),
))


# ======================================================================
# ABL — design-choice ablations
# ======================================================================
def _eps_tradeoff_check(rows):
    found = [r["found"] for r in rows]
    assert found == sorted(found), "tighter ε must not lose quality"
    for row in rows:
        assert (1 + row["eps"]) * row["found"] >= row["opt"], (
            f"ε={row['eps']}: guarantee violated"
        )


ABLATION = register_experiment(ExperimentSpec(
    name="ablation",
    title="ABL: ablations over the paper's design choices",
    description=(
        "The MIS black box (Luby vs NMIS+Luby), the matching "
        "formulation (L(G) vs weight groups), the big-bucket base β, "
        "and the ε knob of the (1+ε) algorithm."
    ),
    tags=("ablation",),
    sections=(
        Section(
            name="mis_engines",
            title="ABL-a: MIS black box rounds (n=96 regular)",
            measurement="mis_engines",
            grid=tuple(
                {"graph": {"family": "random_regular",
                           "args": {"degree": degree, "n": 96,
                                    "seed": 1}},
                 "label": {"delta": degree}}
                for degree in (4, 8, 16)
            ),
            seeds=(0, 1, 2),
            reduce=_mean_over_seeds("luby_rounds", "composite_rounds"),
            checks=(
                _per_row("both_far_below_n",
                         lambda r: r["luby_rounds"] < 96
                         and r["composite_rounds"] < 96,
                         "an MIS engine used ≥ n rounds at Δ={delta}"),
            ),
        ),
        Section(
            name="formulations",
            title="ABL-b: L(G) formulation vs footnote-5 weight groups",
            measurement="lines_vs_groups",
            grid=tuple(
                {"graph": _gnp(22, 0.2, seed,
                               edge_w={"max_weight": 64,
                                       "seed": seed + 1}),
                 "seeds": (seed,)}
                for seed in range(4)
            ),
            checks=(
                _per_row("both_two_approx",
                         lambda r: r["lines_ratio"] <= 2.0
                         and r["groups_ratio"] <= 2.0,
                         "a formulation exceeded the 2-approx bound"),
            ),
        ),
        Section(
            name="bucket_base",
            title="ABL-c: big-bucket base β in the Appendix B.1 "
                  "pipeline",
            measurement="fast2eps_weighted",
            grid=tuple(
                {"graph": _gnp(22, 0.2, 5,
                               edge_w={"max_weight": 256, "seed": 6}),
                 "eps": 0.5, "beta_bucket": beta, "oracle": True}
                for beta in (4, 16, 64)
            ),
            seeds=(7,),
            checks=(
                _per_row("two_plus_eps",
                         lambda r: r["ratio"] <= 2.5,
                         "β={beta_bucket}: ratio {ratio} exceeds 2.5"),
            ),
        ),
        Section(
            name="eps_tradeoff",
            title="ABL-d: ε vs quality/rounds for the (1+ε) algorithm",
            measurement="oneeps_local",
            grid=tuple(
                {"graph": _gnp(26, 0.18, 8), "eps": eps, "oracle": True}
                for eps in (1.0, 0.5, 0.34)
            ),
            seeds=(9,),
            checks=(_rows_check("eps_tradeoff", _eps_tradeoff_check),),
        ),
    ),
))


# ======================================================================
# CMP — ours vs prior-art baselines
# ======================================================================
def _cmp_weighted_check(rows):
    for row in rows:
        assert row["lr2_ratio"] <= 2.0, (
            f"{row['family']}: local-ratio exceeded 2"
        )
        assert row["fast2eps_ratio"] <= 2.5, (
            f"{row['family']}: fast (2+ε) exceeded 2.5"
        )
    bimodal = next(r for r in rows if r["family"] == "bimodal")
    assert bimodal["maximal_ratio"] > bimodal["lr2_ratio"], (
        "weight-oblivious maximal matching must lose on bimodal weights"
    )


def _cmp_rounds_check(rows):
    exponent = growth_exponent([r["n"] for r in rows],
                               [r["fast_rounds"] for r in rows])
    assert exponent < 0.3, f"rounds grow like n^{exponent:.2f}"
    for row in rows:
        assert row["fast_ratio"] <= 2.5, (
            f"n={row['n']}: fast ratio exceeded 2.5"
        )


_CMP_FAMILIES = (
    ("gnp", _gnp(40, 0.1, 1, edge_w={"max_weight": 64,
                                     "scheme": "uniform", "seed": 2})),
    ("regular6", {"family": "random_regular",
                  "args": {"degree": 6, "n": 40, "seed": 3},
                  "edge_weights": {"max_weight": 64, "scheme": "uniform",
                                   "seed": 4}}),
    ("grid", {"family": "grid", "args": {"rows": 6, "cols": 6},
              "edge_weights": {"max_weight": 64, "scheme": "uniform",
                               "seed": 5}}),
    ("powerlaw", {"family": "power_law", "args": {"n": 40, "seed": 6},
                  "edge_weights": {"max_weight": 64, "scheme": "uniform",
                                   "seed": 7}}),
    ("bimodal", _gnp(40, 0.1, 8, edge_w={"max_weight": 512,
                                         "scheme": "bimodal",
                                         "seed": 9})),
)

COMPARISON = register_experiment(ExperimentSpec(
    name="comparison",
    title="CMP: ours vs prior-art baselines (the §1.3 landscape)",
    description=(
        "Weight-oblivious maximal matching can lose a factor W on "
        "weighted instances while local-ratio holds 2; the fast "
        "algorithms trade approximation for round scaling in Δ."
    ),
    tags=("comparison", "baselines"),
    sections=(
        Section(
            name="weighted_ratios",
            title="CMP-a: weighted approximation ratios (lower is "
                  "better)",
            measurement="weighted_matchers",
            grid=tuple(
                {"graph": spec, "eps": 0.5, "label": {"family": name}}
                for name, spec in _CMP_FAMILIES
            ),
            seeds=(1,),
            checks=(_rows_check("weighted_landscape",
                                _cmp_weighted_check),),
        ),
        Section(
            name="round_scaling",
            title="CMP-b: rounds vs n at fixed Δ=4 (Δ, not n, governs "
                  "the fast algorithms)",
            measurement="fast_vs_maximal_rounds",
            grid=tuple(
                {"graph": {"family": "random_regular",
                           "args": {"degree": 4, "n": n, "seed": 10}},
                 "eps": 0.5, "num_seeds": 3, "label": {"n": n}}
                for n in (32, 64, 128, 256)
            ),
            seeds=(11,),
            checks=(_rows_check("rounds_flat_in_n", _cmp_rounds_check),),
        ),
    ),
))


# ======================================================================
# BUD — anytime budget sweeps (quality-vs-round curves)
# ======================================================================
def _anytime_contract_check(rows):
    """The anytime protocol's contract, per (algorithm, ε,
    bandwidth_factor) curve: truncated runs fit their budget, quality
    never decreases with more budget, the unbounded run completes, and
    every completed run matches the unbounded objective
    (prefix-of-the-same-run determinism at a fixed seed)."""

    order, groups = [], {}
    for row in rows:
        key = (row["algorithm"], row.get("eps"),
               row.get("bandwidth_factor"))
        if key not in groups:
            order.append(key)
            groups[key] = []
        groups[key].append(row)
    for key in order:
        group = groups[key]
        objectives = [r["objective"] for r in group]
        assert objectives == sorted(objectives), (
            f"{key}: quality decreased with budget: {objectives}"
        )
        final = group[-1]
        assert final["status"] == "complete", (
            f"{key}: unbounded run did not complete"
        )
        for row in group:
            if row["budget"] is not None:
                assert row["rounds"] <= row["budget"], (
                    f"{key}: consumed {row['rounds']} rounds on a "
                    f"budget of {row['budget']}"
                )
            if row["status"] == "complete":
                assert row["objective"] == final["objective"], (
                    f"{key}: a completed budgeted run diverged from "
                    "the unbounded run"
                )

    return None


def _curve_moves_check(rows):
    """The sweep must actually exercise truncation: a zero budget
    yields the empty solution, and some budget improves on it."""

    for row in rows:
        if row["budget"] == 0:
            assert row["objective"] == 0, (
                "a zero-round budget returned a non-empty solution"
            )
            assert row["status"] == "truncated", (
                "a zero-round budget did not truncate"
            )
    objectives = [r["objective"] for r in rows]
    assert max(objectives) > min(objectives), (
        "the budget sweep never changed the objective"
    )


def _bandwidth_axis_check(rows):
    """The bandwidth_factor axis is observational metering, not a
    different algorithm: at every round budget the execution is
    invariant along the axis (identical objective, rounds and status
    at every word width), recorded violations are monotone
    non-increasing as the per-edge word widens, the narrowest width
    actually triggers violations (the axis is exercised), and the
    simulator default records none."""

    by_budget = {}
    for row in rows:
        by_budget.setdefault(row["budget"], []).append(row)
    for budget, group in by_budget.items():
        group = sorted(group, key=lambda r: r["bandwidth_factor"])
        reference = group[0]
        for row in group[1:]:
            for key in ("objective", "rounds", "status"):
                assert row[key] == reference[key], (
                    f"budget={budget}: {key} varied along the "
                    f"bandwidth axis ({row[key]} vs {reference[key]})"
                )
        violations = [row["violations"] for row in group]
        assert violations == sorted(violations, reverse=True), (
            f"budget={budget}: violations not monotone in bandwidth: "
            f"{violations}"
        )
        assert violations[0] > 0, (
            f"budget={budget}: the narrowest bandwidth recorded no "
            "violations — the sweep never exercised the axis"
        )
        assert violations[-1] == 0, (
            f"budget={budget}: the default bandwidth recorded "
            f"{violations[-1]} violations"
        )


_BUDGETS_MAXIS_G = _gnp(40, 0.1, 1, node_w={"max_weight": 64, "seed": 2})
_BUDGETS_ONEEPS_G = _gnp(24, 0.18, 4)
_BUDGETS_CONGEST_G = _gnp(20, 0.2, 6)
_BUDGETS_COARSE_G = _gnp(20, 0.2, 8)

BUDGETS = register_experiment(ExperimentSpec(
    name="budgets",
    title="BUD: anytime budget sweeps (max_rounds × ε)",
    description=(
        "The paper's guarantees are round-for-quality trade-offs; "
        "this experiment records the empirical curves.  Each section "
        "sweeps Instance.max_rounds over one algorithm (crossed with "
        "ε for the (1+ε) matcher) through the anytime solve protocol: "
        "a truncated run returns the best valid partial solution "
        "within the budget instead of raising."
    ),
    tags=("anytime", "budgets"),
    sections=(
        Section(
            name="maxis_curve",
            title="BUD-a: Algorithm 2 weight vs round budget "
                  "(phase-grain truncation)",
            measurement="budget_curve",
            grid=tuple(
                {"graph": _BUDGETS_MAXIS_G, "algorithm": "maxis-layers",
                 "budget": budget}
                for budget in (0, 2, 4, 6, 8, None)
            ),
            seeds=(3,),
            checks=(
                _rows_check("anytime_contract", _anytime_contract_check),
                _rows_check("curve_moves", _curve_moves_check),
            ),
        ),
        Section(
            name="oneeps_curve",
            title="BUD-b: (1+ε) LOCAL matcher, ε × budget "
                  "(Hopcroft–Karp phase grain)",
            measurement="budget_curve",
            grid=tuple(
                {"graph": _BUDGETS_ONEEPS_G,
                 "algorithm": "matching-oneeps", "eps": eps,
                 "budget": budget}
                for eps in (1.0, 0.5)
                for budget in (0, 15, 19, None)
            ),
            seeds=(5,),
            checks=(
                _rows_check("anytime_contract", _anytime_contract_check),
                _rows_check("curve_moves", _curve_moves_check),
            ),
        ),
        Section(
            name="congest_stage_curve",
            title="BUD-c: (1+ε) CONGEST matcher vs budget (stage grain)",
            measurement="budget_curve",
            grid=tuple(
                {"graph": _BUDGETS_CONGEST_G,
                 "algorithm": "matching-oneeps-congest", "eps": 0.5,
                 "budget": budget}
                for budget in (0, 60, 150, None)
            ),
            seeds=(7,),
            checks=(
                _rows_check("anytime_contract", _anytime_contract_check),
                _rows_check("curve_moves", _curve_moves_check),
            ),
        ),
        Section(
            name="coarse_truncation",
            title="BUD-d: coarse begin/end adapter (every registered "
                  "algorithm is interruptible)",
            measurement="budget_curve",
            grid=tuple(
                {"graph": _BUDGETS_COARSE_G,
                 "algorithm": "matching-fast2eps", "eps": 0.5,
                 "budget": budget}
                for budget in (0, None)
            ),
            seeds=(9,),
            checks=(
                _rows_check("anytime_contract", _anytime_contract_check),
                _rows_check("curve_moves", _curve_moves_check),
            ),
        ),
        Section(
            name="bandwidth_curve",
            title="BUD-e: bandwidth-budget sweep (bandwidth_factor × "
                  "round budget; ROADMAP open item)",
            measurement="budget_curve",
            grid=tuple(
                {"graph": _BUDGETS_MAXIS_G, "algorithm": "maxis-layers",
                 "bandwidth_factor": bandwidth_factor, "budget": budget}
                for bandwidth_factor in (1, 2, 8)
                for budget in (4, None)
            ),
            seeds=(3,),
            checks=(
                _rows_check("anytime_contract", _anytime_contract_check),
                _rows_check("bandwidth_axis", _bandwidth_axis_check),
            ),
        ),
    ),
))


# ======================================================================
# PERF — wall-clock tracking for the batch engine and the simulator
# ======================================================================
# The one catalog experiment exempt from the byte-determinism contract:
# its measures ARE wall-clock numbers (CI records BENCH_perf.json, it
# never gates on the values; only the schema is smoke-gated).  The
# deterministic *content* — what the parallel backend computed — is
# still checked to match the serial backend exactly.
def _perf_agreement_check(rows):
    for row in rows:
        assert row["failed"] == 0, f"{row['failed']} batch tasks failed"
        assert row["objective_total"] == row["parallel_objective_total"], (
            "parallel backend computed different objectives "
            f"({row['parallel_objective_total']} vs "
            f"{row['objective_total']})"
        )
        assert row["rounds_total"] == row["parallel_rounds_total"], (
            "parallel backend computed different round totals"
        )


def _perf_recorded_check(*keys):
    def fn(rows):
        for row in rows:
            for key in keys:
                assert row.get(key, 0) > 0, f"{key} not recorded: {row.get(key)}"

    return fn


def _backend_agreement_check(rows):
    """The array backend must compute exactly what the object one did."""

    for row in rows:
        for key in ("objective", "rounds", "bits"):
            assert row[key] == row[f"array_{key}"], (
                f"array backend computed a different {key} "
                f"({row[f'array_{key}']} vs {row[key]})"
            )


PERF = register_experiment(ExperimentSpec(
    name="perf",
    title="PERF: batch-engine and simulator wall-clock tracking",
    description=(
        "Records p50/p95 wall-clock and trials/sec for solve_many "
        "(serial vs process pool) and for full serial simulator runs. "
        "The only non-byte-deterministic experiment: BENCH_perf.json "
        "is recorded across commits, never gated on timing values."
    ),
    tags=("perf", "timing", "nondeterministic"),
    sections=(
        Section(
            name="solve_many_scaling",
            title="PERF-a: solve_many serial vs 8-worker process pool "
                  "(32 Algorithm-2 trials, n=1200 sparse G(n,p))",
            measurement="batch_perf",
            grid=(
                {"graph": _gnp(1200, 0.01, 1,
                               node_w={"max_weight": 4096,
                                       "scheme": "log-uniform",
                                       "seed": 2}),
                 "trials": 32, "workers": 8,
                 "algorithm": "maxis-layers"},
            ),
            seeds=(0,),
            checks=(
                _rows_check("parallel_matches_serial",
                            _perf_agreement_check),
                _rows_check(
                    "timing_recorded",
                    _perf_recorded_check(
                        "serial_seconds", "parallel_seconds",
                        "p50_task_seconds", "p95_task_seconds",
                        "serial_trials_per_sec",
                        "parallel_trials_per_sec", "speedup",
                    ),
                ),
            ),
        ),
        Section(
            name="simulator_serial",
            title="PERF-b: serial simulator wall-clock (wake-list "
                  "scheduler, sparse late-phase workload)",
            measurement="simulator_perf",
            grid=(
                {"graph": _gnp(1200, 0.006, 1,
                               node_w={"max_weight": 4096,
                                       "scheme": "log-uniform",
                                       "seed": 2}),
                 "repeats": 5},
            ),
            seeds=(0,),
            checks=(
                _rows_check(
                    "timing_recorded",
                    _perf_recorded_check(
                        "p50_seconds", "p95_seconds", "rounds_per_sec",
                        "messages_per_sec", "cache_hit_rate",
                    ),
                ),
            ),
        ),
        Section(
            name="backend_scaling",
            title="PERF-c: object vs array simulator backend "
                  "(Algorithm 2; sparse G(n, 6/n) curve up to n=10^5, "
                  "plus the serializing layered workload at n=10^5)",
            measurement="backend_perf",
            grid=(
                {"graph": _sparse_gnp(1_000, 0.006, 1,
                                      node_w={"max_weight": 4096,
                                              "scheme": "log-uniform",
                                              "seed": 2}),
                 "repeats": 3, "algorithm": "maxis-layers"},
                {"graph": _sparse_gnp(10_000, 0.0006, 1,
                                      node_w={"max_weight": 4096,
                                              "scheme": "log-uniform",
                                              "seed": 2}),
                 "repeats": 3, "algorithm": "maxis-layers"},
                {"graph": _sparse_gnp(100_000, 0.00006, 1,
                                      node_w={"max_weight": 4096,
                                              "scheme": "log-uniform",
                                              "seed": 2}),
                 "repeats": 3, "algorithm": "maxis-layers"},
                # The log W staircase workload: every layer stays an
                # actor (broadcasting each cycle) until the top layer
                # retires, so the object backend pays python per
                # message on every edge every round — the regime the
                # array backend exists for.
                {"graph": {"family": "layered_geometric",
                           "args": {"layers": 40, "width": 2500,
                                    "seed": 1, "p": 0.006}},
                 "repeats": 3, "algorithm": "maxis-layers"},
            ),
            seeds=(0,),
            checks=(
                _rows_check("array_matches_object",
                            _backend_agreement_check),
                _rows_check(
                    "timing_recorded",
                    _perf_recorded_check(
                        "object_p50_seconds", "array_p50_seconds",
                        "speedup",
                    ),
                ),
            ),
        ),
    ),
))


# ======================================================================
# serve_load — solver-service throughput/latency under concurrency
# ======================================================================
# Timing values are recorded (BENCH_serve.json), never gated — like
# `perf`, this experiment is exempt from the byte-determinism contract.
# The deterministic *content* is still gated: every objective the
# service returns must equal the direct facade solve of the same spec.
def _serve_agreement_check(rows):
    for row in rows:
        assert row["failed"] == 0, f"{row['failed']} service jobs failed"
        assert row["objective_total"] == row["direct_objective_total"], (
            "service computed different objectives than solve() "
            f"({row['objective_total']} vs "
            f"{row['direct_objective_total']})"
        )


def _serve_cache_check(rows):
    for row in rows:
        assert row["cache_hits"] == 2, (
            f"expected exactly the 2 resubmissions to hit the cache, "
            f"got {row['cache_hits']}"
        )


def _serve_truncation_check(rows):
    """Rows sweep a loosening round budget: the truncated share must
    fall monotonically from all-truncated toward none."""

    ratios = [row["truncated_ratio"] for row in rows]
    for ratio in ratios:
        assert 0.0 <= ratio <= 1.0, f"ratio {ratio} out of range"
    assert ratios == sorted(ratios, reverse=True), (
        f"truncated ratio must not grow with budget: {ratios}"
    )
    assert ratios[0] > ratios[-1], (
        f"budget sweep never changed the truncated share: {ratios}"
    )


SERVE_LOAD = register_experiment(ExperimentSpec(
    name="serve_load",
    title="SERVE: solver-service throughput, latency and SLA truncation",
    description=(
        "Drives the python -m repro serve job manager in-process: a "
        "mixed batch of jobs per worker count records throughput and "
        "the service's p50/p95 latency (BENCH_serve.json, recorded "
        "like perf, never gated on timing), and a round-budget sweep "
        "records the truncated-vs-complete ratio.  The deterministic "
        "content is gated: every service objective must equal the "
        "direct facade solve."
    ),
    tags=("serve", "perf", "timing", "nondeterministic"),
    sections=(
        Section(
            name="throughput",
            title="SERVE-a: throughput and latency vs worker count "
                  "(12 mixed jobs + 2 cache resubmissions, n=40)",
            measurement="serve_load",
            grid=(
                {"workers": 1, "jobs": 12, "budget_every": 3,
                 "budget_rounds": 8, "resubmit": 2},
                {"workers": 2, "jobs": 12, "budget_every": 3,
                 "budget_rounds": 8, "resubmit": 2},
                {"workers": 4, "jobs": 12, "budget_every": 3,
                 "budget_rounds": 8, "resubmit": 2},
            ),
            seeds=(0,),
            checks=(
                _rows_check("serve_matches_direct",
                            _serve_agreement_check),
                _rows_check("cache_hits_deterministic",
                            _serve_cache_check),
                _rows_check(
                    "timing_recorded",
                    _perf_recorded_check("jobs_per_sec", "p50_ms",
                                         "p95_ms"),
                ),
            ),
        ),
        Section(
            name="sla_truncation",
            title="SERVE-b: truncated-vs-complete ratio under a "
                  "loosening round budget (10 budgeted jobs, n=40)",
            measurement="serve_load",
            grid=(
                {"workers": 2, "jobs": 10, "budget_every": 1,
                 "budget_rounds": 6},
                {"workers": 2, "jobs": 10, "budget_every": 1,
                 "budget_rounds": 10},
                {"workers": 2, "jobs": 10, "budget_every": 1,
                 "budget_rounds": 1000},
            ),
            seeds=(0,),
            checks=(
                _rows_check("serve_matches_direct",
                            _serve_agreement_check),
                _rows_check("truncation_sweeps_down",
                            _serve_truncation_check),
            ),
        ),
    ),
))


# ======================================================================
# smoke — the CI gate (tiny grid, recorded bounds, pinned counters)
# ======================================================================
#: Recorded regression bounds for the smoke workloads.  These are NOT
#: the paper's guarantees (those are looser); they are the measured
#: behaviour of this codebase with comfortable headroom, so CI fails
#: when a change makes approximation *worse* than it has ever been
#: while still allowing benign cross-version jitter.
SMOKE_BOUNDS = {
    "maxis_ratio": 1.5,          # measured 1.035 on the pinned workload
    "matching_effective": 1.5,   # the (1+ε) guarantee at ε=0.5
}

#: Exact simulator counters for the pinned n=300 CONGEST protocol run.
#: Any change to message delivery or metric accounting shows up here.
SMOKE_SIM_EXPECTED = {
    "rounds": 13,
    "messages": 11369,
    "bits": 138650,
    "violations": 0,
}


def _smoke_maxis_check(rows):
    for row in rows:
        assert row["ratio"] <= row["delta"], "Δ-approximation violated"
        assert row["ratio"] <= SMOKE_BOUNDS["maxis_ratio"], (
            f"MaxIS ratio {row['ratio']} regressed past the recorded "
            f"bound {SMOKE_BOUNDS['maxis_ratio']}"
        )


def _smoke_matching_check(rows):
    for row in rows:
        effective = row["found"] + row["deactivated"]
        bound = SMOKE_BOUNDS["matching_effective"]
        assert bound * effective >= row["opt"], (
            f"(1+ε) matching regressed: {effective} effective vs "
            f"optimum {row['opt']} (recorded bound {bound})"
        )


def _smoke_sim_check(rows):
    for row in rows:
        for key, expected in SMOKE_SIM_EXPECTED.items():
            assert row[key] == expected, (
                f"simulator fingerprint changed: {key}={row[key]}, "
                f"recorded {expected}"
            )


SMOKE = register_experiment(ExperimentSpec(
    name="smoke",
    title="smoke: the CI regression gate",
    description=(
        "A tiny deterministic grid (< 30 s) that exercises Algorithm "
        "2, the (1+ε) matching and a full n=300 CONGEST protocol run "
        "through the simulator.  Checks pin recorded approximation "
        "bounds and exact simulator counters."
    ),
    tags=("ci", "smoke"),
    sections=(
        Section(
            name="maxis_ratio",
            title="smoke-a: Algorithm 2 ratio on the pinned workload",
            measurement="maxis_layers",
            grid=(
                {"graph": _gnp(18, 0.25, 1,
                               node_w={"max_weight": 64, "seed": 2}),
                 "oracle": True},
            ),
            seeds=(3,),
            checks=(_rows_check("ratio_within_recorded_bound",
                                _smoke_maxis_check),),
        ),
        Section(
            name="matching_ratio",
            title="smoke-b: (1+ε) matching on the pinned workload",
            measurement="oneeps_local",
            grid=(
                {"graph": _gnp(20, 0.2, 0), "eps": 0.5, "oracle": True},
            ),
            seeds=(1,),
            checks=(_rows_check("effective_within_recorded_bound",
                                _smoke_matching_check),),
        ),
        Section(
            name="sim_microbench",
            title="smoke-c: full n=300 G(n,p) CONGEST protocol run "
                  "(simulator fingerprint)",
            measurement="simulator_microbench",
            grid=(
                {"graph": _gnp(300, 0.05, 1,
                               node_w={"max_weight": 4096,
                                       "scheme": "log-uniform",
                                       "seed": 2})},
            ),
            seeds=(0,),
            checks=(_rows_check("simulator_fingerprint",
                                _smoke_sim_check),),
        ),
    ),
))


# ======================================================================
# faults — deterministic chaos drills against the solver service
# ======================================================================
# Unlike serve_load, every measure here is a counter, flag or objective
# total — no wall-clock — so the artifact is byte-deterministic at a
# fixed seed and CI `cmp`-gates the committed BENCH_faults.json.
def _faults_retry_check(rows):
    """Transient faults must be absorbed, never corrupt results, and
    retries must grow with the injection rate from a zero baseline."""

    for row in rows:
        assert row["terminal"] == row["jobs"], (
            f"{row['jobs'] - row['terminal']} jobs lost at "
            f"rate {row['rate']}"
        )
        assert row["objective_total"] == row["direct_objective_total"], (
            f"retried jobs diverged from the fault-free solve at "
            f"rate {row['rate']} ({row['objective_total']} vs "
            f"{row['direct_objective_total']})"
        )
    by_rate = sorted(rows, key=lambda row: row["rate"])
    retries = [row["retries"] for row in by_rate]
    assert retries == sorted(retries), (
        f"retries must not fall as the fault rate grows: {retries}"
    )
    assert by_rate[0]["rate"] == 0.0 and by_rate[0]["retries"] == 0, (
        "the fault-free cell must be retry-free "
        f"(got {by_rate[0]['retries']})"
    )
    assert by_rate[0]["failed"] == 0, (
        "the fault-free cell must not fail jobs"
    )
    assert by_rate[-1]["retries"] > 0, (
        "the faulted cells never triggered a retry — injection is dead"
    )


def _faults_journal_check(rows):
    """Journal faults degrade persistence loudly, never the solves;
    recovery sweeps/skips garbage and finishes every durable job."""

    for row in rows:
        assert row["first_complete"] == row["jobs"], (
            f"journal faults killed "
            f"{row['jobs'] - row['first_complete']} jobs"
        )
        assert row["objective_total"] == row["direct_objective_total"], (
            "journal faults corrupted results "
            f"({row['objective_total']} vs "
            f"{row['direct_objective_total']})"
        )
        assert row["journal_errors"] > 0, (
            f"no journal faults fired at rate {row['rate']}"
        )
        assert row["skipped"] == 2, (
            f"recovery should skip the 2 planted garbage files, "
            f"skipped {row['skipped']}"
        )
        assert row["swept_tmp"] >= 1, (
            "recovery never swept the planted stale temp file"
        )
        assert row["recovered_terminal"], (
            "a recovered job never reached a terminal state"
        )
        assert (row["recovered_objective_total"]
                == row["recovered_direct_total"]), (
            "recovered jobs diverged from their fault-free solves"
        )
        if row["rate"] >= 1.0:
            assert row["degraded"], (
                "persistent journal failure must flip health degraded"
            )
            assert row["restored"] + row["requeued"] == 0, (
                "no record can be durable when every write fails"
            )


def _faults_drain_check(rows):
    """A graceful drain parks every in-flight job with a journaled
    resume point, and a restart finishes them bit-equal to
    never-interrupted runs."""

    for row in rows:
        assert row["parked"] == row["jobs"], (
            f"drain parked {row['parked']} of {row['jobs']} jobs "
            "(a job finished before the drain hit — raise the phase "
            "delay)"
        )
        assert row["terminal_before_drain"] == 0, (
            "the drain scenario expects every job mid-flight"
        )
        assert row["drain_clean"], "drain missed its budget"
        assert row["requeued"] == row["jobs"], (
            f"restart requeued {row['requeued']} of {row['jobs']} "
            "drained jobs"
        )
        assert row["objective_total"] == row["direct_objective_total"], (
            "drained-and-resumed jobs diverged from never-stopped runs "
            f"({row['objective_total']} vs "
            f"{row['direct_objective_total']})"
        )


def _faults_dispatcher_check(rows):
    """Dispatcher death latches degraded health; queued jobs survive
    in the journal and a restart finishes all of them."""

    for row in rows:
        assert row["dispatcher_dead"] and row["degraded"], (
            "dispatcher death must latch the health breaker"
        )
        assert row["executed_before_death"] == 0, (
            f"{row['executed_before_death']} jobs ran under a dead "
            "dispatcher"
        )
        assert row["requeued"] == row["jobs"], (
            f"restart recovered {row['requeued']} of {row['jobs']} "
            "journaled jobs"
        )
        assert row["complete_after_restart"] == row["jobs"], (
            "a recovered job failed to complete after restart"
        )
        assert row["objective_total"] == row["direct_objective_total"], (
            "recovered jobs diverged from the fault-free solves"
        )


FAULTS = register_experiment(ExperimentSpec(
    name="faults",
    title="FAULTS: seeded chaos drills and recovery guarantees",
    description=(
        "Runs the solver service under the deterministic fault-"
        "injection plane (repro.faults): a worker.transient rate "
        "sweep exercises the bounded-retry path, journal.write/"
        "journal.tmp faults exercise the degraded-health breaker and "
        "garbage-tolerant recovery, a mid-solve graceful drain "
        "exercises the SIGTERM path, and a dispatcher.death drill "
        "exercises the latched breaker.  Every measure is a counter "
        "or flag (never wall-clock), so the artifact is byte-"
        "deterministic and CI cmp-gates the committed "
        "BENCH_faults.json."
    ),
    tags=("serve", "faults", "chaos"),
    sections=(
        Section(
            name="retry",
            title="FAULTS-a: transient-fault rate sweep vs bounded "
                  "retries (6 jobs, n=32, max 4 attempts)",
            measurement="fault_recovery",
            grid=(
                {"scenario": "retry", "rate": 0.0, "jobs": 6},
                {"scenario": "retry", "rate": 0.3, "jobs": 6},
                {"scenario": "retry", "rate": 0.6, "jobs": 6},
            ),
            seeds=(0,),
            checks=(
                _rows_check("retries_absorb_transients",
                            _faults_retry_check),
            ),
        ),
        Section(
            name="journal",
            title="FAULTS-b: journal I/O faults, degraded health and "
                  "garbage-tolerant recovery (4 jobs, n=32)",
            measurement="fault_recovery",
            grid=(
                {"scenario": "journal", "rate": 0.4, "tmp_rate": 0.3,
                 "jobs": 4},
                {"scenario": "journal", "rate": 1.0, "tmp_rate": 0.0,
                 "jobs": 4},
            ),
            seeds=(0,),
            checks=(
                _rows_check("journal_faults_stay_loud_not_fatal",
                            _faults_journal_check),
            ),
        ),
        Section(
            name="drain",
            title="FAULTS-c: graceful drain mid-solve, restart "
                  "resumes bit-equal (3 jobs, n=32)",
            measurement="fault_recovery",
            grid=(
                {"scenario": "drain", "jobs": 3},
            ),
            seeds=(0,),
            checks=(
                _rows_check("drain_parks_and_resumes",
                            _faults_drain_check),
            ),
        ),
        Section(
            name="dispatcher",
            title="FAULTS-d: dispatcher death latches degraded "
                  "health, restart recovers (3 jobs, n=32)",
            measurement="fault_recovery",
            grid=(
                {"scenario": "dispatcher", "jobs": 3},
            ),
            seeds=(0,),
            checks=(
                _rows_check("dispatcher_death_is_loud_and_recoverable",
                            _faults_dispatcher_check),
            ),
        ),
    ),
))


# ----------------------------------------------------------------------
# MPC: sublinear-memory machines and per-machine load curves
# ----------------------------------------------------------------------
def _mpc_parity_check(rows):
    """Every MPC configuration reproduces its solve() twin exactly and
    stays under the per-machine sublinear budget."""

    for row in rows:
        assert row["parity"] and row["solution_parity"], (
            f"MPC run of {row['algorithm']} diverged from solve(): "
            f"{row['objective']} vs {row['baseline_objective']}"
        )
        assert row["sublinear_ok"], (
            f"machine load {row['max_machine_load']} exceeds the "
            f"capacity {row['capacity']}"
        )


def _mpc_dense_check(rows):
    """The dense configurations pass the sublinearity check *only*
    because adaptive sparsification engaged."""

    _mpc_parity_check(rows)
    engaged = [r for r in rows if r["sparsify_triggers"] > 0
               and r["would_violate_without"]]
    assert engaged, (
        "no dense configuration needed sparsification — the grid no "
        "longer exercises the adaptive dropper"
    )
    for row in engaged:
        assert row["dropped_messages"] > 0, (
            "sparsification triggered without dropping anything"
        )


MPC_SCALING = register_experiment(ExperimentSpec(
    name="mpc_scaling",
    title="MPC: machines × δ sweeps, sublinearity and sparsification",
    description=(
        "Runs the two MPC-ported algorithms (matching-proposal and "
        "maxis-greedy) across machine counts, memory exponents δ and "
        "graph families, recording per-machine peak loads, shuffle "
        "traffic and sparsification counters next to an exact "
        "objective/solution parity check against the default-model "
        "solve().  The dense section drives a complete graph through "
        "the greedy peeler, whose exclusion broadcast round is Θ(n²) "
        "outcome-neutral traffic — the configuration that passes the "
        "per-machine O(n^δ) budget only because the peak-hold "
        "estimator engages the adaptive dropper.  Every measure is a "
        "counter or flag, so the artifact is byte-deterministic and "
        "CI cmp-gates the committed BENCH_mpc.json."
    ),
    tags=("mpc", "models"),
    sections=(
        Section(
            name="machines",
            title="MPC-a: matching-proposal load vs machine count "
                  "(G(48, 0.12), δ=0.5)",
            measurement="mpc_scaling",
            grid=tuple(
                {"graph": _gnp(48, 0.12, 3),
                 "algorithm": "matching-proposal",
                 "machines": m, "delta": 0.5}
                for m in (2, 4, 8, 16)
            ),
            seeds=(0,),
            checks=(
                _rows_check("mpc_parity_and_sublinearity",
                            _mpc_parity_check),
                _rows_check(
                    "load_spreads_with_machines",
                    lambda rows: _assert(
                        rows[-1]["max_machine_load"]
                        <= rows[0]["max_machine_load"],
                        "peak machine load must not grow as the "
                        "fleet spreads out"),
                ),
            ),
        ),
        Section(
            name="delta",
            title="MPC-b: maxis-greedy load vs memory exponent δ "
                  "(G(48, 0.15), default fleet)",
            measurement="mpc_scaling",
            grid=tuple(
                {"graph": _gnp(48, 0.15, 5,
                               node_w={"max_weight": 8, "seed": 2}),
                 "algorithm": "maxis-greedy", "delta": d}
                for d in (0.4, 0.5, 0.75)
            ),
            seeds=(0,),
            checks=(
                _rows_check("mpc_parity_and_sublinearity",
                            _mpc_parity_check),
            ),
        ),
        Section(
            name="dense",
            title="MPC-c: greedy peeling on complete graphs — "
                  "sparsification keeps the shuffle sublinear",
            measurement="mpc_scaling",
            grid=tuple(
                {"graph": {"family": "complete", "args": {"n": n}},
                 "algorithm": "maxis-greedy"}
                for n in (32, 48)
            ),
            seeds=(0,),
            checks=(
                _rows_check("dense_needs_sparsification",
                            _mpc_dense_check),
            ),
        ),
    ),
))


# ----------------------------------------------------------------------
# churn — dynamic graphs: incremental re-solve vs from-scratch
# ----------------------------------------------------------------------
def _churn_sound(rows):
    """Every incremental solution is certified feasible on its mutated
    graph and matches the from-scratch objective within the
    algorithm's guarantee — and never costs more rounds than scratch."""

    for row in rows:
        _assert(row["feasible"],
                f"incremental step not certified at bs={row['batch_size']}")
        _assert(row["parity_ok"],
                f"objective parity broken at bs={row['batch_size']}")
        _assert(row["speedup_rounds"] >= 1.0,
                f"incremental costlier than scratch at "
                f"bs={row['batch_size']}: {row['speedup_rounds']}x")


def _churn_small_batches_win(rows):
    """Small mutation batches must beat from-scratch clearly, and the
    advantage must shrink as batches grow (locality of repair)."""

    small = [r["speedup_rounds"] for r in rows if r["batch_size"] <= 2]
    _assert(small and min(small) >= 1.2,
            f"small-batch speedups {small} below the 1.2x gate")
    _assert(rows[0]["speedup_rounds"] >= rows[-1]["speedup_rounds"],
            "repair advantage should shrink as the batch grows")


def _churn_backend_parity(rows):
    """Object and array backends must agree on every counter."""

    keys = ("repair_rounds", "scratch_rounds", "final_objective",
            "speedup_rounds", "region_nodes")
    _assert(len(rows) == 2, "expected one object + one array row")
    for key in keys:
        _assert(rows[0][key] == rows[1][key],
                f"backend mismatch on {key}: "
                f"{rows[0][key]} != {rows[1][key]}")


CHURN = register_experiment(ExperimentSpec(
    name="churn",
    title="Dynamic graphs: incremental warm-started re-solve under churn",
    description=(
        "Streams deterministic mutation batches (edge insert/delete, "
        "node-weight bumps) over a base graph and re-solves every "
        "version warm-started from the previous run's resume state "
        "via resume(..., allow=MutationCompat(batch)), repairing only "
        "the mutation's influence region.  Rows compare the repair "
        "cost (cumulative-round delta) against solving each version "
        "from scratch, and gate that every incremental solution is "
        "certified feasible on its mutated graph with objectives "
        "matching scratch within the algorithm's guarantee.  All "
        "measures are round counters and flags — never wall-clock — "
        "so BENCH_churn.json is byte-deterministic and CI cmp-gates "
        "the committed artifact."
    ),
    tags=("dynamic", "churn", "resume"),
    sections=(
        Section(
            name="maxis_repair",
            title="churn-a: Algorithm 2 repair cost vs batch size "
                  "(G(80, 0.06), weights ≤ 64)",
            measurement="churn",
            grid=tuple(
                {"graph": _sparse_gnp(80, 0.06, 3,
                                      node_w={"max_weight": 64,
                                              "seed": 2}),
                 "algorithm": "maxis-layers",
                 "batches": 3, "batch_size": bs}
                for bs in (1, 2, 4, 8)
            ),
            seeds=(0,),
            checks=(
                _rows_check("incremental_sound", _churn_sound),
                _rows_check("small_batches_win", _churn_small_batches_win),
            ),
        ),
        Section(
            name="matching_repair",
            title="churn-b: proposal matcher repair cost vs batch size "
                  "(G(120, 0.04))",
            measurement="churn",
            grid=tuple(
                {"graph": _sparse_gnp(120, 0.04, 5),
                 "algorithm": "matching-proposal", "eps": 0.5,
                 "batches": 3, "batch_size": bs}
                for bs in (1, 4)
            ),
            seeds=(0,),
            checks=(
                _rows_check("incremental_sound", _churn_sound),
                _rows_check(
                    "small_batch_beats_scratch",
                    lambda rows: _assert(
                        rows[0]["speedup_rounds"] >= 1.2,
                        f"bs=1 speedup {rows[0]['speedup_rounds']}x "
                        "below the 1.2x gate"),
                ),
            ),
        ),
        Section(
            name="backend",
            title="churn-c: object vs array backend — identical "
                  "incremental repair, counter for counter",
            measurement="churn",
            grid=tuple(
                {"graph": _sparse_gnp(80, 0.06, 3,
                                      node_w={"max_weight": 64,
                                              "seed": 2}),
                 "algorithm": "maxis-layers",
                 "batches": 3, "batch_size": 2, "backend": backend}
                for backend in (None, "array")
            ),
            seeds=(0,),
            checks=(
                _rows_check("backend_parity", _churn_backend_parity),
            ),
        ),
    ),
))
