"""Artifact diffing across commits (``python -m repro bench --diff``).

``BENCH_*.json`` artifacts are byte-deterministic by design, so a
plain ``cmp`` answers "did anything change?".  This module answers the
follow-up questions: *what* changed, and is any of it a regression?

* **Check regressions** — a check that passed in the old artifact and
  fails in the new one, a newly added check that fails, or a
  previously *passing* check that disappeared (deleting a check must
  not launder a failure).  These are the gate: ``bench --diff OLD
  NEW`` exits non-zero iff any exist.
* **Row drift** — per-section, per-row field deltas (absolute and
  percentage for numeric fields).  For the one non-byte-deterministic
  artifact, ``BENCH_perf.json``, whose measures *are* wall-clock
  numbers, this is the timing-trend tracker: diff two recorded
  artifacts from different commits to see p50/p95/speedup movement.
* **Timing blocks** — when both artifacts carry the opt-in top-level
  ``timing`` block, per-section wall-clock deltas are reported too.

The diff never mutates or re-runs anything; it is pure artifact
archaeology, so it works on artifacts recorded by CI for commits you
never checked out.
"""

from __future__ import annotations

from numbers import Number
from typing import Dict, List, Optional

#: Section outcome labels used in the diff record.
_ADDED = "added"
_REMOVED = "removed"


def _is_number(value) -> bool:
    return isinstance(value, Number) and not isinstance(value, bool)


def _delta(old, new) -> Dict:
    """One field-level delta record (numeric deltas when possible)."""

    record: Dict = {"old": old, "new": new}
    if _is_number(old) and _is_number(new):
        record["delta"] = new - old
        if old:
            record["pct"] = 100.0 * (new - old) / abs(old)
    return record


def _row_drift(old_rows: List[dict], new_rows: List[dict]) -> List[Dict]:
    """Field-by-field comparison of two row lists, zipped by index."""

    drift: List[Dict] = []
    for index, (old_row, new_row) in enumerate(zip(old_rows, new_rows)):
        if not isinstance(old_row, dict) or not isinstance(new_row, dict):
            continue
        for field in sorted(set(old_row) | set(new_row)):
            old_value = old_row.get(field)
            new_value = new_row.get(field)
            if old_value != new_value:
                drift.append({"row": index, "field": field,
                              **_delta(old_value, new_value)})
    if len(old_rows) != len(new_rows):
        drift.append({"row": None, "field": "<row count>",
                      **_delta(len(old_rows), len(new_rows))})
    return drift


def _timing_seconds(block) -> Optional[float]:
    """Flatten a timing section entry (float, or dict with p50) to one
    representative seconds figure."""

    if _is_number(block):
        return float(block)
    if isinstance(block, dict):
        for key in ("p50", "seconds"):
            if _is_number(block.get(key)):
                return float(block[key])
    return None


def diff_artifacts(old: Dict, new: Dict) -> Dict:
    """Compare two ``repro-bench/1`` artifacts.

    Returns a JSON-able record with ``regressions`` (checks that went
    passing → failing), ``added_failing`` (checks that only exist in
    the new artifact and fail), ``fixes`` (failing → passing),
    per-section ``drift`` rows, optional ``timing`` deltas, and the
    aggregate ``regression_count`` the CLI turns into its exit code.
    """

    old_sections = {s.get("name"): s for s in old.get("sections", ())}
    new_sections = {s.get("name"): s for s in new.get("sections", ())}

    regressions: List[Dict] = []
    added_failing: List[Dict] = []
    removed_checks: List[Dict] = []
    fixes: List[Dict] = []
    sections: List[Dict] = []

    for name in sorted(set(old_sections) | set(new_sections), key=str):
        if name not in new_sections:
            sections.append({"name": name, "status": _REMOVED, "drift": []})
            continue
        if name not in old_sections:
            sections.append({"name": name, "status": _ADDED, "drift": []})
            for check in new_sections[name].get("checks", ()):
                if check.get("passed") is False:
                    added_failing.append({
                        "section": name, "check": check.get("name"),
                        "detail": check.get("detail", ""),
                    })
            continue

        old_section = old_sections[name]
        new_section = new_sections[name]
        old_checks = {c.get("name"): c for c in old_section.get("checks", ())}
        new_checks = {c.get("name"): c for c in new_section.get("checks", ())}
        for check_name, new_check in new_checks.items():
            old_check = old_checks.get(check_name)
            record = {"section": name, "check": check_name,
                      "detail": new_check.get("detail", "")}
            if old_check is None:
                if new_check.get("passed") is False:
                    added_failing.append(record)
            elif old_check.get("passed") and not new_check.get("passed"):
                regressions.append(record)
            elif not old_check.get("passed") and new_check.get("passed"):
                fixes.append(record)
        for check_name, old_check in old_checks.items():
            if check_name not in new_checks:
                # A check that silently disappeared is a coverage loss;
                # a *passing* one vanishing gates like a regression
                # (deleting the check must not launder a failure).
                removed_checks.append({
                    "section": name, "check": check_name,
                    "was_passing": bool(old_check.get("passed")),
                })

        drift = _row_drift(list(old_section.get("rows", ())),
                           list(new_section.get("rows", ())))
        status = "changed" if drift else "unchanged"
        sections.append({"name": name, "status": status, "drift": drift})

    removed_passing = sum(1 for r in removed_checks if r["was_passing"])
    diff: Dict = {
        "old_experiment": old.get("experiment"),
        "new_experiment": new.get("experiment"),
        "regressions": regressions,
        "added_failing": added_failing,
        "removed_checks": removed_checks,
        "fixes": fixes,
        "sections": sections,
        "regression_count": (len(regressions) + len(added_failing)
                             + removed_passing),
    }

    old_timing = old.get("timing", {}).get("sections", {})
    new_timing = new.get("timing", {}).get("sections", {})
    shared = sorted(set(old_timing) & set(new_timing), key=str)
    timing = {}
    for name in shared:
        old_seconds = _timing_seconds(old_timing[name])
        new_seconds = _timing_seconds(new_timing[name])
        if old_seconds is not None and new_seconds is not None:
            timing[name] = _delta(old_seconds, new_seconds)
    if timing:
        diff["timing"] = timing
    return diff


def render_diff(diff: Dict) -> str:
    """Human-readable rendering of a :func:`diff_artifacts` record."""

    lines: List[str] = []
    old_name = diff.get("old_experiment")
    new_name = diff.get("new_experiment")
    title = old_name if old_name == new_name else f"{old_name} → {new_name}"
    lines.append(f"artifact diff: {title}")
    if old_name != new_name:
        lines.append("warning: artifacts are from different experiments")

    for record in diff["regressions"]:
        lines.append(
            f"REGRESSION {record['section']}.{record['check']}: "
            f"{record['detail']}"
        )
    for record in diff["added_failing"]:
        lines.append(
            f"NEW FAILING {record['section']}.{record['check']}: "
            f"{record['detail']}"
        )
    for record in diff["removed_checks"]:
        label = ("REMOVED CHECK" if record["was_passing"]
                 else "removed check (was failing)")
        lines.append(f"{label} {record['section']}.{record['check']}")
    for record in diff["fixes"]:
        lines.append(f"fixed      {record['section']}.{record['check']}")

    for section in diff["sections"]:
        if section["status"] in (_ADDED, _REMOVED):
            lines.append(f"section {section['name']}: {section['status']}")
            continue
        for entry in section["drift"]:
            where = (f"{section['name']}[{entry['row']}].{entry['field']}"
                     if entry["row"] is not None
                     else f"{section['name']}.{entry['field']}")
            if "pct" in entry:
                lines.append(
                    f"  {where}: {entry['old']} -> {entry['new']} "
                    f"({entry['pct']:+.1f}%)"
                )
            else:
                lines.append(f"  {where}: {entry['old']!r} -> "
                             f"{entry['new']!r}")

    for name, entry in diff.get("timing", {}).items():
        pct = f" ({entry['pct']:+.1f}%)" if "pct" in entry else ""
        lines.append(
            f"  timing {name}: {entry['old']:.4f}s -> "
            f"{entry['new']:.4f}s{pct}"
        )

    if diff["regression_count"]:
        lines.append(f"{diff['regression_count']} check regression(s)")
    elif len(lines) == 1:
        lines.append("no differences")
    return "\n".join(lines)


__all__ = ["diff_artifacts", "render_diff"]
