"""Measurement adapters: the bridge from specs to the algorithms.

Every adapter has the uniform signature::

    fn(graph, seed, **params) -> (measures, metrics)

where ``measures`` is a flat JSON-able dict (ints, floats, strings,
lists) and ``metrics`` is the :class:`~repro.congest.NetworkMetrics`
of the simulated network when the algorithm runs through the
simulator, else ``None``.  Adapters never touch wall-clock time — the
runner owns timing — so trial records stay bit-deterministic.

Oracle comparisons (exact MWIS / Edmonds) are opt-in per cell via the
``oracle=True`` parameter because they are exponential/cubic and only
affordable on small instances.
"""

from __future__ import annotations

from ..analysis import approximation_ratio
from ..congest import CongestionAudit, SynchronousNetwork
from ..core import (
    BipartiteAugmentingPhase,
    LayerTrace,
    bipartite_proposal_matching,
    congest_matching_1eps,
    enumerate_augmenting_paths,
    fast_matching_2eps,
    fast_matching_weighted_2eps,
    general_proposal_matching,
    lemma_b13_rounds,
    local_matching_1eps,
    matching_local_ratio,
    maxis_local_ratio_coloring,
    maxis_local_ratio_layers,
    optimal_k,
    residual_decay_series,
    theorem_2_8_simulation_cost,
    theorem_3_1_budget,
    weight_group_matching,
)
from ..graphs import max_degree
from ..matching import (
    bipartite_sides,
    greedy_weighted_matching,
    israeli_itai_matching,
    matching_weight,
    optimum_cardinality,
    optimum_weight,
)
from ..mis import (
    GoldenRoundStats,
    exact_mwis,
    luby_mis,
    mwis_weight,
    nearly_maximal_is,
    nmis_plus_luby_mis,
)
from .registry import register_measurement

__all__ = ["register_measurement"]


# ----------------------------------------------------------------------
# MaxIS (Algorithms 2 and 3)
# ----------------------------------------------------------------------
@register_measurement("maxis_layers")
def _maxis_layers(graph, seed, oracle=False, trace=False):
    """Algorithm 2 (local-ratio by weight layers) on the simulator."""

    network = SynchronousNetwork(graph, seed=seed)
    layer_trace = LayerTrace() if trace else None
    result = maxis_local_ratio_layers(graph, seed=seed, network=network,
                                      trace=layer_trace)
    measures = {
        "rounds": result.rounds,
        "size": len(result.independent_set),
        "weight": result.weight,
        "delta": max_degree(graph),
    }
    if trace:
        series = layer_trace.top_layer_series()
        measures["top_layer_series"] = list(series)
        measures["phases"] = len(series)
        measures["layer_drops"] = sum(
            1 for a, b in zip(series, series[1:]) if b < a
        )
        measures["initial_top"] = series[0] if series else 0
    if oracle:
        optimum = mwis_weight(graph, exact_mwis(graph))
        measures["optimum"] = optimum
        measures["ratio"] = approximation_ratio(optimum, result.weight)
    return measures, network.metrics


@register_measurement("maxis_coloring")
def _maxis_coloring(graph, seed, oracle=False, check_deterministic=False):
    """Algorithm 3 (local-ratio by coloring); ``seed`` is unused (it is
    deterministic) but kept for the uniform signature."""

    network = SynchronousNetwork(graph, seed=seed)
    result = maxis_local_ratio_coloring(graph, network=network)
    measures = {
        "lr_rounds": result.local_ratio_rounds,
        "accounted": result.accounted_rounds,
        "size": len(result.independent_set),
        "weight": result.weight,
        "delta": max_degree(graph),
    }
    if check_deterministic:
        again = maxis_local_ratio_coloring(graph)
        measures["deterministic"] = (
            again.independent_set == result.independent_set
        )
    if oracle:
        optimum = mwis_weight(graph, exact_mwis(graph))
        measures["optimum"] = optimum
        measures["ratio"] = approximation_ratio(optimum, result.weight)
    return measures, network.metrics


# ----------------------------------------------------------------------
# Matching pipelines
# ----------------------------------------------------------------------
@register_measurement("matching_lines")
def _matching_lines(graph, seed, method="layers", oracle=False, audit=False):
    """2-approx MWM via MaxIS on the line graph (Theorem 2.10)."""

    congestion = CongestionAudit() if audit else None
    result = matching_local_ratio(graph, method=method, seed=seed,
                                  audit=congestion)
    measures = {
        "rounds": result.rounds,
        "size": len(result.matching),
        "weight": result.weight,
        "delta": max_degree(graph),
    }
    if audit:
        measures["naive_max"] = congestion.max_naive_load()
        measures["aggregated_max"] = congestion.max_aggregated_load()
    if oracle:
        optimum = optimum_weight(graph)
        measures["optimum"] = optimum
        measures["ratio"] = approximation_ratio(optimum, result.weight)
    return measures, None


@register_measurement("weight_groups")
def _weight_groups(graph, seed, oracle=False):
    """Footnote-5 weight-group 2-approx MWM directly on G."""

    result = weight_group_matching(graph, seed=seed)
    measures = {
        "rounds": result.rounds,
        "size": len(result.matching),
        "weight": result.weight,
    }
    if oracle:
        optimum = optimum_weight(graph)
        measures["optimum"] = optimum
        measures["ratio"] = approximation_ratio(optimum, result.weight)
    return measures, None


@register_measurement("fast2eps")
def _fast2eps(graph, seed, eps=0.5, k=None, oracle=False):
    """(2+ε)-approx MCM (Theorem 3.2)."""

    kwargs = {} if k is None else {"k": k}
    result = fast_matching_2eps(graph, eps=eps, seed=seed, **kwargs)
    measures = {
        "rounds": result.rounds,
        "size": len(result.matching),
        "delta": max_degree(graph),
    }
    if oracle:
        optimum = optimum_cardinality(graph)
        measures["optimum"] = optimum
        measures["ratio"] = approximation_ratio(optimum,
                                                len(result.matching))
    return measures, None


@register_measurement("fast2eps_weighted")
def _fast2eps_weighted(graph, seed, eps=0.5, beta_bucket=None, oracle=False):
    """(2+ε)-approx MWM (Appendix B.1 pipeline)."""

    kwargs = {} if beta_bucket is None else {"beta_bucket": beta_bucket}
    result = fast_matching_weighted_2eps(graph, eps=eps, seed=seed, **kwargs)
    measures = {
        "rounds": result.rounds,
        "size": len(result.matching),
        "weight": result.weight,
    }
    if oracle:
        optimum = optimum_weight(graph)
        measures["optimum"] = optimum
        measures["ratio"] = approximation_ratio(optimum, result.weight)
    return measures, None


@register_measurement("oneeps_local")
def _oneeps_local(graph, seed, eps=0.5, oracle=False):
    """(1+ε)-approx MCM, LOCAL model (Theorem B.4)."""

    result = local_matching_1eps(graph, eps=eps, seed=seed)
    measures = {
        "rounds": result.rounds,
        "found": result.cardinality,
        "deactivated": len(result.deactivated),
    }
    if oracle:
        measures["opt"] = optimum_cardinality(graph)
    return measures, None


@register_measurement("oneeps_congest")
def _oneeps_congest(graph, seed, eps=0.5, oracle=False):
    """(1+ε)-approx MCM, CONGEST model (Theorem B.7)."""

    result = congest_matching_1eps(graph, eps=eps, seed=seed)
    measures = {
        "rounds": result.rounds,
        "found": result.cardinality,
        "deactivated": len(result.deactivated),
        "stages": result.stages,
    }
    if oracle:
        measures["opt"] = optimum_cardinality(graph)
    return measures, None


# ----------------------------------------------------------------------
# Proposal matching (Appendix B.4)
# ----------------------------------------------------------------------
@register_measurement("proposal_bipartite")
def _proposal_bipartite(graph, seed, phases=None):
    """Lemma B.13 proposal rounds on a bipartite instance."""

    left, right = bipartite_sides(graph)
    network = SynchronousNetwork(graph, seed=seed)
    result = bipartite_proposal_matching(graph, left, right, seed=seed,
                                         network=network, phases=phases)
    return {
        "matched": len(result.matching),
        "unlucky_left": len(result.unlucky & left),
        "left_size": len(left),
    }, network.metrics


@register_measurement("proposal_general")
def _proposal_general(graph, seed, eps=0.25, oracle=False):
    """Lemma B.14 general-graph wrapper."""

    matching, rounds, _ledger = general_proposal_matching(graph, eps=eps,
                                                          seed=seed)
    measures = {"found": len(matching), "rounds": rounds}
    if oracle:
        opt = optimum_cardinality(graph)
        measures["opt"] = opt
        measures["ok"] = (2 + eps) * len(matching) >= opt
    return measures, None


@register_measurement("proposal_budget")
def _proposal_budget(graph, seed, delta=8, eps=0.25):
    """Analytic Lemma B.13 phase budgets (no simulation)."""

    k_star = optimal_k(delta, eps)
    return {
        "k_star": k_star,
        "budget_k2": lemma_b13_rounds(delta, eps, 2),
        "budget_kstar": lemma_b13_rounds(delta, eps, k_star),
    }, None


# ----------------------------------------------------------------------
# MIS engines and NMIS decay (Section 3)
# ----------------------------------------------------------------------
@register_measurement("mis_engines")
def _mis_engines(graph, seed):
    """Luby vs the NMIS+Luby composite on the same instance/seed."""

    network = SynchronousNetwork(graph, seed=seed)
    _, luby_rounds = luby_mis(graph, seed=seed, network=network)
    _, composite_rounds = nmis_plus_luby_mis(graph, seed=seed)
    return {
        "luby_rounds": luby_rounds,
        "composite_rounds": composite_rounds,
    }, network.metrics


@register_measurement("residual_decay")
def _residual_decay(graph, seed, k=2, max_iterations=14, num_seeds=4):
    """Theorem 3.1 residual-mass decay curve (mean over seeds)."""

    series = residual_decay_series(
        graph, k=k, max_iterations=max_iterations,
        seeds=range(seed, seed + num_seeds),
    )
    return {"series": [float(x) for x in series]}, None


@register_measurement("golden_rounds")
def _golden_rounds(graph, seed, iterations=25, k=2):
    """Lemma B.1/B.2 golden-round occurrence statistics."""

    stats = GoldenRoundStats()
    nearly_maximal_is(graph, iterations=iterations, k=k, seed=seed,
                      stats=stats)
    return {
        "type1_nodes": len(stats.type1),
        "type2_nodes": len(stats.type2),
        "type1_total": sum(stats.type1.values()),
        "type2_total": sum(stats.type2.values()),
    }, None


@register_measurement("nmis_budget_residual")
def _nmis_budget_residual(graph, seed, delta=6, k=2.0, failure_delta=0.05,
                          num_seeds=5):
    """Residual rate after running for the Theorem 3.1 budget."""

    budget = theorem_3_1_budget(delta, k, failure_delta)
    residuals = 0
    total = 0
    for s in range(seed, seed + num_seeds):
        _, residual, _ = nearly_maximal_is(graph, iterations=budget,
                                           k=int(k), seed=s)
        residuals += len(residual)
        total += graph.number_of_nodes()
    return {
        "budget": budget,
        "failure_delta": failure_delta,
        "rate": residuals / total,
    }, None


# ----------------------------------------------------------------------
# Congestion accounting (Theorem 2.8) and baselines
# ----------------------------------------------------------------------
@register_measurement("t28_cost")
def _t28_cost(graph, seed):
    """Analytic per-edge load of one line-graph round (Theorem 2.8)."""

    cost = theorem_2_8_simulation_cost(graph)
    return {
        "delta": max_degree(graph),
        "naive_max": cost.naive_max_load,
        "aggregated_max": cost.aggregated_max_load,
        "naive_total": cost.naive_total,
        "aggregated_total": cost.aggregated_total,
    }, None


@register_measurement("weighted_matchers")
def _weighted_matchers(graph, seed, eps=0.5):
    """Ours vs maximal/greedy baselines on one weighted instance."""

    opt = optimum_weight(graph)
    local_ratio = matching_local_ratio(graph, method="layers", seed=seed)
    fast = fast_matching_weighted_2eps(graph, eps=eps, seed=seed)
    maximal, _ = israeli_itai_matching(graph, seed=seed)
    greedy = greedy_weighted_matching(graph)
    return {
        "lr2_ratio": approximation_ratio(opt, local_ratio.weight),
        "fast2eps_ratio": approximation_ratio(opt, fast.weight),
        "maximal_ratio": approximation_ratio(
            opt, matching_weight(graph, maximal)),
        "greedy_ratio": approximation_ratio(
            opt, matching_weight(graph, greedy)),
    }, None


@register_measurement("lines_vs_groups")
def _lines_vs_groups(graph, seed):
    """L(G) formulation vs footnote-5 weight groups on one instance."""

    opt = optimum_weight(graph)
    via_lines = matching_local_ratio(graph, method="layers", seed=seed)
    direct = weight_group_matching(graph, seed=seed)
    return {
        "lines_ratio": approximation_ratio(opt, via_lines.weight),
        "lines_rounds": via_lines.rounds,
        "groups_ratio": approximation_ratio(opt, direct.weight),
        "groups_rounds": direct.rounds,
    }, None


@register_measurement("fast_vs_maximal_rounds")
def _fast_vs_maximal_rounds(graph, seed, eps=0.5, num_seeds=3):
    """Round scaling of fast (2+ε) vs the Israeli–Itai baseline."""

    opt = optimum_cardinality(graph)
    fast_rounds = []
    ratios = []
    for s in range(seed, seed + num_seeds):
        fast = fast_matching_2eps(graph, eps=eps, seed=s)
        fast_rounds.append(fast.rounds)
        ratios.append(approximation_ratio(opt, len(fast.matching)))
    maximal, ii_rounds = israeli_itai_matching(graph, seed=seed)
    return {
        "fast_rounds": sum(fast_rounds) / len(fast_rounds),
        "israeli_itai_rounds": ii_rounds,
        "fast_ratio": max(ratios),
        "maximal_ratio": approximation_ratio(opt, len(maximal)),
    }, None


# ----------------------------------------------------------------------
# Figure 1 (Claims B.5/B.6 traversals)
# ----------------------------------------------------------------------
def _greedy_matching_sorted(graph):
    matching, used = set(), set()
    for u, v in sorted(graph.edges, key=repr):
        if u not in used and v not in used:
            matching.add(frozenset((u, v)))
            used |= {u, v}
    return matching


@register_measurement("figure1_counts")
def _figure1_counts(graph, seed, greedy_matching=False):
    """Forward/backward augmenting-path counts vs brute force.

    The matching comes from the graph attribute ``matching`` (the
    curated Figure 1 instance) or — with ``greedy_matching`` — from a
    deterministic greedy pass, so length-3 paths are the shortest.
    """

    a_side, b_side = bipartite_sides(graph)
    if greedy_matching:
        matching = _greedy_matching_sorted(graph)
    else:
        matching = {frozenset(pair) for pair in graph.graph["matching"]}
    phase = BipartiteAugmentingPhase(graph, a_side, b_side, matching,
                                     d=3, eps=0.5, seed=seed)
    counts, contrib, raw = phase._forward(phase.scope, use_alpha=False)
    through = phase._backward(counts, contrib, raw)

    paths = enumerate_augmenting_paths(graph, matching, 3)
    end_counts = {}
    node_counts = {}
    for p in paths:
        end = p[-1] if p[-1] in b_side else p[0]
        end_counts[end] = end_counts.get(end, 0) + 1
        for v in p:
            node_counts[v] = node_counts.get(v, 0) + 1

    forward_err = max(
        (abs(counts.get(b, 0) - c) for b, c in end_counts.items()),
        default=0.0,
    )
    through_err = max(
        (abs(through.get(v, 0) - c) for v, c in node_counts.items()),
        default=0.0,
    )
    measures = {
        "paths": len(paths),
        "forward_err": float(forward_err),
        "through_err": float(through_err),
        "node_rows": [
            {
                "node": str(v),
                "forward_b5": float(counts.get(v, 0.0)),
                "through_b6": float(through.get(v, 0.0)),
                "brute_force": node_counts.get(v, 0),
            }
            for v in sorted(graph.nodes, key=str)
        ],
    }
    return measures, None


# ----------------------------------------------------------------------
# Simulator micro-benchmark (CI smoke / perf tracking)
# ----------------------------------------------------------------------
@register_measurement("simulator_microbench")
def _simulator_microbench(graph, seed, model="CONGEST"):
    """One full Algorithm-2 protocol run through the simulator.

    The measures are exact simulator counters — rounds, messages,
    bits — which double as a behavioural fingerprint: any change to
    the message-passing core that alters delivery or metering shows up
    as a diff here, and the smoke gate pins them.  Wall-clock speed is
    reported by the runner's ``--timing`` mode, never here.
    """

    network = SynchronousNetwork(graph, model=model, seed=seed)
    result = maxis_local_ratio_layers(graph, seed=seed, network=network)
    return {
        "rounds": result.rounds,
        "messages": network.metrics.messages,
        "bits": network.metrics.bits,
        "max_bits_per_edge_round":
            network.metrics.max_bits_per_edge_round,
        "violations": network.metrics.violations,
        "is_weight": result.weight,
        "n": graph.number_of_nodes(),
    }, network.metrics
