"""Measurement adapters: the bridge from specs to the algorithms.

Every adapter has the uniform signature::

    fn(graph, seed, **params) -> (measures, metrics)

where ``measures`` is a flat JSON-able dict (ints, floats, strings,
lists) and ``metrics`` is the :class:`~repro.congest.NetworkMetrics`
of the simulated network when the algorithm runs through the
simulator, else ``None``.  Adapters never touch wall-clock time — the
runner owns timing — so trial records stay bit-deterministic.

Since the :mod:`repro.api` facade landed, adapters that *run* an
algorithm are one-liners over :func:`repro.api.solve` — the shared
``_solved`` helper owns the seed/ε plumbing that used to be
copy-pasted per adapter, and the shared ``_oracle`` helper owns the
opt-in exact-optimum comparison (exponential MWIS / cubic Edmonds, so
only affordable on small instances and requested per cell via
``oracle=True``).  Only the analytic adapters (budget formulas, decay
curves, Figure-1 traversals) still reach into the library directly.
"""

from __future__ import annotations

from typing import Optional

from ..analysis import approximation_ratio
from ..api import Instance, SolveReport, solve
from ..congest import CongestionAudit
from ..core import (
    BipartiteAugmentingPhase,
    LayerTrace,
    enumerate_augmenting_paths,
    lemma_b13_rounds,
    optimal_k,
    residual_decay_series,
    theorem_2_8_simulation_cost,
    theorem_3_1_budget,
)
from ..graphs import max_degree
from ..matching import (
    bipartite_sides,
    matching_weight,
    optimum_cardinality,
    optimum_weight,
)
from ..mis import (
    GoldenRoundStats,
    nearly_maximal_is,
    nmis_plus_luby_mis,
)
from .registry import register_measurement

__all__ = ["register_measurement"]


# ----------------------------------------------------------------------
# shared facade/oracle plumbing (one copy, not one per adapter)
# ----------------------------------------------------------------------
def _solved(graph, seed, algorithm: str, eps: Optional[float] = None,
            model: Optional[str] = None, **options) -> SolveReport:
    """Run ``algorithm`` through the facade with the adapter's seed/ε.

    ``eps=None`` keeps the :class:`~repro.api.Instance` default so
    ε-oblivious algorithms are not parameterized spuriously.
    """

    kwargs = {} if eps is None else {"eps": eps}
    return solve(Instance(graph, model=model, seed=seed, **kwargs),
                 algorithm, **options)


def _oracle(measures: dict, report: SolveReport, opt_key: str = "optimum",
            ratio_key: Optional[str] = "ratio",
            ok_key: Optional[str] = None) -> dict:
    """Attach the exact-optimum comparison under the adapter's key names."""

    comparison = report.compare()
    measures[opt_key] = comparison["optimum"]
    if ratio_key is not None:
        measures[ratio_key] = comparison["ratio"]
    if ok_key is not None:
        measures[ok_key] = comparison["within_bound"]
    return measures


# ----------------------------------------------------------------------
# MaxIS (Algorithms 2 and 3)
# ----------------------------------------------------------------------
@register_measurement("maxis_layers")
def _maxis_layers(graph, seed, oracle=False, trace=False):
    """Algorithm 2 (local-ratio by weight layers) on the simulator."""

    layer_trace = LayerTrace() if trace else None
    report = _solved(graph, seed, "maxis-layers", trace=layer_trace)
    measures = {
        "rounds": report.rounds,
        "size": report.size,
        "weight": report.objective,
        "delta": max_degree(graph),
    }
    if trace:
        series = layer_trace.top_layer_series()
        measures["top_layer_series"] = list(series)
        measures["phases"] = len(series)
        measures["layer_drops"] = sum(
            1 for a, b in zip(series, series[1:]) if b < a
        )
        measures["initial_top"] = series[0] if series else 0
    if oracle:
        _oracle(measures, report)
    return measures, report.metrics


@register_measurement("maxis_coloring")
def _maxis_coloring(graph, seed, oracle=False, check_deterministic=False):
    """Algorithm 3 (local-ratio by coloring); ``seed`` is unused (it is
    deterministic) but kept for the uniform signature."""

    report = _solved(graph, seed, "maxis-coloring")
    measures = {
        "lr_rounds": report.extras["local_ratio_rounds"],
        "accounted": report.extras["accounted_rounds"],
        "size": report.size,
        "weight": report.objective,
        "delta": max_degree(graph),
    }
    if check_deterministic:
        again = _solved(graph, 0, "maxis-coloring")
        measures["deterministic"] = (again.solution == report.solution)
    if oracle:
        _oracle(measures, report)
    return measures, report.metrics


# ----------------------------------------------------------------------
# Matching pipelines
# ----------------------------------------------------------------------
@register_measurement("matching_lines")
def _matching_lines(graph, seed, method="layers", oracle=False, audit=False):
    """2-approx MWM via MaxIS on the line graph (Theorem 2.10)."""

    congestion = CongestionAudit() if audit else None
    report = _solved(graph, seed, "matching-lines", method=method,
                     audit=congestion)
    measures = {
        "rounds": report.rounds,
        "size": report.size,
        "weight": report.objective,
        "delta": max_degree(graph),
    }
    if audit:
        measures["naive_max"] = congestion.max_naive_load()
        measures["aggregated_max"] = congestion.max_aggregated_load()
    if oracle:
        _oracle(measures, report)
    return measures, None


@register_measurement("weight_groups")
def _weight_groups(graph, seed, oracle=False):
    """Footnote-5 weight-group 2-approx MWM directly on G."""

    report = _solved(graph, seed, "matching-groups")
    measures = {
        "rounds": report.rounds,
        "size": report.size,
        "weight": report.objective,
    }
    if oracle:
        _oracle(measures, report)
    return measures, None


@register_measurement("fast2eps")
def _fast2eps(graph, seed, eps=0.5, k=None, oracle=False):
    """(2+ε)-approx MCM (Theorem 3.2)."""

    report = _solved(graph, seed, "matching-fast2eps", eps=eps, k=k)
    measures = {
        "rounds": report.rounds,
        "size": report.size,
        "delta": max_degree(graph),
    }
    if oracle:
        _oracle(measures, report)
    return measures, None


@register_measurement("fast2eps_weighted")
def _fast2eps_weighted(graph, seed, eps=0.5, beta_bucket=None, oracle=False):
    """(2+ε)-approx MWM (Appendix B.1 pipeline)."""

    report = _solved(graph, seed, "matching-fast2eps-weighted", eps=eps,
                     beta_bucket=beta_bucket)
    measures = {
        "rounds": report.rounds,
        "size": report.size,
        "weight": report.objective,
    }
    if oracle:
        _oracle(measures, report)
    return measures, None


@register_measurement("oneeps_local")
def _oneeps_local(graph, seed, eps=0.5, oracle=False):
    """(1+ε)-approx MCM, LOCAL model (Theorem B.4)."""

    report = _solved(graph, seed, "matching-oneeps", eps=eps)
    measures = {
        "rounds": report.rounds,
        "found": report.objective,
        "deactivated": len(report.extras["deactivated"]),
    }
    if oracle:
        _oracle(measures, report, opt_key="opt", ratio_key=None)
    return measures, None


@register_measurement("oneeps_congest")
def _oneeps_congest(graph, seed, eps=0.5, oracle=False):
    """(1+ε)-approx MCM, CONGEST model (Theorem B.7)."""

    report = _solved(graph, seed, "matching-oneeps-congest", eps=eps)
    measures = {
        "rounds": report.rounds,
        "found": report.objective,
        "deactivated": len(report.extras["deactivated"]),
        "stages": report.extras["stages"],
    }
    if oracle:
        _oracle(measures, report, opt_key="opt", ratio_key=None)
    return measures, None


# ----------------------------------------------------------------------
# Proposal matching (Appendix B.4)
# ----------------------------------------------------------------------
@register_measurement("proposal_bipartite")
def _proposal_bipartite(graph, seed, phases=None):
    """Lemma B.13 proposal rounds on a bipartite instance."""

    left, _right = bipartite_sides(graph)
    # eps matches the legacy bipartite_proposal_matching default (0.25):
    # it sizes the k/phase budget when the grid omits `phases`.
    report = _solved(graph, seed, "matching-proposal-bipartite", eps=0.25,
                     phases=phases)
    return {
        "matched": report.size,
        "unlucky_left": len(report.extras["unlucky"] & left),
        "left_size": len(left),
    }, report.metrics


@register_measurement("proposal_general")
def _proposal_general(graph, seed, eps=0.25, oracle=False):
    """Lemma B.14 general-graph wrapper."""

    report = _solved(graph, seed, "matching-proposal", eps=eps)
    measures = {"found": report.size, "rounds": report.rounds}
    if oracle:
        _oracle(measures, report, opt_key="opt", ratio_key=None,
                ok_key="ok")
    return measures, None


@register_measurement("proposal_budget")
def _proposal_budget(graph, seed, delta=8, eps=0.25):
    """Analytic Lemma B.13 phase budgets (no simulation)."""

    k_star = optimal_k(delta, eps)
    return {
        "k_star": k_star,
        "budget_k2": lemma_b13_rounds(delta, eps, 2),
        "budget_kstar": lemma_b13_rounds(delta, eps, k_star),
    }, None


# ----------------------------------------------------------------------
# MIS engines and NMIS decay (Section 3)
# ----------------------------------------------------------------------
@register_measurement("mis_engines")
def _mis_engines(graph, seed):
    """Luby vs the NMIS+Luby composite on the same instance/seed."""

    luby = _solved(graph, seed, "mis-luby")
    _, composite_rounds = nmis_plus_luby_mis(graph, seed=seed)
    return {
        "luby_rounds": luby.rounds,
        "composite_rounds": composite_rounds,
    }, luby.metrics


@register_measurement("residual_decay")
def _residual_decay(graph, seed, k=2, max_iterations=14, num_seeds=4):
    """Theorem 3.1 residual-mass decay curve (mean over seeds)."""

    series = residual_decay_series(
        graph, k=k, max_iterations=max_iterations,
        seeds=range(seed, seed + num_seeds),
    )
    return {"series": [float(x) for x in series]}, None


@register_measurement("golden_rounds")
def _golden_rounds(graph, seed, iterations=25, k=2):
    """Lemma B.1/B.2 golden-round occurrence statistics."""

    stats = GoldenRoundStats()
    nearly_maximal_is(graph, iterations=iterations, k=k, seed=seed,
                      stats=stats)
    return {
        "type1_nodes": len(stats.type1),
        "type2_nodes": len(stats.type2),
        "type1_total": sum(stats.type1.values()),
        "type2_total": sum(stats.type2.values()),
    }, None


@register_measurement("nmis_budget_residual")
def _nmis_budget_residual(graph, seed, delta=6, k=2.0, failure_delta=0.05,
                          num_seeds=5):
    """Residual rate after running for the Theorem 3.1 budget."""

    budget = theorem_3_1_budget(delta, k, failure_delta)
    residuals = 0
    total = 0
    for s in range(seed, seed + num_seeds):
        _, residual, _ = nearly_maximal_is(graph, iterations=budget,
                                           k=int(k), seed=s)
        residuals += len(residual)
        total += graph.number_of_nodes()
    return {
        "budget": budget,
        "failure_delta": failure_delta,
        "rate": residuals / total,
    }, None


# ----------------------------------------------------------------------
# Anytime budget curves (the `budgets` experiment)
# ----------------------------------------------------------------------
@register_measurement("budget_curve")
def _budget_curve(graph, seed, algorithm="maxis-layers", budget=None,
                  eps=None, model=None, oracle=False,
                  bandwidth_factor=None):
    """One budgeted anytime solve: a point on the quality-vs-rounds curve.

    ``budget`` is forwarded as ``Instance.max_rounds`` (``None`` = run
    to completion); the measures record the partial/full objective,
    the rounds actually consumed, and the ``status`` so the checks can
    assert the anytime contract — truncated runs fit the budget, more
    budget never hurts, and the unbounded run completes.

    ``bandwidth_factor`` sweeps the CONGEST per-edge word width
    (``Instance.bandwidth_factor``, simulator default 8): bandwidth
    metering is observational, so the execution — objective, rounds,
    bits — is invariant along this axis while the recorded
    ``violations`` count falls as the word widens (the bandwidth
    checks in the ``budgets`` experiment pin exactly that).
    """

    kwargs = {} if eps is None else {"eps": eps}
    if bandwidth_factor is not None:
        kwargs["bandwidth_factor"] = bandwidth_factor
    report = solve(
        Instance(graph, model=model, seed=seed, max_rounds=budget,
                 **kwargs),
        algorithm,
    )
    measures = {
        "objective": report.objective,
        "size": report.size,
        "rounds": report.rounds,
        "status": report.status,
        "complete": report.status == "complete",
        "violations": (report.metrics.violations
                       if report.metrics is not None else None),
    }
    if oracle:
        _oracle(measures, report, ratio_key=None)
    return measures, report.metrics


# ----------------------------------------------------------------------
# Congestion accounting (Theorem 2.8) and baselines
# ----------------------------------------------------------------------
@register_measurement("t28_cost")
def _t28_cost(graph, seed):
    """Analytic per-edge load of one line-graph round (Theorem 2.8)."""

    cost = theorem_2_8_simulation_cost(graph)
    return {
        "delta": max_degree(graph),
        "naive_max": cost.naive_max_load,
        "aggregated_max": cost.aggregated_max_load,
        "naive_total": cost.naive_total,
        "aggregated_total": cost.aggregated_total,
    }, None


@register_measurement("weighted_matchers")
def _weighted_matchers(graph, seed, eps=0.5):
    """Ours vs maximal/greedy baselines on one weighted instance."""

    opt = optimum_weight(graph)
    local_ratio = _solved(graph, seed, "matching-lines")
    fast = _solved(graph, seed, "matching-fast2eps-weighted", eps=eps)
    maximal = _solved(graph, seed, "matching-israeli-itai")
    greedy = _solved(graph, seed, "matching-greedy")
    return {
        "lr2_ratio": approximation_ratio(opt, local_ratio.objective),
        "fast2eps_ratio": approximation_ratio(opt, fast.objective),
        "maximal_ratio": approximation_ratio(
            opt, matching_weight(graph, maximal.solution)),
        "greedy_ratio": approximation_ratio(opt, greedy.objective),
    }, None


@register_measurement("lines_vs_groups")
def _lines_vs_groups(graph, seed):
    """L(G) formulation vs footnote-5 weight groups on one instance."""

    opt = optimum_weight(graph)
    via_lines = _solved(graph, seed, "matching-lines")
    direct = _solved(graph, seed, "matching-groups")
    return {
        "lines_ratio": approximation_ratio(opt, via_lines.objective),
        "lines_rounds": via_lines.rounds,
        "groups_ratio": approximation_ratio(opt, direct.objective),
        "groups_rounds": direct.rounds,
    }, None


@register_measurement("fast_vs_maximal_rounds")
def _fast_vs_maximal_rounds(graph, seed, eps=0.5, num_seeds=3):
    """Round scaling of fast (2+ε) vs the Israeli–Itai baseline."""

    opt = optimum_cardinality(graph)
    fast_rounds = []
    ratios = []
    for s in range(seed, seed + num_seeds):
        fast = _solved(graph, s, "matching-fast2eps", eps=eps)
        fast_rounds.append(fast.rounds)
        ratios.append(approximation_ratio(opt, fast.objective))
    maximal = _solved(graph, seed, "matching-israeli-itai")
    return {
        "fast_rounds": sum(fast_rounds) / len(fast_rounds),
        "israeli_itai_rounds": maximal.rounds,
        "fast_ratio": max(ratios),
        "maximal_ratio": approximation_ratio(opt, maximal.size),
    }, None


# ----------------------------------------------------------------------
# Figure 1 (Claims B.5/B.6 traversals)
# ----------------------------------------------------------------------
def _greedy_matching_sorted(graph):
    matching, used = set(), set()
    for u, v in sorted(graph.edges, key=repr):
        if u not in used and v not in used:
            matching.add(frozenset((u, v)))
            used |= {u, v}
    return matching


@register_measurement("figure1_counts")
def _figure1_counts(graph, seed, greedy_matching=False):
    """Forward/backward augmenting-path counts vs brute force.

    The matching comes from the graph attribute ``matching`` (the
    curated Figure 1 instance) or — with ``greedy_matching`` — from a
    deterministic greedy pass, so length-3 paths are the shortest.
    """

    a_side, b_side = bipartite_sides(graph)
    if greedy_matching:
        matching = _greedy_matching_sorted(graph)
    else:
        matching = {frozenset(pair) for pair in graph.graph["matching"]}
    phase = BipartiteAugmentingPhase(graph, a_side, b_side, matching,
                                     d=3, eps=0.5, seed=seed)
    counts, contrib, raw = phase._forward(phase.scope, use_alpha=False)
    through = phase._backward(counts, contrib, raw)

    paths = enumerate_augmenting_paths(graph, matching, 3)
    end_counts = {}
    node_counts = {}
    for p in paths:
        end = p[-1] if p[-1] in b_side else p[0]
        end_counts[end] = end_counts.get(end, 0) + 1
        for v in p:
            node_counts[v] = node_counts.get(v, 0) + 1

    forward_err = max(
        (abs(counts.get(b, 0) - c) for b, c in end_counts.items()),
        default=0.0,
    )
    through_err = max(
        (abs(through.get(v, 0) - c) for v, c in node_counts.items()),
        default=0.0,
    )
    measures = {
        "paths": len(paths),
        "forward_err": float(forward_err),
        "through_err": float(through_err),
        "node_rows": [
            {
                "node": str(v),
                "forward_b5": float(counts.get(v, 0.0)),
                "through_b6": float(through.get(v, 0.0)),
                "brute_force": node_counts.get(v, 0),
            }
            for v in sorted(graph.nodes, key=str)
        ],
    }
    return measures, None


# ----------------------------------------------------------------------
# Wall-clock perf adapters (the `perf` experiment — NON-deterministic)
# ----------------------------------------------------------------------
# Unlike every other adapter, these two measure wall-clock time on
# purpose: they power BENCH_perf.json, the perf-tracking artifact that
# is recorded (never gated) by CI.  The `perf` experiment is therefore
# exempt from the byte-determinism contract; its deterministic content
# (objective totals, rounds) still is checked for serial/parallel
# agreement.
@register_measurement("batch_perf")
def _batch_perf(graph, seed, algorithm="maxis-layers", trials=16,
                workers=8, model=None):
    """``solve_many`` scaling: one instance grid, serial vs N workers.

    Records batch wall-clock, per-task p50/p95 latency, trials/sec on
    both backends and the resulting speedup, plus the deterministic
    objective/round totals that let a check assert the parallel
    backend computed exactly what the serial one did.
    """

    import os

    from ..api import Instance, solve_many
    from .runner import percentile

    instances = [
        Instance(graph, model=model, seed=seed + i) for i in range(trials)
    ]
    serial = solve_many(instances, algorithm, executor="serial")
    parallel = solve_many(instances, algorithm, executor="process",
                          workers=workers)
    lat = serial.latencies() or [0.0]
    speedup = (serial.elapsed / parallel.elapsed
               if parallel.elapsed > 0 else 0.0)
    serial_summary = serial.summary()
    parallel_summary = parallel.summary()
    empty = {"total": 0}  # every task failed: surface it via `failed`
    measures = {
        "trials": trials,
        "workers": workers,
        "cpus": os.cpu_count(),
        "algorithm": algorithm,
        "serial_seconds": serial.elapsed,
        "parallel_seconds": parallel.elapsed,
        "p50_task_seconds": percentile(lat, 50.0),
        "p95_task_seconds": percentile(lat, 95.0),
        "serial_trials_per_sec": serial.trials_per_second(),
        "parallel_trials_per_sec": parallel.trials_per_second(),
        "speedup": speedup,
        # deterministic agreement fingerprint (serial vs parallel):
        "objective_total":
            serial_summary.get("objective", empty)["total"],
        "parallel_objective_total":
            parallel_summary.get("objective", empty)["total"],
        "rounds_total": serial_summary["rounds_total"],
        "parallel_rounds_total": parallel_summary["rounds_total"],
        "failed": len(serial.failures) + len(parallel.failures),
    }
    return measures, None


@register_measurement("simulator_perf")
def _simulator_perf(graph, seed, algorithm="maxis-layers", repeats=5,
                    model="CONGEST"):
    """Serial simulator wall-clock on one workload (wake-list tracking).

    Repeats one full protocol run ``repeats`` times and reports p50/p95
    seconds plus derived rounds/sec and messages/sec, so the wake-list
    scheduler's serial speed is tracked across commits in
    ``BENCH_perf.json``.
    """

    import time as _time

    from .runner import percentile

    samples = []
    report = None
    for _ in range(repeats):
        started = _time.perf_counter()
        report = _solved(graph, seed, algorithm, model=model)
        samples.append(_time.perf_counter() - started)
    p50 = percentile(samples, 50.0)
    return {
        "repeats": repeats,
        "rounds": report.rounds,
        "messages": report.metrics.messages,
        "p50_seconds": p50,
        "p95_seconds": percentile(samples, 95.0),
        "rounds_per_sec": report.rounds / p50 if p50 > 0 else 0.0,
        "messages_per_sec":
            report.metrics.messages / p50 if p50 > 0 else 0.0,
        "cache_hit_rate": report.metrics.cache_hit_rate(),
    }, report.metrics


@register_measurement("backend_perf")
def _backend_perf(graph, seed, algorithm="maxis-layers", repeats=1):
    """Object vs array simulator backend on one workload.

    Times the simulator itself — network construction plus protocol
    run, no facade layers — ``repeats`` times per backend and records
    p50 seconds for both plus the object/array speedup.  The
    deterministic outputs (objective, rounds, bits) are recorded per
    backend so a check can assert the array engine computed exactly
    what the object engine did; they are bit-identical by contract.
    """

    import time as _time

    from ..congest import make_network
    from .runner import percentile

    def run(backend):
        net = make_network(graph, seed=seed, backend=backend)
        if algorithm == "maxis-layers":
            from ..core.maxis_layers import maxis_local_ratio_layers

            res = maxis_local_ratio_layers(graph, network=net)
        elif algorithm == "maxis-coloring":
            from ..core.maxis_coloring import maxis_local_ratio_coloring

            res = maxis_local_ratio_coloring(graph, network=net)
        else:
            raise ValueError(
                f"backend_perf cannot time {algorithm!r}; it needs an "
                "algorithm that runs on one injected network"
            )
        return res.weight, res.rounds, net.metrics.bits

    timing = {}
    outputs = {}
    for backend in ("object", "array"):
        samples = []
        for _ in range(repeats):
            started = _time.perf_counter()
            outputs[backend] = run(backend)
            samples.append(_time.perf_counter() - started)
        timing[backend] = percentile(samples, 50.0)
    object_p50, array_p50 = timing["object"], timing["array"]
    weight, rounds, bits = outputs["object"]
    array_weight, array_rounds, array_bits = outputs["array"]
    measures = {
        "algorithm": algorithm,
        "repeats": repeats,
        "n": graph.number_of_nodes(),
        "edges": graph.number_of_edges(),
        "object_p50_seconds": object_p50,
        "array_p50_seconds": array_p50,
        "speedup": object_p50 / array_p50 if array_p50 > 0 else 0.0,
        # deterministic agreement fingerprint (object vs array):
        "objective": weight,
        "array_objective": array_weight,
        "rounds": rounds,
        "array_rounds": array_rounds,
        "bits": bits,
        "array_bits": array_bits,
    }
    return measures, None


# ----------------------------------------------------------------------
# Simulator micro-benchmark (CI smoke / perf tracking)
# ----------------------------------------------------------------------
@register_measurement("simulator_microbench")
def _simulator_microbench(graph, seed, model="CONGEST"):
    """One full Algorithm-2 protocol run through the simulator.

    The measures are exact simulator counters — rounds, messages,
    bits — which double as a behavioural fingerprint: any change to
    the message-passing core that alters delivery or metering shows up
    as a diff here, and the smoke gate pins them.  Wall-clock speed is
    reported by the runner's ``--timing`` mode, never here.
    """

    report = _solved(graph, seed, "maxis-layers", model=model)
    return {
        "rounds": report.rounds,
        "messages": report.metrics.messages,
        "bits": report.metrics.bits,
        "max_bits_per_edge_round":
            report.metrics.max_bits_per_edge_round,
        "violations": report.metrics.violations,
        "is_weight": report.objective,
        "n": graph.number_of_nodes(),
    }, report.metrics


# ----------------------------------------------------------------------
# Solver-service load adapter (the `serve_load` experiment — NON-
# deterministic timing, deterministic content)
# ----------------------------------------------------------------------
@register_measurement("serve_load")
def _serve_load(graph, seed, problem="maxis", algorithm="maxis-layers",
                nodes=40, jobs=12, workers=2, budget_every=0,
                budget_rounds=8, resubmit=0):
    """Drive an in-process solver service under a mixed job batch.

    Boots a :class:`repro.serve.jobs.JobManager` with ``workers``
    concurrent workers, submits ``jobs`` distinct workloads (every
    ``budget_every``-th one round-budgeted to ``budget_rounds`` so it
    truncates), waits for the batch, then resubmits the first workload
    ``resubmit`` times to exercise the result cache.  Records
    throughput, the service's own p50/p95 latency, the truncated-vs-
    complete split and cache counters — wall-clock numbers for
    ``BENCH_serve.json`` (recorded, never gated) — plus the
    deterministic objective totals against direct facade solves, which
    a check *does* gate on: the service must compute exactly what
    ``solve()`` computes.
    """

    import time as _time

    from ..api import solve
    from ..api.persist import instance_from_workload
    from ..serve.jobs import JobManager
    from ..serve.protocol import spec_cache_key

    specs = []
    for i in range(jobs):
        spec = {
            "workload": {"problem": problem, "nodes": nodes,
                         "seed": seed + i},
            "algorithm": algorithm,
        }
        if budget_every and i % budget_every == budget_every - 1:
            spec["max_rounds"] = budget_rounds
        specs.append(spec)

    manager = JobManager(workers=workers)
    manager.start()
    try:
        started = _time.perf_counter()
        submitted = [manager.submit(spec) for spec in specs]
        while not all(job.done for job in submitted):
            _time.sleep(0.002)
        # Resubmissions land after the originals are terminal, so every
        # one is a deterministic cache hit.
        repeats = [manager.submit(dict(specs[0])) for _ in range(resubmit)]
        while not all(job.done for job in repeats):
            _time.sleep(0.002)
        elapsed = _time.perf_counter() - started
        submitted += repeats
        stats = manager.stats()
    finally:
        manager.shutdown(wait=True)

    # Deterministic agreement fingerprint: one direct facade solve per
    # unique spec, summed over the submission list like the service's
    # objectives (cache hits reuse the direct value by construction).
    direct: dict = {}
    serve_total = direct_total = 0
    for job in submitted:
        key = spec_cache_key(job.spec)
        if key not in direct:
            instance = instance_from_workload(
                job.spec["workload"], max_rounds=job.spec["max_rounds"],
            )
            direct[key] = solve(instance, algorithm).objective
        serve_total += job.result["objective"] if job.result else 0
        direct_total += direct[key]

    by_status = stats["jobs"]["by_status"]
    total = len(submitted)
    return {
        "workers": workers,
        "jobs": total,
        "algorithm": algorithm,
        "n": nodes,
        "elapsed_seconds": elapsed,
        "jobs_per_sec": total / elapsed if elapsed > 0 else 0.0,
        "p50_ms": stats["latency"]["p50_ms"],
        "p95_ms": stats["latency"]["p95_ms"],
        "complete": by_status["complete"],
        "truncated": by_status["truncated"],
        "failed": by_status["failed"],
        "truncated_ratio": by_status["truncated"] / total,
        "cache_hits": stats["cache"]["hits"],
        "cache_hit_rate": stats["cache"]["hit_rate"],
        "rounds_total": stats["rounds_total"],
        # deterministic agreement fingerprint (service vs facade):
        "objective_total": serve_total,
        "direct_objective_total": direct_total,
    }, None


# ----------------------------------------------------------------------
# Fault-injection recovery adapter (the `faults` experiment — fully
# deterministic: every measure is a counter or flag, never wall-clock)
# ----------------------------------------------------------------------
def _faults_specs(seed, jobs, nodes, algorithm):
    """The scenario's job list: distinct seeds (no cache hits), round-
    budgeted so every checkpoint carries a resumable payload."""

    return [
        {
            "workload": {"problem": "maxis", "nodes": nodes,
                         "seed": seed + i},
            "algorithm": algorithm,
            "max_rounds": 1000,
        }
        for i in range(jobs)
    ]


def _faults_await(jobs, budget_s=120.0):
    import time as _time

    deadline = _time.monotonic() + budget_s
    while not all(job.done for job in jobs):
        if _time.monotonic() > deadline:
            break
        _time.sleep(0.002)


def _faults_direct(spec):
    from ..api import solve
    from ..api.persist import instance_from_workload
    from ..serve.protocol import validate_spec

    spec = validate_spec(spec)
    instance = instance_from_workload(
        spec["workload"], max_rounds=spec["max_rounds"],
    )
    return solve(instance, spec["algorithm"]).objective


@register_measurement("fault_recovery")
def _fault_recovery(graph, seed, scenario="retry", jobs=6, nodes=32,
                    algorithm="maxis-layers", rate=0.0, tmp_rate=0.0,
                    max_attempts=4, drain_budget_s=10.0):
    """One chaos drill against the in-process solver service.

    ``scenario`` picks the fault campaign; every measure is a counter,
    flag or objective total — deliberately no wall-clock values — so
    the ``faults`` experiment's artifact is byte-identical at a fixed
    seed (the CI chaos gate ``cmp``-compares it against the committed
    ``BENCH_faults.json``).  Determinism rests on the fault plane's
    scope keying: decisions are pure functions of ``(plan seed, site,
    job identity, roll index)``, so thread scheduling can reorder
    *when* a fault fires but never *whether*.

    Scenarios
    ---------
    ``retry``
        ``worker.transient`` fires at ``rate``; the bounded retry
        policy (``max_attempts``, deterministic backoff) must absorb
        the transient failures and keep every finished objective equal
        to the direct facade solve.
    ``journal``
        ``journal.write`` errors at ``rate`` (plus ``journal.tmp``
        torn temp files at ``tmp_rate``) while jobs run one at a time;
        jobs must complete regardless, then a restart on the same
        state dir — seeded with a foreign file, a torn record and a
        stale temp file — must sweep/skip the garbage and finish every
        durable record's job with the fault-free objective.
    ``drain``
        A graceful drain lands while every job is mid-solve (the
        phase delay guarantees runway); all jobs must park with
        journaled resume envelopes and a restarted manager must finish
        them bit-equal to never-interrupted runs.
    ``dispatcher``
        The dispatcher dies on its first batch; health must latch
        degraded, no job may execute, and a restart must recover and
        finish everything.
    """

    import os as _os
    import tempfile as _tempfile
    import time as _time

    from ..faults import FaultPlan, RetryPolicy
    from ..serve.jobs import JobManager

    specs = _faults_specs(seed, jobs, nodes, algorithm)
    base = {"scenario": scenario, "jobs": jobs, "n": nodes,
            "algorithm": algorithm}

    if scenario == "retry":
        plan = FaultPlan(seed=seed, sites={
            "worker.transient": {"rate": rate},
        })
        manager = JobManager(
            workers=2, fault_plan=plan,
            retry=RetryPolicy(max_attempts=max_attempts,
                              base_delay_s=0.001, seed=seed),
        )
        manager.start()
        try:
            submitted = [manager.submit(spec) for spec in specs]
            _faults_await(submitted)
            stats = manager.stats()
        finally:
            manager.shutdown(wait=True)
        complete = [job for job in submitted
                    if job.status == "complete"]
        failed = [job for job in submitted if job.status == "failed"]
        return {
            **base,
            "rate": rate,
            "max_attempts": max_attempts,
            "complete": len(complete),
            "failed": len(failed),
            "terminal": len(complete) + len(failed),
            "retries": stats["retries_total"],
            "worker_crashes": stats["health"]["worker_crashes"],
            "objective_total": sum(job.result["objective"]
                                   for job in complete),
            "direct_objective_total": sum(_faults_direct(job.spec)
                                          for job in complete),
        }, None

    if scenario == "journal":
        with _tempfile.TemporaryDirectory() as state_dir:
            sites = {"journal.write": {"rate": rate}}
            if tmp_rate:
                sites["journal.tmp"] = {"rate": tmp_rate}
            plan = FaultPlan(seed=seed, sites=sites)
            # One worker, one job in flight at a time: the journal
            # write order — and with it the consecutive-failure
            # breaker state — is fully deterministic.
            manager = JobManager(workers=1, state_dir=state_dir,
                                 fault_plan=plan)
            manager.start()
            try:
                submitted = []
                for spec in specs:
                    job = manager.submit(spec)
                    submitted.append(job)
                    _faults_await([job])
                stats = manager.stats()
            finally:
                manager.shutdown(wait=True)
            first_complete = sum(1 for job in submitted
                                 if job.status == "complete")
            objective_total = sum(
                job.result["objective"] for job in submitted
                if job.status == "complete")

            # Recovery garbage: a foreign-format file, a torn record,
            # and the stale temp file of a crashed atomic write.
            with open(_os.path.join(state_dir, "zz-foreign.json"),
                      "w", encoding="utf-8") as handle:
                handle.write('{"format": "someone-elses/1"}')
            with open(_os.path.join(state_dir, "zz-torn.json"),
                      "w", encoding="utf-8") as handle:
                handle.write('{"format": "repro-serve-job/1", "spe')
            with open(_os.path.join(state_dir,
                                    "zz-stale.json.tmp.4242"),
                      "w", encoding="utf-8") as handle:
                handle.write('{"torn": ')

            recovered = JobManager(workers=1, state_dir=state_dir)
            counts = recovered.recover()
            recovered.start()
            try:
                _faults_await(recovered.jobs())
                survivors = recovered.jobs()
                all_terminal = all(job.done for job in survivors)
                recovered_objective = sum(
                    job.result["objective"] for job in survivors
                    if job.result is not None)
                recovered_direct = sum(_faults_direct(job.spec)
                                       for job in survivors)
            finally:
                recovered.shutdown(wait=True)
        return {
            **base,
            "rate": rate,
            "tmp_rate": tmp_rate,
            "first_complete": first_complete,
            "journal_errors": stats["journal_errors"],
            "degraded": stats["health"]["state"] == "degraded",
            "restored": counts["restored"],
            "requeued": counts["requeued"],
            "skipped": counts["skipped"],
            "swept_tmp": counts["swept_tmp"],
            "recovered_terminal": all_terminal,
            "objective_total": objective_total,
            "direct_objective_total": sum(_faults_direct(spec)
                                          for spec in specs),
            "recovered_objective_total": recovered_objective,
            "recovered_direct_total": recovered_direct,
        }, None

    if scenario == "drain":
        with _tempfile.TemporaryDirectory() as state_dir:
            manager = JobManager(workers=2, state_dir=state_dir,
                                 phase_delay_s=0.05)
            manager.start()
            submitted = [manager.submit(spec) for spec in specs]
            stats = manager.drain(timeout_s=drain_budget_s)
            manager.shutdown(wait=True)
            parked = sum(1 for job in submitted if not job.done)

            recovered = JobManager(workers=2, state_dir=state_dir)
            counts = recovered.recover()
            recovered.start()
            try:
                _faults_await(recovered.jobs())
                survivors = recovered.jobs()
                objective_total = sum(
                    job.result["objective"] for job in survivors
                    if job.result is not None)
            finally:
                recovered.shutdown(wait=True)
        return {
            **base,
            "drain_budget_s": drain_budget_s,
            "parked": parked,
            "terminal_before_drain": jobs - parked,
            "drain_clean": bool(stats["clean"]),
            "requeued": counts["requeued"],
            "skipped": counts["skipped"],
            "objective_total": objective_total,
            "direct_objective_total": sum(_faults_direct(spec)
                                          for spec in specs),
        }, None

    if scenario == "dispatcher":
        plan = FaultPlan(seed=seed, sites={
            "dispatcher.death": {"after": 1},
        })
        with _tempfile.TemporaryDirectory() as state_dir:
            manager = JobManager(workers=2, state_dir=state_dir,
                                 fault_plan=plan)
            manager.start()
            submitted = [manager.submit(spec) for spec in specs]
            deadline = _time.monotonic() + 10.0
            while not manager.health.snapshot()["dispatcher_dead"]:
                if _time.monotonic() > deadline:
                    break
                _time.sleep(0.002)
            stats = manager.stats()
            manager.shutdown(wait=True)
            executed = sum(1 for job in submitted if job.done)

            recovered = JobManager(workers=2, state_dir=state_dir)
            counts = recovered.recover()
            recovered.start()
            try:
                _faults_await(recovered.jobs())
                survivors = recovered.jobs()
                complete = sum(1 for job in survivors
                               if job.status == "complete")
                objective_total = sum(
                    job.result["objective"] for job in survivors
                    if job.result is not None)
            finally:
                recovered.shutdown(wait=True)
        return {
            **base,
            "degraded": stats["health"]["state"] == "degraded",
            "dispatcher_dead": stats["health"]["dispatcher_dead"],
            "executed_before_death": executed,
            "requeued": counts["requeued"],
            "complete_after_restart": complete,
            "objective_total": objective_total,
            "direct_objective_total": sum(_faults_direct(spec)
                                          for spec in specs),
        }, None

    raise ValueError(f"unknown faults scenario {scenario!r}")


# ----------------------------------------------------------------------
# MPC execution model (repro.mpc)
# ----------------------------------------------------------------------
@register_measurement("mpc_scaling")
def _mpc_scaling(graph, seed, algorithm="matching-proposal",
                 machines=None, delta=None, eps=0.5,
                 capacity_factor=8.0, sparsify=True):
    """One MPC run vs its default-model twin: parity + machine loads.

    Runs ``algorithm`` once through the facade in its default model
    and once under ``Instance(model="mpc", machines=..., delta=...)``,
    and reports the per-machine ledger summary next to the exact
    objective/solution parity flags the MPC port guarantees.  Every
    measure is a counter or flag, so rows are byte-deterministic.
    """

    baseline = _solved(graph, seed, algorithm, eps=eps)
    mpc = solve(
        Instance(graph, model="MPC", seed=seed, eps=eps,
                 machines=machines, delta=delta),
        algorithm, capacity_factor=capacity_factor, sparsify=sparsify,
    )
    summary = mpc.extras["mpc"]
    spars = summary["sparsify"] or {
        "triggers": 0, "dropped_messages": 0,
        "would_violate_without": False,
    }
    return {
        "algorithm": algorithm,
        "n": graph.number_of_nodes(),
        "m": graph.number_of_edges(),
        "machines": summary["machines"],
        "delta": summary["delta"],
        "capacity": summary["capacity"],
        "objective": mpc.objective,
        "baseline_objective": baseline.objective,
        "parity": mpc.objective == baseline.objective,
        "solution_parity": mpc.solution == baseline.solution,
        "mpc_rounds": summary["rounds"],
        "max_machine_load": summary["max_load"],
        "sublinear_ok": summary["sublinear_ok"],
        "peak_loads": summary["peak_loads"],
        "total_bits": summary["bits_sent"],
        "local_messages": summary["local_messages"],
        "peak_memory_words": summary["max_peak_memory"],
        "sparsify_triggers": spars["triggers"],
        "dropped_messages": spars["dropped_messages"],
        "would_violate_without": spars["would_violate_without"],
    }, None


# ----------------------------------------------------------------------
# Dynamic graphs: incremental re-solve under churn
# ----------------------------------------------------------------------
def _churn_stream(graph, seed, batches, batch_size, weighted,
                  max_weight=8):
    """A deterministic mutation stream: delete/insert edges (and, on
    weighted workloads, bump node weights) drawn from the seed's
    stable stream against the evolving graph."""

    from ..dynamic import (add_edge, apply_batch, remove_edge,
                           set_node_weight)
    from ..utils import stable_rng

    rng = stable_rng(seed, "churn-mutations")
    current = graph.copy()
    kinds = 3 if weighted else 2
    out = []
    for index in range(batches):
        batch = []
        for slot in range(batch_size):
            kind = (index * batch_size + slot) % kinds
            if kind == 0 and current.number_of_edges() > 0:
                edges = sorted(current.edges, key=repr)
                mutation = remove_edge(*edges[rng.randrange(len(edges))])
            elif kind <= 1:
                nodes = sorted(current.nodes, key=repr)
                mutation = None
                for _ in range(64):
                    u = nodes[rng.randrange(len(nodes))]
                    v = nodes[rng.randrange(len(nodes))]
                    if u != v and not current.has_edge(u, v):
                        mutation = add_edge(u, v)
                        break
                if mutation is None:  # near-complete graph: delete instead
                    edges = sorted(current.edges, key=repr)
                    mutation = remove_edge(
                        *edges[rng.randrange(len(edges))])
            else:
                nodes = sorted(current.nodes, key=repr)
                mutation = set_node_weight(
                    nodes[rng.randrange(len(nodes))],
                    1 + rng.randrange(max_weight),
                )
            current = apply_batch(current, [mutation])
            batch.append(mutation)
        out.append(batch)
    return out


@register_measurement("churn")
def _churn(graph, seed, algorithm="maxis-layers", batches=3,
           batch_size=2, radius=1, eps=None, backend=None):
    """Incremental re-solve vs from-scratch across a mutation stream.

    Builds a :class:`~repro.dynamic.DynamicInstance` with a
    deterministic churn stream, runs
    :func:`~repro.dynamic.resolve_incremental`, and solves every
    mutated version from scratch for comparison.  Costs are *round*
    counts (never wall-clock), so rows — including the recorded
    speedup — are byte-deterministic.  ``feasible`` re-certifies every
    incremental solution on its own mutated graph; ``parity_ok``
    demands the incremental and scratch objectives agree within the
    algorithm's guarantee factor in both directions.
    """

    from ..api import COMPLETE
    from ..dynamic import DynamicInstance, resolve_incremental

    weighted = algorithm.startswith("maxis")
    stream = _churn_stream(graph, seed, batches, batch_size, weighted)
    kwargs = {} if eps is None else {"eps": eps}
    dynamic = DynamicInstance(
        Instance(graph, seed=seed, backend=backend, **kwargs),
        batches=stream,
    )
    incremental = resolve_incremental(dynamic, algorithm, radius=radius)
    feasible = True
    for step in incremental.steps:
        step.report.certify()
        feasible = feasible and step.report.status == COMPLETE
    scratch = [
        solve(dynamic.version(t), algorithm)
        for t in range(1, len(dynamic) + 1)
    ]
    parity_ok = True
    for step, baseline in zip(incremental.steps[1:], scratch):
        bound = baseline.bound or 1.0
        parity_ok = parity_ok and (
            step.report.objective * bound >= baseline.objective
            and baseline.objective * bound >= step.report.objective
        )
    scratch_rounds = sum(report.rounds for report in scratch)
    repair_rounds = incremental.total_repair_rounds
    region_nodes = sum(len(step.region) for step in incremental.steps[1:])
    n = graph.number_of_nodes()
    return {
        "algorithm": algorithm,
        "n": n,
        "m": graph.number_of_edges(),
        "batches": batches,
        "batch_size": batch_size,
        "initial_rounds": incremental.steps[0].report.rounds,
        "repair_rounds": repair_rounds,
        "scratch_rounds": scratch_rounds,
        "speedup_rounds": round(
            scratch_rounds / max(1, repair_rounds), 4),
        "region_nodes": region_nodes,
        "region_fraction": round(region_nodes / (batches * n), 4),
        "feasible": feasible,
        "parity_ok": parity_ok,
        "final_objective": incremental.final.objective,
        "final_scratch_objective": scratch[-1].objective,
    }, None
