"""Registries for experiments, measurements and graph families.

Three flat name → object tables back the subsystem:

* **experiments** — :class:`~repro.experiments.spec.ExperimentSpec`
  instances, registered by :mod:`~repro.experiments.catalog` at import
  time and looked up by the CLI and the benchmark suite;
* **measurements** — algorithm adapters with the uniform signature
  ``fn(graph, seed, **params) -> (measures, metrics)`` where
  ``measures`` is a JSON-able dict and ``metrics`` is an optional
  :class:`~repro.congest.network.NetworkMetrics`;
* **graph families** — builders that turn a declarative graph spec
  dict into a weighted ``networkx`` graph.

A graph spec dict looks like::

    {"family": "gnp", "args": {"n": 96, "p": 0.05, "seed": 1},
     "node_weights": {"max": 64, "scheme": "log-uniform", "seed": 2}}

``node_weights`` / ``edge_weights`` are optional and are applied with
:func:`repro.graphs.assign_node_weights` /
:func:`repro.graphs.assign_edge_weights` after the family builder runs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping

from ..errors import ReproError
from .spec import ExperimentSpec


class UnknownExperiment(ReproError, KeyError):
    """Lookup of an experiment/measurement/family name that is not registered."""


_EXPERIMENTS: Dict[str, ExperimentSpec] = {}
_MEASUREMENTS: Dict[str, Callable] = {}
_GRAPH_FAMILIES: Dict[str, Callable] = {}


def _lookup(table: Mapping, kind: str, name: str):
    try:
        return table[name]
    except KeyError:
        known = ", ".join(sorted(table)) or "<none>"
        raise UnknownExperiment(
            f"unknown {kind} {name!r} (registered: {known})"
        ) from None


# ----------------------------------------------------------------------
# experiments
# ----------------------------------------------------------------------
def register_experiment(spec: ExperimentSpec) -> ExperimentSpec:
    if spec.name in _EXPERIMENTS:
        raise ValueError(f"experiment {spec.name!r} already registered")
    _EXPERIMENTS[spec.name] = spec
    return spec


def get_experiment(name: str) -> ExperimentSpec:
    _ensure_catalog()
    return _lookup(_EXPERIMENTS, "experiment", name)


def list_experiments() -> List[ExperimentSpec]:
    _ensure_catalog()
    return [_EXPERIMENTS[name] for name in sorted(_EXPERIMENTS)]


# ----------------------------------------------------------------------
# measurements
# ----------------------------------------------------------------------
def register_measurement(name: str) -> Callable[[Callable], Callable]:
    """Decorator: ``@register_measurement("maxis_layers")``."""

    def deco(fn: Callable) -> Callable:
        if name in _MEASUREMENTS:
            raise ValueError(f"measurement {name!r} already registered")
        _MEASUREMENTS[name] = fn
        return fn

    return deco


def get_measurement(name: str) -> Callable:
    _ensure_catalog()
    return _lookup(_MEASUREMENTS, "measurement", name)


def list_measurements() -> List[str]:
    _ensure_catalog()
    return sorted(_MEASUREMENTS)


# ----------------------------------------------------------------------
# graph families
# ----------------------------------------------------------------------
def register_graph_family(name: str) -> Callable[[Callable], Callable]:
    def deco(fn: Callable) -> Callable:
        if name in _GRAPH_FAMILIES:
            raise ValueError(f"graph family {name!r} already registered")
        _GRAPH_FAMILIES[name] = fn
        return fn

    return deco


def build_graph(spec: Mapping):
    """Materialize a graph spec dict into a weighted networkx graph."""

    from ..graphs import assign_edge_weights, assign_node_weights

    _ensure_catalog()
    builder = _lookup(_GRAPH_FAMILIES, "graph family", spec["family"])
    graph = builder(**dict(spec.get("args", {})))
    node_weights = spec.get("node_weights")
    if node_weights is not None:
        graph = assign_node_weights(graph, **dict(node_weights))
    edge_weights = spec.get("edge_weights")
    if edge_weights is not None:
        graph = assign_edge_weights(graph, **dict(edge_weights))
    return graph


# ----------------------------------------------------------------------
# catalog bootstrap
# ----------------------------------------------------------------------
_CATALOG_LOADED = False


def _ensure_catalog() -> None:
    """Import the catalog lazily so registry/catalog imports don't cycle."""

    global _CATALOG_LOADED
    if not _CATALOG_LOADED:
        _CATALOG_LOADED = True
        from . import catalog  # noqa: F401  (registers on import)
