"""Deterministic experiment runner (serial or process-parallel).

The :class:`Runner` is the single execution engine behind every
benchmark: the ``python -m repro bench`` CLI, the ``benchmarks/``
pytest suite and the CI smoke gate all funnel through
:meth:`Runner.run`.  For each section of an
:class:`~repro.experiments.spec.ExperimentSpec` it

1. expands the section's ``(cell, seed)`` grid into an ordered trial
   plan (each entry carries the cell's graph spec, parameters and the
   derived trial seed),
2. executes the plan — serially with the cell's graph materialized
   once per seed sweep, or fanned across a process/thread pool via the
   shared batch engine (:func:`repro.api.batch.execute_indexed`) when
   ``workers > 1``, each worker rebuilding its trial's graph from the
   (deterministic) spec,
3. collects the measurement's measures dict plus an optional
   :class:`~repro.congest.network.NetworkMetrics` snapshot per trial,
   merging results **in plan order** so the artifact is byte-identical
   at any worker count,
4. reduces trials to table rows and evaluates the section's checks,
   recording pass/fail instead of aborting.

The assembled artifact follows the versioned schema documented in
:mod:`~repro.experiments.artifact`.  Wall-clock timing stays in the
opt-in ``timing`` block; with ``repeat > 1`` each section is executed
that many times and the block reports p50/p95 percentiles and
trials/sec instead of a single sample.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

from ..utils import stable_rng
from .artifact import SCHEMA, metrics_snapshot
from .registry import build_graph, get_measurement
from .spec import ExperimentSpec, Section


def _sanitize(value):
    """Make a measures value JSON-safe: non-finite floats (an infinite
    approximation ratio from an empty solution, a NaN statistic) become
    strings so the artifact still serializes — and any check comparing
    against them records a failure instead of crashing the run."""

    if isinstance(value, float):
        return value if value == value and abs(value) != float("inf") \
            else repr(value)
    if isinstance(value, dict):
        return {key: _sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(item) for item in value]
    return value


def _default_reduce(trials: List[dict]) -> List[dict]:
    rows = []
    for trial in trials:
        row = dict(trial["params"])
        row["seed"] = trial["seed"]
        row.update(trial["measures"])
        rows.append(row)
    return rows


def percentile(samples: List[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]) of a
    non-empty sample list."""

    if not samples:
        raise ValueError("percentile() of empty sequence")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (rank - lo)


#: Per-worker memo of the most recently built graph, keyed by the
#: spec's repr.  Chunks preserve plan order, so a cell's seed sweep
#: arrives at one worker as adjacent tasks and the graph is built once
#: per cell — the same once-per-sweep reuse the serial path gets —
#: instead of once per trial.  One entry only: no growth, and no
#: sharing beyond what the serial path's per-cell cache already does.
_LAST_GRAPH: tuple = (None, None)


def _run_trial_task(task: tuple) -> tuple:
    """Worker body for one ``(cell, seed)`` trial.

    Module-level (picklable) so the process backend can ship it.  The
    task carries only plain data — the measurement *name*, the graph
    *spec* dict and the parameter dict — and the worker rebuilds the
    graph through the registered (deterministic) family builder, so a
    rebuilt graph is identical to the serial path's cached one.
    Returns sanitized measures plus the JSON metrics snapshot, i.e.
    exactly what lands in the trial record.
    """

    global _LAST_GRAPH
    measurement_name, graph_spec, params, trial_seed = task
    fn = get_measurement(measurement_name)
    if graph_spec is None:
        graph = None
    else:
        key = repr(graph_spec)
        cached_key, cached_graph = _LAST_GRAPH
        if key == cached_key:
            graph = cached_graph
        else:
            graph = build_graph(graph_spec)
            _LAST_GRAPH = (key, graph)
    measures, metrics = fn(graph, trial_seed, **params)
    return _sanitize(measures), metrics_snapshot(metrics)


class Runner:
    """Executes one :class:`ExperimentSpec` and assembles its artifact.

    Parameters
    ----------
    spec:
        The experiment to run.
    timing:
        Include wall-clock data in the opt-in ``timing`` block.
    workers:
        ``None``/``0``/``1`` runs trials serially (the historical
        path); ``N > 1`` fans each section's trial plan across ``N``
        workers of the shared batch engine.  Artifacts are
        **byte-identical** at any worker count: trials are merged in
        plan (spec) order and wall-clock stays in the timing block.
    backend:
        ``"process"`` (default for ``workers > 1``) or ``"thread"``.
    repeat:
        With ``timing``, execute each section this many times and
        report p50/p95 across the samples (the artifact's trial data
        comes from the first execution; repeats are timing-only).
    """

    def __init__(self, spec: ExperimentSpec, timing: bool = False,
                 workers: Optional[int] = None, backend: str = "process",
                 repeat: int = 1):
        self.spec = spec
        self.timing = timing
        self.workers = int(workers) if workers else 0
        self.backend = backend
        self.repeat = max(1, int(repeat)) if timing else 1
        #: Pool shared across sections during run(); standalone
        #: run_section() calls fall back to a per-call pool.
        self._pool = None

    # ------------------------------------------------------------------
    def trial_seed(self, section: Section, cell_index: int, seed: int) -> int:
        if not section.derive_seeds:
            return seed
        rng = stable_rng(seed, self.spec.name, section.name, cell_index)
        return rng.getrandbits(31)

    # ------------------------------------------------------------------
    def _section_plan(self, section: Section) -> List[dict]:
        """Expand a section into its ordered ``(cell, seed)`` trial plan.

        Per-cell overrides: a cell may pin its own seed sweep (for
        benches whose graph seed and algorithm seed co-vary), swap the
        measurement (heterogeneous summary tables), or carry
        display-only labels that are recorded but not passed to the
        measurement.
        """

        plan: List[dict] = []
        for cell_index, cell in enumerate(section.grid):
            cell = dict(cell)
            graph_spec = cell.pop("graph", None)
            cell_seeds = cell.pop("seeds", section.seeds)
            cell_measurement = cell.pop("measurement", None)
            label = dict(cell.pop("label", {}))
            measurement = (section.measurement if cell_measurement is None
                           else cell_measurement)
            for seed in cell_seeds:
                plan.append({
                    "cell": cell_index,
                    "graph": graph_spec,
                    "measurement": measurement,
                    "params": cell,
                    "label": label,
                    "seed": self.trial_seed(section, cell_index, seed),
                })
        return plan

    @staticmethod
    def _task(entry: dict) -> tuple:
        return (entry["measurement"], entry["graph"], entry["params"],
                entry["seed"])

    def _execute_serial(self, plan: List[dict]) -> List[tuple]:
        """Run the plan in-process through the same trial body the
        workers execute (adjacent same-cell trials reuse the built
        graph via the trial task's memo), so the serial and parallel
        paths cannot drift apart."""

        return [_run_trial_task(self._task(entry)) for entry in plan]

    def _execute_parallel(self, plan: List[dict]) -> List[tuple]:
        """Fan the plan across the shared batch engine; results come
        back in plan order, so artifacts match the serial path byte for
        byte.  A failing trial aborts the section, like the serial
        path — though the original exception, having crossed a process
        boundary as a string, is re-raised as a RuntimeError naming the
        failed (cell, seed) and the worker's error text."""

        from ..api.batch import execute_indexed

        outcomes = execute_indexed(
            _run_trial_task, [self._task(entry) for entry in plan],
            executor=self._pool if self._pool is not None else self.backend,
            workers=self.workers,
        )
        results: List[tuple] = []
        for entry, (result, error) in zip(plan, outcomes):
            if error is not None:
                raise RuntimeError(
                    f"trial (cell={entry['cell']}, "
                    f"seed={entry['seed']}) failed: {error}"
                )
            results.append(result)
        return results

    def _execute(self, plan: List[dict]) -> List[tuple]:
        if self.workers > 1:
            return self._execute_parallel(plan)
        return self._execute_serial(plan)

    # ------------------------------------------------------------------
    def run_section(self, section) -> Dict:
        """Run one section (by name or :class:`Section`) to a record."""

        if isinstance(section, str):
            section = self.spec.section(section)
        plan = self._section_plan(section)

        samples: List[float] = []
        started = time.perf_counter() if self.timing else 0.0
        results = self._execute(plan)
        if self.timing:
            samples.append(time.perf_counter() - started)
            for _ in range(self.repeat - 1):
                started = time.perf_counter()
                self._execute(plan)
                samples.append(time.perf_counter() - started)

        trials = [
            {
                "cell": entry["cell"],
                "graph": entry["graph"],
                "params": {**entry["label"], **entry["params"]},
                "seed": entry["seed"],
                "measures": measures,
                "metrics": metrics,
            }
            for entry, (measures, metrics) in zip(plan, results)
        ]
        reduce = section.reduce or _default_reduce
        rows = reduce(trials)
        checks = []
        for check in section.checks:
            try:
                check.fn(rows)
            except AssertionError as exc:
                checks.append({"name": check.name, "passed": False,
                               "detail": str(exc)})
            except Exception as exc:  # record-not-abort contract
                checks.append({
                    "name": check.name,
                    "passed": False,
                    "detail": f"{type(exc).__name__}: {exc}",
                })
            else:
                checks.append({"name": check.name, "passed": True,
                               "detail": check.description})
        record = {
            "name": section.name,
            "title": section.title,
            "measurement": section.measurement,
            "render": section.render,
            "render_params": dict(section.render_params),
            "trials": trials,
            "rows": rows,
            "checks": checks,
        }
        if self.timing:
            record["timing"] = self._timing_block(samples, len(plan))
        return record

    def _timing_block(self, samples: List[float], trials: int) -> Dict:
        """One section's timing record: a single sample stays the
        historical ``{"seconds": s}`` shape; with ``repeat > 1`` the
        p50/p95 percentiles and trials/sec are reported as well."""

        block: Dict[str, object] = {"seconds": samples[0]}
        if len(samples) > 1:
            p50 = percentile(samples, 50.0)
            block.update({
                "repeats": len(samples),
                "p50": p50,
                "p95": percentile(samples, 95.0),
                "min": min(samples),
                "max": max(samples),
                "trials_per_sec": trials / p50 if p50 > 0 else 0.0,
            })
        return block

    # ------------------------------------------------------------------
    def run(self, sections: Optional[Iterable[str]] = None) -> Dict:
        """Run the experiment (optionally a subset of section names)."""

        wanted = None if sections is None else list(sections)
        selected = (self.spec.sections if wanted is None
                    else [self.spec.section(name) for name in wanted])
        try:
            if self.workers > 1:
                # One pool for the whole experiment: pool spin-up is
                # paid once, not once per section (or repeat sample).
                from ..api.batch import _make_executor

                self._pool = _make_executor(self.backend, self.workers)
            records = [self.run_section(section) for section in selected]
        finally:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
            # Drop the serial path's graph memo so a long-lived process
            # does not retain the last workload graph.
            global _LAST_GRAPH
            _LAST_GRAPH = (None, None)
        trials = sum(len(r["trials"]) for r in records)
        checks_total = sum(len(r["checks"]) for r in records)
        checks_failed = sum(
            1 for r in records for c in r["checks"] if not c["passed"]
        )
        artifact = {
            "schema": SCHEMA,
            "experiment": self.spec.name,
            "title": self.spec.title,
            "description": self.spec.description,
            "sections": records,
            "summary": {
                "sections": len(records),
                "trials": trials,
                "checks_total": checks_total,
                "checks_failed": checks_failed,
                "passed": checks_failed == 0,
            },
        }
        if self.timing:
            blocks = {r["name"]: r.pop("timing") for r in records}
            artifact["timing"] = {
                "sections": {
                    name: (block["seconds"] if len(block) == 1 else block)
                    for name, block in blocks.items()
                },
                "seconds_total": sum(b["seconds"] for b in blocks.values()),
            }
        return artifact


def run_experiment(spec: ExperimentSpec,
                   sections: Optional[Iterable[str]] = None,
                   timing: bool = False,
                   workers: Optional[int] = None,
                   backend: str = "process",
                   repeat: int = 1) -> Dict:
    """Convenience wrapper: ``Runner(spec, ...).run(sections)``."""

    return Runner(spec, timing=timing, workers=workers, backend=backend,
                  repeat=repeat).run(sections)
