"""Deterministic experiment runner.

The :class:`Runner` is the single execution engine behind every
benchmark: the ``python -m repro bench`` CLI, the ``benchmarks/``
pytest suite and the CI smoke gate all funnel through
:meth:`Runner.run`.  For each section of an
:class:`~repro.experiments.spec.ExperimentSpec` it

1. materializes each grid cell's graph spec once (graphs are reused
   across the seed sweep, exactly like the hand-written benchmarks
   did),
2. executes the section's measurement for every ``(cell, seed)`` pair,
   passing a seed that is either the literal spec seed or — when the
   section opts into ``derive_seeds`` — derived via
   :func:`repro.utils.stable_rng` from
   ``(experiment, section, cell, seed)``,
3. collects the measurement's measures dict plus an optional
   :class:`~repro.congest.network.NetworkMetrics` snapshot per trial,
4. reduces trials to table rows and evaluates the section's checks,
   recording pass/fail instead of aborting.

The assembled artifact follows the versioned schema documented in
:mod:`~repro.experiments.artifact`.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

from ..utils import stable_rng
from .artifact import SCHEMA, metrics_snapshot
from .registry import build_graph, get_measurement
from .spec import ExperimentSpec, Section


def _sanitize(value):
    """Make a measures value JSON-safe: non-finite floats (an infinite
    approximation ratio from an empty solution, a NaN statistic) become
    strings so the artifact still serializes — and any check comparing
    against them records a failure instead of crashing the run."""

    if isinstance(value, float):
        return value if value == value and abs(value) != float("inf") \
            else repr(value)
    if isinstance(value, dict):
        return {key: _sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(item) for item in value]
    return value


def _default_reduce(trials: List[dict]) -> List[dict]:
    rows = []
    for trial in trials:
        row = dict(trial["params"])
        row["seed"] = trial["seed"]
        row.update(trial["measures"])
        rows.append(row)
    return rows


class Runner:
    """Executes one :class:`ExperimentSpec` and assembles its artifact."""

    def __init__(self, spec: ExperimentSpec, timing: bool = False):
        self.spec = spec
        self.timing = timing

    # ------------------------------------------------------------------
    def trial_seed(self, section: Section, cell_index: int, seed: int) -> int:
        if not section.derive_seeds:
            return seed
        rng = stable_rng(seed, self.spec.name, section.name, cell_index)
        return rng.getrandbits(31)

    def run_section(self, section) -> Dict:
        """Run one section (by name or :class:`Section`) to a record."""

        if isinstance(section, str):
            section = self.spec.section(section)
        measurement = get_measurement(section.measurement)
        trials: List[dict] = []
        started = time.perf_counter() if self.timing else 0.0
        for cell_index, cell in enumerate(section.grid):
            cell = dict(cell)
            graph_spec = cell.pop("graph", None)
            graph = build_graph(graph_spec) if graph_spec is not None else None
            # Per-cell overrides: a cell may pin its own seed sweep (for
            # benches whose graph seed and algorithm seed co-vary), swap
            # the measurement (heterogeneous summary tables), or carry
            # display-only labels that are recorded but not passed to
            # the measurement.
            cell_seeds = cell.pop("seeds", section.seeds)
            cell_measurement = cell.pop("measurement", None)
            label = dict(cell.pop("label", {}))
            fn = (measurement if cell_measurement is None
                  else get_measurement(cell_measurement))
            for seed in cell_seeds:
                trial_seed = self.trial_seed(section, cell_index, seed)
                measures, metrics = fn(graph, trial_seed, **cell)
                trials.append({
                    "cell": cell_index,
                    "graph": graph_spec,
                    "params": {**label, **cell},
                    "seed": trial_seed,
                    "measures": _sanitize(measures),
                    "metrics": metrics_snapshot(metrics),
                })
        reduce = section.reduce or _default_reduce
        rows = reduce(trials)
        checks = []
        for check in section.checks:
            try:
                check.fn(rows)
            except AssertionError as exc:
                checks.append({"name": check.name, "passed": False,
                               "detail": str(exc)})
            except Exception as exc:  # record-not-abort contract
                checks.append({
                    "name": check.name,
                    "passed": False,
                    "detail": f"{type(exc).__name__}: {exc}",
                })
            else:
                checks.append({"name": check.name, "passed": True,
                               "detail": check.description})
        record = {
            "name": section.name,
            "title": section.title,
            "measurement": section.measurement,
            "render": section.render,
            "render_params": dict(section.render_params),
            "trials": trials,
            "rows": rows,
            "checks": checks,
        }
        if self.timing:
            record["timing"] = {
                "seconds": time.perf_counter() - started,
            }
        return record

    # ------------------------------------------------------------------
    def run(self, sections: Optional[Iterable[str]] = None) -> Dict:
        """Run the experiment (optionally a subset of section names)."""

        wanted = None if sections is None else list(sections)
        selected = (self.spec.sections if wanted is None
                    else [self.spec.section(name) for name in wanted])
        records = [self.run_section(section) for section in selected]
        trials = sum(len(r["trials"]) for r in records)
        checks_total = sum(len(r["checks"]) for r in records)
        checks_failed = sum(
            1 for r in records for c in r["checks"] if not c["passed"]
        )
        artifact = {
            "schema": SCHEMA,
            "experiment": self.spec.name,
            "title": self.spec.title,
            "description": self.spec.description,
            "sections": records,
            "summary": {
                "sections": len(records),
                "trials": trials,
                "checks_total": checks_total,
                "checks_failed": checks_failed,
                "passed": checks_failed == 0,
            },
        }
        if self.timing:
            timing = {r["name"]: r.pop("timing")["seconds"] for r in records}
            artifact["timing"] = {
                "sections": timing,
                "seconds_total": sum(timing.values()),
            }
        return artifact


def run_experiment(spec: ExperimentSpec,
                   sections: Optional[Iterable[str]] = None,
                   timing: bool = False) -> Dict:
    """Convenience wrapper: ``Runner(spec, timing).run(sections)``."""

    return Runner(spec, timing=timing).run(sections)
