"""Declarative experiment specifications.

An :class:`ExperimentSpec` names one of the paper's evaluation
artifacts (a Table 1 row sweep, a figure, an ablation) and decomposes
it into :class:`Section` objects.  A section is declarative: it names a
registered *measurement* (an algorithm adapter), a *grid* of parameter
cells (each cell optionally carries a graph-family spec under the
``"graph"`` key), and a *seed sweep*.  The :class:`~.runner.Runner`
executes ``len(grid) * len(seeds)`` trials per section, reduces the
trial records to table rows, and evaluates the section's
:class:`Check` predicates — the paper's shape claims — against those
rows.

Everything in a spec is data except ``reduce`` and the check
functions, which are small named pure functions over the collected
rows; the execution itself (graph construction, seeding, metric
accounting) is owned entirely by the runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class Check:
    """A named shape claim evaluated against a section's reduced rows.

    ``fn`` receives the list of row dicts and raises ``AssertionError``
    (with a human-readable message) when the claim does not hold.  The
    runner records the outcome — it never lets a failed claim abort the
    rest of the experiment.
    """

    name: str
    fn: Callable[[List[dict]], None]
    description: str = ""


@dataclass(frozen=True)
class Section:
    """One table/figure of an experiment.

    Parameters
    ----------
    name, title:
        Identifier (stable, used in artifacts and ``--section``) and
        display title for the rendered table.
    measurement:
        Name of a registered measurement adapter (see
        :mod:`~repro.experiments.measurements`).
    grid:
        Tuple of parameter cells.  Each cell is a mapping; the optional
        ``"graph"`` entry is a graph-family spec dict handled by
        :func:`~repro.experiments.registry.build_graph`, every other
        entry is passed to the measurement as a keyword parameter.
    seeds:
        Algorithm seeds; the runner executes every cell once per seed.
    derive_seeds:
        If true, the per-trial seed is derived via ``stable_rng`` from
        ``(experiment, section, cell_index, seed)`` instead of being
        passed through verbatim — use for experiments that should not
        share randomness with anything else.
    reduce:
        Optional ``trials -> rows`` reduction (e.g. mean over seeds).
        The default emits one row per trial: ``params + seed +
        measures``.
    checks:
        Shape claims over the reduced rows.
    render:
        ``"table"`` (default) or ``"series"``; ``render_params`` may
        name the x/y row keys for series rendering.
    """

    name: str
    title: str
    measurement: str
    grid: Tuple[Mapping, ...]
    seeds: Tuple[int, ...] = (0,)
    derive_seeds: bool = False
    reduce: Optional[Callable[[List[dict]], List[dict]]] = None
    checks: Tuple[Check, ...] = ()
    render: str = "table"
    render_params: Mapping = field(default_factory=dict)


@dataclass(frozen=True)
class ExperimentSpec:
    """A named, registered experiment: metadata plus its sections."""

    name: str
    title: str
    description: str = ""
    sections: Tuple[Section, ...] = ()
    tags: Tuple[str, ...] = ()

    def section(self, name: str) -> Section:
        for sec in self.sections:
            if sec.name == name:
                return sec
        known = ", ".join(s.name for s in self.sections)
        raise KeyError(
            f"experiment {self.name!r} has no section {name!r} "
            f"(sections: {known})"
        )

    def describe(self) -> Dict[str, object]:
        """A JSON-able summary used by ``bench --list`` and artifacts."""

        return {
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "tags": list(self.tags),
            "sections": [
                {
                    "name": sec.name,
                    "title": sec.title,
                    "measurement": sec.measurement,
                    "cells": len(sec.grid),
                    "seeds": list(sec.seeds),
                    "checks": [c.name for c in sec.checks],
                }
                for sec in self.sections
            ],
        }
