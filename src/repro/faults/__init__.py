"""``repro.faults`` — the deterministic fault-injection plane.

Chaos testing for the reproduction's production layers: a seeded
:class:`FaultPlan` describes which compiled-in fault sites misbehave
(journal write errors, torn temp files, transient worker exceptions,
stalls, stream disconnects, dispatcher death) and is threaded through
``JobManager(fault_plan=...)``, ``solve_many(fault_plan=...)`` and
``python -m repro serve --fault-plan FILE``.  Decisions are pure
functions of ``(seed, site, scope, roll index)``, so a chaos run is
exactly reproducible — the ``faults`` experiment commits its recovery
metrics as a byte-deterministic ``BENCH_faults.json``.

Module map:

* :mod:`~repro.faults.plan` — :class:`FaultPlan` / :class:`SiteRule`,
  the site catalog, and the ``--fault-plan`` file codec;
* :mod:`~repro.faults.retry` — :class:`RetryPolicy`, the bounded
  exponential backoff (deterministic jitter) shared by the service
  and the batch engine.
"""

from .plan import FAULT_PLAN_FORMAT, SITES, FaultPlan, SiteRule, make_fault
from .retry import DEFAULT_RETRY, RETRYABLE, RetryPolicy

__all__ = [
    "DEFAULT_RETRY",
    "FAULT_PLAN_FORMAT",
    "RETRYABLE",
    "SITES",
    "FaultPlan",
    "RetryPolicy",
    "SiteRule",
    "make_fault",
]
