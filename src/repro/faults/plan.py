"""Seeded, deterministic fault injection for the service/batch layers.

A :class:`FaultPlan` describes *where* and *how often* the library
should fail on purpose: each registered fault **site** (a named hook
compiled into the solver service and batch engine) carries a
:class:`SiteRule` — a per-roll probability, an exact trigger index, an
optional total-fire limit, and site-specific knobs like the stall
duration.  The plan is injected explicitly
(``JobManager(fault_plan=...)``, ``solve_many(fault_plan=...)``,
``python -m repro serve --fault-plan FILE``); when absent every hook
is a single ``is None`` check, so production paths pay nothing.

Determinism contract
--------------------
A decision is a **pure function** of ``(plan seed, site, scope, k)``
where ``scope`` is the caller-supplied identity of the faulting
context (a job id, a batch task key) and ``k`` is how many times that
``(site, scope)`` pair has rolled before.  Thread/process scheduling
reorders *when* decisions happen, never *what* they are: as long as
each scope's rolls are sequential (true for a job driven by one worker
at a time), the set of injected faults for a given plan is identical
on every run — which is what lets the ``faults`` experiment commit a
byte-reproducible ``BENCH_faults.json``.

The recognised sites:

======================  ================================================
site                    effect when fired
======================  ================================================
``journal.write``       :class:`OSError` (``ENOSPC``) from
                        :meth:`repro.serve.journal.Journal.write`
``journal.tmp``         a stale ``*.json.tmp.<pid>`` file is left in
                        the state dir (a simulated crash mid-replace)
``worker.transient``    :class:`~repro.errors.TransientFault` at the
                        start of a job/batch-task attempt (retryable)
``worker.stall``        the job runner blocks ``stall_s`` seconds at a
                        checkpoint boundary (watchdog fodder)
``stream.disconnect``   the HTTP layer drops a checkpoint stream
                        mid-flight
``dispatcher.death``    :class:`RuntimeError` inside the dispatcher
                        loop (the thread dies; health degrades)
======================  ================================================
"""

from __future__ import annotations

import errno
import json
import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..errors import FaultPlanError, TransientFault
from ..utils import stable_rng

#: Self-describing marker of the ``--fault-plan`` file format.
FAULT_PLAN_FORMAT = "repro-fault-plan/1"

#: Every site a plan may target (unknown names are a
#: :class:`FaultPlanError` — a typo must not silently disarm a chaos
#: run).
SITES = (
    "journal.write",
    "journal.tmp",
    "worker.transient",
    "worker.stall",
    "stream.disconnect",
    "dispatcher.death",
)


@dataclass(frozen=True)
class SiteRule:
    """How one fault site misbehaves.

    ``rate`` is the per-roll probability; ``after`` instead fires
    exactly on the ``after``-th roll of each scope (1-based — use for
    "the dispatcher dies on its 3rd batch" scripts); ``limit`` caps
    total fires across all scopes; ``stall_s`` is the stall duration
    for ``worker.stall``.
    """

    rate: float = 0.0
    after: Optional[int] = None
    limit: Optional[int] = None
    stall_s: float = 0.05

    def validate(self, site: str) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise FaultPlanError(
                f"site {site!r}: rate {self.rate} outside [0, 1]")
        if self.after is not None and self.after < 1:
            raise FaultPlanError(
                f"site {site!r}: 'after' must be >= 1 (1-based roll)")
        if self.limit is not None and self.limit < 0:
            raise FaultPlanError(f"site {site!r}: negative limit")
        if self.stall_s < 0:
            raise FaultPlanError(f"site {site!r}: negative stall_s")


class FaultPlan:
    """A seeded set of :class:`SiteRule` entries plus fire accounting.

    Thread-safe; picklable (the lock is rebuilt, counters travel) so
    ``solve_many`` can ship a plan to process workers — though fire
    statistics then accumulate worker-side and are reported back
    through each task's attempt record, not through :meth:`stats`.
    """

    def __init__(self, seed: int = 0,
                 sites: Optional[Dict[str, Any]] = None):
        self.seed = int(seed)
        self.sites: Dict[str, SiteRule] = {}
        for site, rule in (sites or {}).items():
            if site not in SITES:
                raise FaultPlanError(
                    f"unknown fault site {site!r} "
                    f"(expected one of {list(SITES)})")
            if isinstance(rule, dict):
                unknown = set(rule) - {"rate", "after", "limit",
                                       "stall_s"}
                if unknown:
                    raise FaultPlanError(
                        f"site {site!r}: unknown rule keys "
                        f"{sorted(unknown)}")
                rule = SiteRule(**rule)
            rule.validate(site)
            self.sites[site] = rule
        self._counters: Dict[Tuple[str, str], int] = {}
        self._checks: Dict[str, int] = {}
        self._fires: Dict[str, int] = {}
        self._lock = threading.Lock()

    # -- pickling (process-backend batch workers) ----------------------
    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- decisions -----------------------------------------------------
    def active(self, site: str) -> bool:
        """Whether a rule targets ``site`` (hooks guard on this)."""

        return site in self.sites

    def rule(self, site: str) -> Optional[SiteRule]:
        return self.sites.get(site)

    def roll(self, site: str, scope: str = "") -> bool:
        """One deterministic decision: does ``site`` fire for this
        roll of ``scope``?  (Counts the roll either way.)
        """

        rule = self.sites.get(site)
        if rule is None:
            return False
        with self._lock:
            k = self._counters.get((site, scope), 0)
            self._counters[(site, scope)] = k + 1
            self._checks[site] = self._checks.get(site, 0) + 1
            if rule.after is not None:
                fire = (k + 1 == rule.after)
            else:
                fire = stable_rng(self.seed, "fault", site, scope,
                                  k).random() < rule.rate
            if fire and rule.limit is not None \
                    and self._fires.get(site, 0) >= rule.limit:
                fire = False
            if fire:
                self._fires[site] = self._fires.get(site, 0) + 1
        return fire

    def maybe_raise(self, site: str, scope: str = "") -> None:
        """Roll ``site`` and raise its configured exception on fire."""

        if self.roll(site, scope):
            raise make_fault(site)

    def stats(self) -> Dict[str, Any]:
        """Roll/fire accounting (this process only)."""

        with self._lock:
            return {
                "seed": self.seed,
                "sites": sorted(self.sites),
                "checks": dict(sorted(self._checks.items())),
                "fires": dict(sorted(self._fires.items())),
            }

    # -- (de)serialisation ---------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        sites: Dict[str, Any] = {}
        for site, rule in sorted(self.sites.items()):
            entry: Dict[str, Any] = {"rate": rule.rate}
            if rule.after is not None:
                entry["after"] = rule.after
            if rule.limit is not None:
                entry["limit"] = rule.limit
            if site == "worker.stall":
                entry["stall_s"] = rule.stall_s
            sites[site] = entry
        return {"format": FAULT_PLAN_FORMAT, "seed": self.seed,
                "sites": sites}

    @classmethod
    def from_dict(cls, data: Any) -> "FaultPlan":
        if (not isinstance(data, dict)
                or data.get("format") != FAULT_PLAN_FORMAT
                or not isinstance(data.get("sites"), dict)):
            raise FaultPlanError(
                f"not a {FAULT_PLAN_FORMAT!r} fault plan")
        return cls(seed=data.get("seed", 0), sites=data["sites"])

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Read a ``--fault-plan FILE`` (JSON) into a plan."""

        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError) as exc:
            raise FaultPlanError(
                f"cannot read fault plan {path!r}: {exc}") from exc
        return cls.from_dict(data)


def make_fault(site: str) -> Exception:
    """The exception one fired site injects (typed per site so the
    hardening under test sees exactly what production would)."""

    if site == "journal.write":
        return OSError(errno.ENOSPC,
                       f"injected fault: {site} (disk full)")
    if site == "worker.transient":
        return TransientFault(f"injected fault: {site}")
    return RuntimeError(f"injected fault: {site}")


__all__ = ["FAULT_PLAN_FORMAT", "SITES", "FaultPlan", "SiteRule",
           "make_fault"]
