"""Bounded retry with exponential backoff and deterministic jitter.

The :class:`RetryPolicy` is the one retry knob shared by the solver
service (``JobManager(retry=...)``) and the batch engine
(``solve_many(retry=...)``).  Only failures classified *transient*
(:class:`~repro.errors.TransientFault` — what the fault plane injects
at ``worker.transient``, and what user code may raise to opt into
retries) are retried; everything else fails fast, exactly as before.

Jitter is **deterministic**: the per-attempt delay is perturbed by a
``stable_rng(seed, key, attempt)`` draw, so two runs of the same plan
back off identically — real de-correlation of retry storms across
*different* keys (every job id jitters differently), zero run-to-run
noise within one key.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TransientFault
from ..utils import stable_rng

#: Exceptions a retry policy treats as transient.
RETRYABLE = (TransientFault,)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff: ``max_attempts`` tries in total,
    ``base_delay_s * factor**(attempt-1)`` between them (capped at
    ``max_delay_s``) plus up to ``jitter`` of that delay again,
    deterministically keyed.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    factor: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    def retryable(self, exc: BaseException) -> bool:
        """Whether ``exc`` is worth another attempt."""

        return isinstance(exc, RETRYABLE)

    def delay(self, attempt: int, key: str = "") -> float:
        """Seconds to sleep after failed attempt number ``attempt``
        (1-based), deterministically jittered by ``key``."""

        base = min(self.max_delay_s,
                   self.base_delay_s * self.factor ** (attempt - 1))
        spread = stable_rng(self.seed, "retry", key, attempt).random()
        return base * (1.0 + self.jitter * spread)


#: The service's default: three attempts, fast first backoff.  Batch
#: callers opt in explicitly (``solve_many(retry=...)``) so historical
#: single-attempt semantics are untouched.
DEFAULT_RETRY = RetryPolicy()


__all__ = ["DEFAULT_RETRY", "RETRYABLE", "RetryPolicy"]
