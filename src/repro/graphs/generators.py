"""Graph workload generators for the experiments.

All generators return :class:`networkx.Graph` with integer node labels
``0..n-1`` and are deterministic for a given seed.  They cover the graph
families the paper's bounds are parameterized by: bounded-degree graphs
(random regular), sparse random graphs (G(n, p)), structured topologies
(rings, paths, trees, grids), the adversarial star of Section 1.1, and
bipartite graphs for the Appendix B algorithms.
"""

from __future__ import annotations

import math
from typing import Optional

import networkx as nx

from ..errors import InvalidInstance
from ..utils import stable_rng


def empty_graph(n: int) -> nx.Graph:
    """n isolated nodes (degenerate input exercised by edge-case tests)."""

    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    return graph


def path_graph(n: int) -> nx.Graph:
    return nx.path_graph(n)


def cycle_graph(n: int) -> nx.Graph:
    if n < 3:
        raise InvalidInstance(f"a cycle needs at least 3 nodes, got {n}")
    return nx.cycle_graph(n)


def star_graph(leaves: int) -> nx.Graph:
    """A star: node 0 is the hub, 1..leaves are leaves.

    This is the topology of the Section 1.1 counterexample showing why all
    nodes must not perform local-ratio weight reductions simultaneously.
    """

    return nx.star_graph(leaves)


def complete_graph(n: int) -> nx.Graph:
    return nx.complete_graph(n)


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """2D grid relabeled to integers (max degree 4)."""

    grid = nx.grid_2d_graph(rows, cols)
    return nx.convert_node_labels_to_integers(grid, ordering="sorted")


def gnp_graph(n: int, p: float, seed: int = 0) -> nx.Graph:
    """Erdős–Rényi G(n, p) with isolated-node-friendly labeling."""

    rng = stable_rng(seed, "gnp", n, p)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def sparse_gnp_graph(n: int, p: float, seed: int = 0) -> nx.Graph:
    """Erdős–Rényi G(n, p) in O(n + m) expected time.

    The Batagelj–Brandes geometric-skipping sampler: instead of flipping
    a coin per pair (the O(n²) loop of :func:`gnp_graph`), it draws the
    gap to the next present edge from the geometric distribution.  Made
    for the large sparse workloads of the perf experiments — n = 10⁵ at
    constant average degree is seconds, not minutes.  The edge set
    differs from :func:`gnp_graph` at equal seeds (different sampling
    order), so the two families are distinct workload recipes, not
    interchangeable ones.
    """

    if not 0.0 <= p <= 1.0:
        raise InvalidInstance(f"edge probability must be in [0, 1], got {p}")
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    if n < 2 or p == 0.0:
        return graph
    if p == 1.0:
        graph.add_edges_from(
            (u, v) for u in range(n) for v in range(u + 1, n)
        )
        return graph
    rng = stable_rng(seed, "sparse-gnp", n, p)
    log_q = math.log(1.0 - p)
    v, w = 1, -1
    while v < n:
        # Gap to the next sampled pair in the row-major pair order.
        w += 1 + int(math.log(1.0 - rng.random()) / log_q)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            graph.add_edge(v, w)
    return graph


def random_regular_graph(degree: int, n: int, seed: int = 0) -> nx.Graph:
    """d-regular random graph (n*d must be even, d < n)."""

    if degree >= n or (degree * n) % 2 != 0:
        raise InvalidInstance(
            f"no {degree}-regular graph on {n} nodes exists"
        )
    rng = stable_rng(seed, "regular", degree, n)
    return nx.random_regular_graph(degree, n, seed=rng.randrange(2**31))


def random_tree(n: int, seed: int = 0) -> nx.Graph:
    """Uniform random labeled tree via a Prüfer sequence."""

    if n <= 0:
        raise InvalidInstance("a tree needs at least one node")
    if n == 1:
        return empty_graph(1)
    if n == 2:
        graph = empty_graph(2)
        graph.add_edge(0, 1)
        return graph
    rng = stable_rng(seed, "tree", n)
    prufer = [rng.randrange(n) for _ in range(n - 2)]
    return nx.from_prufer_sequence(prufer)


def power_law_graph(n: int, exponent: float = 2.5, seed: int = 0,
                    max_degree: Optional[int] = None) -> nx.Graph:
    """Configuration-model-style graph with a power-law degree profile.

    Self-loops and parallel edges are discarded, so realized degrees are
    at most the drawn targets.  Used for heterogeneous-degree workloads.
    """

    rng = stable_rng(seed, "powerlaw", n, exponent)
    cap = max_degree if max_degree is not None else max(2, int(math.sqrt(n)))
    degrees = []
    for _ in range(n):
        # Inverse-CDF sample of P(d) ∝ d^-exponent over 1..cap.
        u = rng.random()
        d = int(round((1 - u + u * cap ** (1 - exponent))
                      ** (1 / (1 - exponent))))
        degrees.append(max(1, min(cap, d)))
    if sum(degrees) % 2 == 1:
        degrees[0] += 1
    stubs = [node for node, d in enumerate(degrees) for _ in range(d)]
    rng.shuffle(stubs)
    graph = empty_graph(n)
    for i in range(0, len(stubs) - 1, 2):
        u, v = stubs[i], stubs[i + 1]
        if u != v:
            graph.add_edge(u, v)
    return graph


def random_bipartite_graph(left: int, right: int, p: float,
                           seed: int = 0) -> nx.Graph:
    """Bipartite G(left, right, p); nodes carry a ``side`` attribute."""

    rng = stable_rng(seed, "bipartite", left, right, p)
    graph = nx.Graph()
    for u in range(left):
        graph.add_node(u, side="A")
    for v in range(left, left + right):
        graph.add_node(v, side="B")
    for u in range(left):
        for v in range(left, left + right):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def bipartite_regular_graph(side_size: int, degree: int,
                            seed: int = 0) -> nx.Graph:
    """d-regular bipartite graph built from d random perfect matchings."""

    if degree > side_size:
        raise InvalidInstance("degree cannot exceed the side size")
    rng = stable_rng(seed, "biregular", side_size, degree)
    graph = nx.Graph()
    for u in range(side_size):
        graph.add_node(u, side="A")
    for v in range(side_size, 2 * side_size):
        graph.add_node(v, side="B")
    for _ in range(degree):
        perm = list(range(side_size, 2 * side_size))
        rng.shuffle(perm)
        for u in range(side_size):
            graph.add_edge(u, perm[u])
    return graph


def layered_graph(layers: int, width: int, seed: int = 0,
                  p: float = 1.0) -> nx.Graph:
    """A chain of independent layers with (random) inter-layer edges.

    Layer ``i`` holds ``width`` mutually non-adjacent nodes; consecutive
    layers are joined completely (``p = 1``) or by random bipartite
    edges.  Each node carries a ``layer`` attribute.  With weights
    ``2^layer`` this is the workload that *serializes* Algorithm 2's
    weight layers — every node has higher-layer neighbors until the top
    layer retires — exhibiting the Theorem 2.3 log W round factor that
    typical sparse graphs hide behind local parallelism.
    """

    if layers < 1 or width < 1:
        raise InvalidInstance("layers and width must be positive")
    rng = stable_rng(seed, "layered", layers, width, p)
    graph = nx.Graph()
    for layer in range(layers):
        for j in range(width):
            graph.add_node(layer * width + j, layer=layer)
    for layer in range(layers - 1):
        for j in range(width):
            for k in range(width):
                if p >= 1.0 or rng.random() < p:
                    graph.add_edge(layer * width + j,
                                   (layer + 1) * width + k)
    return graph


def caterpillar_graph(spine: int, legs_per_node: int) -> nx.Graph:
    """A path with ``legs_per_node`` pendant leaves on each spine node."""

    graph = nx.path_graph(spine)
    next_label = spine
    for s in range(spine):
        for _ in range(legs_per_node):
            graph.add_edge(s, next_label)
            next_label += 1
    return graph


def max_degree(graph: nx.Graph) -> int:
    """Δ of the graph (0 for an empty node set)."""

    return max((d for _, d in graph.degree()), default=0)


FAMILIES = {
    "path": lambda n, seed: path_graph(n),
    "cycle": lambda n, seed: cycle_graph(max(3, n)),
    "tree": random_tree,
    "gnp-sparse": lambda n, seed: gnp_graph(n, 3.0 / max(1, n - 1), seed),
    "gnp-dense": lambda n, seed: gnp_graph(n, 0.3, seed),
    "regular-4": lambda n, seed: random_regular_graph(
        4, n if (n * 4) % 2 == 0 else n + 1, seed),
    "grid": lambda n, seed: grid_graph(max(2, int(math.sqrt(n))),
                                       max(2, int(math.sqrt(n)))),
    "star": lambda n, seed: star_graph(max(2, n - 1)),
}
