"""Validators for algorithm outputs (independent sets, matchings, colorings).

These raise :class:`~repro.errors.AlgorithmContractViolation` with a
precise description of the offending structure; tests and the benchmark
harness call them after every algorithm execution.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Set, Tuple

import networkx as nx

from ..errors import AlgorithmContractViolation


def check_independent_set(graph: nx.Graph, nodes: Iterable[Hashable],
                          require_maximal: bool = False) -> Set[Hashable]:
    """Verify that ``nodes`` is an independent set of ``graph``.

    With ``require_maximal`` also verify maximality (every node outside
    the set has a neighbor inside it).
    """

    chosen = set(nodes)
    missing = chosen - set(graph.nodes)
    if missing:
        raise AlgorithmContractViolation(
            f"independent set contains non-nodes: {sorted(map(repr, missing))[:5]}"
        )
    for u in chosen:
        for v in graph.neighbors(u):
            if v in chosen:
                raise AlgorithmContractViolation(
                    f"independent set contains adjacent nodes {u!r} and {v!r}"
                )
    if require_maximal:
        for v in graph.nodes:
            if v in chosen:
                continue
            if not any(u in chosen for u in graph.neighbors(v)):
                raise AlgorithmContractViolation(
                    f"set is not maximal: {v!r} has no neighbor in the set"
                )
    return chosen


def check_matching(graph: nx.Graph,
                   edges: Iterable[Tuple[Hashable, Hashable]],
                   require_maximal: bool = False) -> Set[frozenset]:
    """Verify that ``edges`` is a matching of ``graph``.

    With ``require_maximal`` also verify maximality (no remaining edge has
    both endpoints unmatched).
    """

    matching = set()
    matched_nodes: Set[Hashable] = set()
    for u, v in edges:
        if not graph.has_edge(u, v):
            raise AlgorithmContractViolation(
                f"matching contains non-edge ({u!r}, {v!r})"
            )
        if u in matched_nodes or v in matched_nodes:
            raise AlgorithmContractViolation(
                f"matching edges share an endpoint at ({u!r}, {v!r})"
            )
        matched_nodes.update((u, v))
        matching.add(frozenset((u, v)))
    if require_maximal:
        for u, v in graph.edges:
            if u not in matched_nodes and v not in matched_nodes:
                raise AlgorithmContractViolation(
                    f"matching is not maximal: edge ({u!r}, {v!r}) is free"
                )
    return matching


def check_coloring(graph: nx.Graph, colors: dict,
                   palette_size: int | None = None) -> None:
    """Verify that ``colors`` is a proper coloring (optionally ≤ palette)."""

    for v in graph.nodes:
        if v not in colors:
            raise AlgorithmContractViolation(f"node {v!r} is uncolored")
    for u, v in graph.edges:
        if colors[u] == colors[v]:
            raise AlgorithmContractViolation(
                f"adjacent nodes {u!r}, {v!r} share color {colors[u]!r}"
            )
    if palette_size is not None:
        used = set(colors.values())
        if len(used) > palette_size:
            raise AlgorithmContractViolation(
                f"coloring uses {len(used)} colors, allowed {palette_size}"
            )


def matched_nodes(matching: Iterable) -> Set[Hashable]:
    """Return the set of endpoints of a matching given as edge pairs."""

    nodes: Set[Hashable] = set()
    for edge in matching:
        u, v = tuple(edge)
        nodes.update((u, v))
    return nodes


def is_augmenting_path(graph: nx.Graph, matching: Set[frozenset],
                       path: Tuple[Hashable, ...]) -> bool:
    """Check the augmenting-path conditions of Appendix B.2 for ``path``.

    The path must alternate unmatched/matched/... edges, start and end at
    unmatched (free) vertices, be simple, and consist of graph edges.
    """

    if len(path) < 2 or len(set(path)) != len(path):
        return False
    covered = matched_nodes(matching)
    if path[0] in covered or path[-1] in covered:
        return False
    for i in range(len(path) - 1):
        u, v = path[i], path[i + 1]
        if not graph.has_edge(u, v):
            return False
        edge_matched = frozenset((u, v)) in matching
        if i % 2 == 0 and edge_matched:
            return False
        if i % 2 == 1 and not edge_matched:
            return False
    return True
