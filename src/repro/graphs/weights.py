"""Weight assignment schemes for nodes and edges.

The paper assumes integer node weights in ``[W]`` with ``W`` polynomial in
``n`` (so a weight fits in one CONGEST message).  These helpers attach a
``weight`` attribute to nodes or edges under several distributions; the
experiments sweep ``W`` to exhibit the ``log W`` factor of Theorem 2.3.
"""

from __future__ import annotations

from typing import Dict, Hashable

import networkx as nx

from ..errors import InvalidInstance
from ..utils import stable_rng


def assign_node_weights(graph: nx.Graph, max_weight: int = 1,
                        scheme: str = "uniform", seed: int = 0) -> nx.Graph:
    """Attach integer node weights in ``[1, max_weight]`` in place.

    Schemes
    -------
    ``uniform``     — i.i.d. uniform on ``[1, W]``.
    ``constant``    — every node has weight ``W`` (unweighted case scaled).
    ``geometric``   — weights concentrated near 1 with an exponential tail.
    ``log-uniform`` — weight 2^U with U uniform on [0, log2 W]: every
                      weight layer of Algorithm 2 is equally occupied,
                      the workload that exposes the log W round factor.
    ``degree``      — weight proportional to ``1 + deg(v)`` (capped at W),
                      an adversarial profile for greedy baselines.
    ``star-trap``   — the Section 1.1 counterexample profile: the highest-
                      id hub gets slightly less than the sum of its
                      neighbors but more than each of them.
    """

    if max_weight < 1:
        raise InvalidInstance(f"max_weight must be >= 1, got {max_weight}")
    rng = stable_rng(seed, "node-weights", scheme, max_weight)
    weights = _node_scheme(graph, max_weight, scheme, rng)
    nx.set_node_attributes(graph, weights, "weight")
    return graph


def _node_scheme(graph: nx.Graph, max_weight: int, scheme: str,
                 rng) -> Dict[Hashable, int]:
    nodes = list(graph.nodes)
    if scheme == "uniform":
        return {v: rng.randint(1, max_weight) for v in nodes}
    if scheme == "constant":
        return {v: max_weight for v in nodes}
    if scheme == "geometric":
        weights = {}
        for v in nodes:
            w = 1
            while w < max_weight and rng.random() < 0.5:
                w *= 2
            weights[v] = min(w, max_weight)
        return weights
    if scheme == "log-uniform":
        top_layer = max(0, (max_weight).bit_length() - 1)
        return {
            v: min(max_weight, 2 ** rng.randint(0, top_layer))
            for v in nodes
        }
    if scheme == "degree":
        return {
            v: min(max_weight, 1 + graph.degree(v)) for v in nodes
        }
    if scheme == "star-trap":
        if not nodes:
            return {}
        hub = max(nodes, key=graph.degree)
        weights = {v: max(1, max_weight // 4) for v in nodes}
        neighbor_sum = sum(
            weights[u] for u in graph.neighbors(hub)
        )
        # Strictly heavier than any neighbor, strictly lighter than their sum.
        weights[hub] = max(weights[hub] + 1, neighbor_sum - 1)
        return weights
    raise InvalidInstance(f"unknown node weight scheme {scheme!r}")


def assign_edge_weights(graph: nx.Graph, max_weight: int = 1,
                        scheme: str = "uniform", seed: int = 0) -> nx.Graph:
    """Attach integer edge weights in ``[1, max_weight]`` in place.

    Schemes: ``uniform``, ``constant`` and ``bimodal`` (a heavy class worth
    ``W`` and a light class worth 1 — the workload where weight-oblivious
    maximal matching does poorly but the local-ratio algorithms shine).
    """

    if max_weight < 1:
        raise InvalidInstance(f"max_weight must be >= 1, got {max_weight}")
    rng = stable_rng(seed, "edge-weights", scheme, max_weight)
    if scheme == "uniform":
        weights = {e: rng.randint(1, max_weight) for e in graph.edges}
    elif scheme == "constant":
        weights = {e: max_weight for e in graph.edges}
    elif scheme == "bimodal":
        weights = {
            e: max_weight if rng.random() < 0.2 else 1 for e in graph.edges
        }
    else:
        raise InvalidInstance(f"unknown edge weight scheme {scheme!r}")
    nx.set_edge_attributes(graph, weights, "weight")
    return graph


def node_weight(graph: nx.Graph, node: Hashable) -> int:
    """Weight of ``node`` (defaults to 1 when unweighted)."""

    return graph.nodes[node].get("weight", 1)


def edge_weight(graph: nx.Graph, u: Hashable, v: Hashable) -> int:
    """Weight of edge ``{u, v}`` (defaults to 1 when unweighted)."""

    return graph.edges[u, v].get("weight", 1)


def total_node_weight(graph: nx.Graph, nodes) -> int:
    """Sum of node weights over ``nodes``."""

    return sum(node_weight(graph, v) for v in nodes)


def total_edge_weight(graph: nx.Graph, edges) -> int:
    """Sum of edge weights over ``edges`` (edges given as (u, v) pairs)."""

    return sum(edge_weight(graph, u, v) for u, v in edges)


def max_node_weight(graph: nx.Graph) -> int:
    """W — the maximum node weight (1 for an empty or unweighted graph)."""

    return max((node_weight(graph, v) for v in graph.nodes), default=1)
