"""Matching substrates, baselines and exact oracles."""

from .exact import (
    exact_max_cardinality_matching,
    exact_max_weight_matching,
    optimum_cardinality,
    optimum_weight,
)
from .greedy import (
    greedy_maximal_matching,
    greedy_weighted_matching,
    matching_weight,
)
from .hopcroft_karp import bipartite_sides, hopcroft_karp
from .israeli_itai import IsraeliItaiProgram, israeli_itai_matching

__all__ = [
    "IsraeliItaiProgram",
    "bipartite_sides",
    "exact_max_cardinality_matching",
    "exact_max_weight_matching",
    "greedy_maximal_matching",
    "greedy_weighted_matching",
    "hopcroft_karp",
    "israeli_itai_matching",
    "matching_weight",
    "optimum_cardinality",
    "optimum_weight",
]
