"""Exact matching oracles (Edmonds via networkx).

The paper measures approximation factors against the true optimum; these
wrappers expose the exact maximum-weight and maximum-cardinality matching
as sets of frozensets, matching the representation used everywhere else
in this library.
"""

from __future__ import annotations

from typing import Set

import networkx as nx

from .greedy import matching_weight


def exact_max_weight_matching(graph: nx.Graph) -> Set[frozenset]:
    """Maximum-weight matching (not necessarily maximum cardinality)."""

    raw = nx.max_weight_matching(graph, maxcardinality=False, weight="weight")
    return {frozenset(edge) for edge in raw}


def exact_max_cardinality_matching(graph: nx.Graph) -> Set[frozenset]:
    """Maximum-cardinality matching (weights ignored)."""

    unit = nx.Graph()
    unit.add_nodes_from(graph.nodes)
    unit.add_edges_from(graph.edges)
    raw = nx.max_weight_matching(unit, maxcardinality=True, weight=None)
    return {frozenset(edge) for edge in raw}


def optimum_weight(graph: nx.Graph) -> int:
    """Weight of the maximum-weight matching."""

    return matching_weight(graph, exact_max_weight_matching(graph))


def optimum_cardinality(graph: nx.Graph) -> int:
    """Size of the maximum-cardinality matching."""

    return len(exact_max_cardinality_matching(graph))
