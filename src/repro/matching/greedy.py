"""Sequential matching baselines.

* :func:`greedy_weighted_matching` — scan edges by decreasing weight; the
  classical sequential 2-approximation for maximum weight matching, the
  natural comparator for the paper's distributed 2- and (2+ε)-approx
  algorithms.
* :func:`greedy_maximal_matching` — arbitrary-order maximal matching
  (a 2-approximation for maximum cardinality).
"""

from __future__ import annotations

from typing import Hashable, Set

import networkx as nx

from ..graphs import edge_weight


def greedy_weighted_matching(graph: nx.Graph) -> Set[frozenset]:
    """Greedy by decreasing weight; guarantees weight >= OPT / 2."""

    order = sorted(
        graph.edges,
        key=lambda e: (-edge_weight(graph, *e), repr(e)),
    )
    matched: Set[Hashable] = set()
    matching: Set[frozenset] = set()
    for u, v in order:
        if u not in matched and v not in matched:
            matching.add(frozenset((u, v)))
            matched.update((u, v))
    return matching


def greedy_maximal_matching(graph: nx.Graph) -> Set[frozenset]:
    """Maximal matching by id-ordered scan (cardinality >= OPT / 2)."""

    matched: Set[Hashable] = set()
    matching: Set[frozenset] = set()
    for u, v in sorted(graph.edges, key=repr):
        if u not in matched and v not in matched:
            matching.add(frozenset((u, v)))
            matched.update((u, v))
    return matching


def matching_weight(graph: nx.Graph, matching) -> int:
    """Total weight of a matching given as an iterable of 2-sets/pairs."""

    total = 0
    for edge in matching:
        u, v = tuple(edge)
        total += edge_weight(graph, u, v)
    return total
