"""Sequential Hopcroft–Karp maximum-cardinality bipartite matching [HK73].

The paper's (1+ε) algorithms instantiate the Hopcroft–Karp framework
distributively; this sequential implementation is both an evaluation
oracle for bipartite instances and a reference for the framework's two
classical facts (restated in Appendix B.2):

1. a matching with no augmenting path of length ≤ 2⌈1/ε⌉+1 is a
   (1+ε)-approximation;
2. augmenting along a maximal set of shortest augmenting paths raises the
   shortest augmenting-path length.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Optional, Set, Tuple

import networkx as nx

from ..errors import InvalidInstance

_INF = float("inf")


def bipartite_sides(graph: nx.Graph) -> Tuple[Set[Hashable], Set[Hashable]]:
    """Return the (A, B) sides using node attribute ``side`` or 2-coloring."""

    a_side = {v for v, d in graph.nodes(data=True) if d.get("side") == "A"}
    b_side = {v for v, d in graph.nodes(data=True) if d.get("side") == "B"}
    if a_side or b_side:
        if a_side | b_side != set(graph.nodes):
            raise InvalidInstance("every node needs a side attribute")
        return a_side, b_side
    if not nx.is_bipartite(graph):
        raise InvalidInstance("graph is not bipartite")
    a_side, b_side = nx.bipartite.sets(graph)
    return set(a_side), set(b_side)


def hopcroft_karp(graph: nx.Graph) -> Set[frozenset]:
    """Maximum-cardinality matching of a bipartite graph."""

    left, _right = bipartite_sides(graph)
    match: Dict[Hashable, Optional[Hashable]] = {v: None for v in graph.nodes}
    distance: Dict[Hashable, float] = {}

    def bfs() -> bool:
        queue = deque()
        for u in left:
            if match[u] is None:
                distance[u] = 0
                queue.append(u)
            else:
                distance[u] = _INF
        found_free = False
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                mate = match[v]
                if mate is None:
                    found_free = True
                elif distance[mate] == _INF:
                    distance[mate] = distance[u] + 1
                    queue.append(mate)
        return found_free

    def dfs(u: Hashable) -> bool:
        for v in graph.neighbors(u):
            mate = match[v]
            if mate is None or (distance.get(mate) == distance[u] + 1
                                and dfs(mate)):
                match[u] = v
                match[v] = u
                return True
        distance[u] = _INF
        return False

    while bfs():
        for u in left:
            if match[u] is None:
                dfs(u)

    return {
        frozenset((u, match[u])) for u in left if match[u] is not None
    }
