"""Randomized distributed maximal matching in O(log n) rounds.

This is the classical Israeli–Itai-style proposal algorithm used as the
"previous results" baseline for the paper's round comparisons: unmatched
nodes flip a coin to become proposers or responders; proposers pick a
random eligible neighbor; responders accept one incoming proposal.  Each
phase removes a constant fraction of edges in expectation, so the
algorithm finishes in O(log n) phases w.h.p.

Node outputs: the matched partner, or ``None`` for nodes that end
unmatched (all their neighbors got matched).
"""

from __future__ import annotations

from typing import Hashable, Optional, Set, Tuple

import networkx as nx

from ..congest import NodeContext, NodeProgram, SynchronousNetwork
from ..graphs import check_matching


class IsraeliItaiProgram(NodeProgram):
    """Three rounds per phase: propose, accept, confirm-and-retire.

    Proposers never respond within a phase, so an accept is always
    honored: a responder that accepts proposer ``u`` can safely match
    with ``u`` because ``u`` matches with whichever accept it receives,
    and accepts only ever come from ``u``'s unique proposal target.
    """

    def on_start(self, ctx: NodeContext) -> None:
        self.active_neighbors = set(ctx.neighbors)
        self.proposed_to: Optional[Hashable] = None
        self.accepted: Optional[Hashable] = None

    def on_round(self, ctx: NodeContext) -> None:
        phase_step = ctx.round % 3
        if phase_step == 0:
            self._propose(ctx)
        elif phase_step == 1:
            self._accept(ctx)
        else:
            self._confirm(ctx)

    def _propose(self, ctx: NodeContext) -> None:
        # First digest retirement notices from the previous phase.
        for src, payload in ctx.inbox.items():
            if payload and payload[0] == "retired":
                self.active_neighbors.discard(src)
        if not self.active_neighbors:
            ctx.halt(None)
            return
        self.proposed_to = None
        if ctx.rng.random() < 0.5:  # proposer this phase
            target = ctx.rng.choice(sorted(self.active_neighbors, key=repr))
            self.proposed_to = target
            ctx.send(target, "propose")

    def _accept(self, ctx: NodeContext) -> None:
        self.accepted = None
        if self.proposed_to is not None:
            return  # proposers do not respond in the same phase
        proposers = sorted(
            (src for src, payload in ctx.inbox.items()
             if payload and payload[0] == "propose"),
            key=repr,
        )
        if proposers:
            self.accepted = proposers[0]
            ctx.send(proposers[0], "accept")

    def _confirm(self, ctx: NodeContext) -> None:
        got_accept = any(
            payload and payload[0] == "accept"
            for payload in ctx.inbox.values()
        )
        if self.proposed_to is not None and got_accept:
            ctx.broadcast("retired")
            ctx.halt(self.proposed_to)
            return
        if self.accepted is not None:
            ctx.broadcast("retired")
            ctx.halt(self.accepted)


def israeli_itai_matching(
    graph: nx.Graph,
    seed: int = 0,
    network: Optional[SynchronousNetwork] = None,
    max_rounds: int = 10_000,
    label: str = "israeli-itai",
) -> Tuple[Set[frozenset], int]:
    """Run the maximal-matching protocol; return ``(matching, rounds)``."""

    if network is None:
        network = SynchronousNetwork(graph, seed=seed)
    result = network.run(lambda node: IsraeliItaiProgram(),
                         max_rounds=max_rounds, label=label)
    matching: Set[frozenset] = set()
    for node, partner in result.outputs.items():
        if partner is not None:
            matching.add(frozenset((node, partner)))
    pairs = [tuple(edge) for edge in matching]
    check_matching(graph, pairs, require_maximal=True)
    return matching, result.rounds
