"""Maximal-independent-set substrates: Luby, Ghaffari, greedy, coloring."""

from .composite import (
    AlmostMaximalResult,
    almost_maximal_independent_set,
    discussion_failure_probability,
    nmis_plus_luby_mis,
)
from .coloring import (
    ColoringResult,
    delta_plus_one_coloring,
    greedy_coloring,
    linial_coloring,
    linial_step,
    reduce_palette,
)
from .ghaffari import (
    DOMINATED,
    GhaffariProgram,
    GoldenRoundStats,
    IN_IS,
    RESIDUAL,
    nearly_maximal_is,
)
from .greedy import exact_mwis, greedy_mis, greedy_mwis, mwis_weight
from .luby import IN_MIS, LubyProgram, OUT_MIS, luby_mis

__all__ = [
    "AlmostMaximalResult",
    "ColoringResult",
    "almost_maximal_independent_set",
    "discussion_failure_probability",
    "nmis_plus_luby_mis",
    "DOMINATED",
    "GhaffariProgram",
    "GoldenRoundStats",
    "IN_IS",
    "IN_MIS",
    "LubyProgram",
    "OUT_MIS",
    "RESIDUAL",
    "delta_plus_one_coloring",
    "exact_mwis",
    "greedy_coloring",
    "greedy_mis",
    "greedy_mwis",
    "linial_coloring",
    "linial_step",
    "luby_mis",
    "mwis_weight",
    "nearly_maximal_is",
    "reduce_palette",
]
