"""Deterministic distributed (Δ+1)-coloring.

Algorithm 3 consumes a (Δ+1)-coloring computed by a deterministic
distributed algorithm; the paper charges O(Δ + log* n) rounds for it,
citing [BEK14, Bar15].  We implement the classical constructive pipeline:

1. **Linial color reduction** via polynomial evaluation families over
   GF(q): given a proper m-coloring, each node encodes its color as a
   degree-(k−1) polynomial (its base-q digits) and picks an evaluation
   point x where it differs from all neighbors; the pair (x, f(x)) is the
   new color in a palette of q².  Choosing the prime q > Δ(k−1) makes the
   point exist.  O(log* n) iterations shrink n colors to O(Δ² log² Δ).
2. **Class-by-class reduction**: color classes above Δ+1 recolor greedily
   one class per round (each class is an independent set, so the whole
   class moves simultaneously).

Step 2 costs O(Δ²) rounds rather than BEK14's O(Δ); DESIGN.md §4 records
this substitution.  :class:`ColoringResult` reports both the measured
rounds of this pipeline and the analytic O(Δ + log* n) the paper charges
with [BEK14] as a black box.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable

import networkx as nx

from ..errors import AlgorithmContractViolation
from ..graphs import check_coloring, max_degree
from ..utils import log_star, next_prime


@dataclass
class ColoringResult:
    """A proper coloring plus its round accounting."""

    colors: Dict[Hashable, int]
    palette: int
    linial_rounds: int
    reduction_rounds: int
    accounted_bek14_rounds: int

    @property
    def measured_rounds(self) -> int:
        return self.linial_rounds + self.reduction_rounds


def greedy_coloring(graph: nx.Graph) -> Dict[Hashable, int]:
    """Sequential greedy (Δ+1)-coloring oracle (id order)."""

    colors: Dict[Hashable, int] = {}
    for v in sorted(graph.nodes, key=repr):
        taken = {colors[u] for u in graph.neighbors(v) if u in colors}
        color = 0
        while color in taken:
            color += 1
        colors[v] = color
    return colors


def _linial_parameters(m: int, delta: int) -> tuple[int, int]:
    """Return ``(q, k)`` for one Linial step on an m-coloring, degree Δ."""

    q = next_prime(max(3, delta + 2))
    for _ in range(8):  # the fixpoint stabilizes in a couple of iterations
        k = max(1, math.ceil(math.log(max(2, m)) / math.log(q)))
        q_needed = next_prime(max(q, delta * max(0, k - 1) + 1))
        if q_needed == q:
            break
        q = q_needed
    k = max(1, math.ceil(math.log(max(2, m)) / math.log(q)))
    return q, k


def linial_step(graph: nx.Graph, colors: Dict[Hashable, int], q: int,
                k: int) -> Dict[Hashable, int]:
    """One Linial reduction round: m colors → at most q² colors.

    Requires the input coloring proper with all colors < q**k, and
    q > Δ(k−1).  Each node needs only its neighbors' current colors —
    one CONGEST round.
    """

    def digits(color: int) -> list[int]:
        out = []
        for _ in range(k):
            out.append(color % q)
            color //= q
        return out

    def evaluate(poly: list[int], x: int) -> int:
        value = 0
        for coefficient in reversed(poly):
            value = (value * x + coefficient) % q
        return value

    polynomials = {v: digits(c) for v, c in colors.items()}
    new_colors: Dict[Hashable, int] = {}
    for v in graph.nodes:
        poly_v = polynomials[v]
        for x in range(q):
            value = evaluate(poly_v, x)
            if all(evaluate(polynomials[u], x) != value
                   for u in graph.neighbors(v)):
                new_colors[v] = x * q + value
                break
        else:  # pragma: no cover - impossible when q > Δ(k-1)
            raise AlgorithmContractViolation(
                f"no good evaluation point for node {v!r} (q={q}, k={k})"
            )
    return new_colors


def linial_coloring(graph: nx.Graph) -> tuple[Dict[Hashable, int], int, int]:
    """Iterate Linial steps from the id-coloring until no progress.

    Returns ``(colors, rounds, palette_bound)`` with palette_bound =
    O(Δ² log² Δ); the number of rounds is O(log* n).
    """

    delta = max_degree(graph)
    ordered = sorted(graph.nodes, key=repr)
    colors = {v: i for i, v in enumerate(ordered)}
    m = max(len(ordered), 2)
    rounds = 0
    while True:
        q, k = _linial_parameters(m, delta)
        if q * q >= m:
            break
        colors = linial_step(graph, colors, q, k)
        check_coloring(graph, colors)
        m = q * q
        rounds += 1
    return colors, rounds, m


def reduce_palette(graph: nx.Graph, colors: Dict[Hashable, int],
                   target: int) -> tuple[Dict[Hashable, int], int]:
    """Class-by-class reduction to ``target`` colors (one round per class).

    Processes color classes from the top down; each class is an
    independent set, so all its nodes recolor greedily in the same round.
    Requires ``target >= Δ+1``.
    """

    delta = max_degree(graph)
    if target < delta + 1:
        raise AlgorithmContractViolation(
            f"cannot reduce below Δ+1 = {delta + 1} colors (asked {target})"
        )
    colors = dict(colors)
    palette = max(colors.values(), default=-1) + 1
    rounds = 0
    for c in range(palette - 1, target - 1, -1):
        rounds += 1
        for v in [u for u, col in colors.items() if col == c]:
            taken = {colors[u] for u in graph.neighbors(v)}
            replacement = 0
            while replacement in taken:
                replacement += 1
            colors[v] = replacement
    return colors, rounds


def delta_plus_one_coloring(graph: nx.Graph) -> ColoringResult:
    """Full deterministic (Δ+1)-coloring pipeline with round accounting."""

    delta = max_degree(graph)
    colors, linial_rounds, _ = linial_coloring(graph)
    colors, reduction_rounds = reduce_palette(graph, colors, delta + 1)
    check_coloring(graph, colors, palette_size=delta + 1)
    n = max(2, graph.number_of_nodes())
    accounted = delta + log_star(n) + 1
    return ColoringResult(
        colors=colors,
        palette=delta + 1,
        linial_rounds=linial_rounds,
        reduction_rounds=reduction_rounds,
        accounted_bek14_rounds=accounted,
    )
