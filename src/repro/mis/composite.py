"""Discussion-section constructions: almost-maximal IS and composite MIS.

The paper's Discussion (§4) observes that the Section 3.1 algorithm
computes an *almost-maximal* independent set in O(log Δ/log log Δ)
rounds — each node remains uncovered with probability at most
``2^{-log^{1-γ} Δ}`` for any small constant γ — and that closing the gap
to a true MIS in that round budget is open.

This module provides both artifacts:

* :func:`almost_maximal_independent_set` — the Discussion's object, with
  the failure probability parameterized by γ;
* :func:`nmis_plus_luby_mis` — a *true* MIS in the style of the
  shattering framework [BEPS16]: run the nearly-maximal IS first (cheap,
  O(log Δ)-ish rounds), then finish the residual nodes with Luby.  The
  residual induced subgraph is small w.h.p., so the cleanup is fast; the
  union is independent (residual nodes have no IS neighbor by
  definition) and maximal.  This is the drop-in MIS(G) black box the
  ablation benchmark compares against plain Luby.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Optional, Set, Tuple

import networkx as nx

from ..congest import SynchronousNetwork
from ..graphs import check_independent_set, max_degree
from .ghaffari import nearly_maximal_is
from .luby import luby_mis


def discussion_failure_probability(delta: int, gamma: float = 0.3) -> float:
    """The Discussion's ``2^{-log^{1-γ} Δ}`` failure probability."""

    if not 0 < gamma < 1:
        raise ValueError(f"gamma must be in (0, 1), got {gamma}")
    log_delta = max(1.0, math.log2(max(2, delta)))
    return 2.0 ** (-(log_delta ** (1.0 - gamma)))


@dataclass
class AlmostMaximalResult:
    independent_set: Set[Hashable]
    residual: Set[Hashable]
    rounds: int
    failure_probability: float


def almost_maximal_independent_set(
    graph: nx.Graph,
    gamma: float = 0.3,
    k: float = 2.0,
    beta: float = 4.0,
    seed: int = 0,
    network: Optional[SynchronousNetwork] = None,
) -> AlmostMaximalResult:
    """§4's almost-maximal IS: per-node failure ``2^{-log^{1-γ} Δ}``."""

    from ..core.nearly_maximal_is import theorem_3_1_budget

    delta = max_degree(graph)
    failure = discussion_failure_probability(delta, gamma)
    iterations = theorem_3_1_budget(delta, k, failure, beta=beta)
    independent, residual, rounds = nearly_maximal_is(
        graph, iterations=iterations, k=k, seed=seed, network=network,
        label="almost-maximal-is",
    )
    return AlmostMaximalResult(
        independent_set=independent,
        residual=residual,
        rounds=rounds,
        failure_probability=failure,
    )


def nmis_plus_luby_mis(
    graph: nx.Graph,
    nmis_iterations: Optional[int] = None,
    k: float = 2.0,
    seed: int = 0,
) -> Tuple[Set[Hashable], int]:
    """A true MIS: nearly-maximal IS + Luby cleanup on the residual.

    Returns ``(mis, rounds)`` with rounds summed over both stages.  The
    output is validated independent and maximal.  This mirrors the
    [BEPS16]-style composition the paper cites as its MIS black box with
    the O(log Δ + cleanup) round shape.
    """

    delta = max_degree(graph)
    if nmis_iterations is None:
        nmis_iterations = max(1, math.ceil(2 * math.log2(max(2, delta)) + 4))
    independent, residual, nmis_rounds = nearly_maximal_is(
        graph, iterations=nmis_iterations, k=k, seed=seed,
        label="nmis-stage",
    )
    total_rounds = nmis_rounds
    if residual:
        # Residual nodes have no neighbor in the IS, so an MIS of the
        # residual-induced subgraph extends the IS to a full MIS.
        cleanup, cleanup_rounds = luby_mis(
            graph.subgraph(residual), seed=seed + 1, label="luby-cleanup",
        )
        independent = independent | cleanup
        total_rounds += cleanup_rounds
    check_independent_set(graph, independent, require_maximal=True)
    return independent, total_rounds
