"""Ghaffari's nearly-maximal independent set algorithm [Gha16].

Each node maintains a marking probability ``p_t(v)``; its *effective
degree* is ``d_t(v) = Σ_{u ∈ N(v)} p_t(u)``.  Per iteration:

* ``p_{t+1}(v) = p_t(v)/K``                 if ``d_t(v) >= 2``,
* ``p_{t+1}(v) = min(K * p_t(v), 1/K)``     otherwise,

and a node marked (with probability ``p_t(v)``) with no marked neighbor
joins the independent set; it and its neighbors retire.

``K = 2`` recovers the original algorithm of [Gha16] whose nearly-maximal
phase runs in O(log Δ) iterations.  The paper's Section 3.1 improvement
raises ``K`` to Θ(log^0.1 Δ), giving O(log Δ/log K + K² log 1/δ)
iterations (Theorem 3.1) — that parameterization lives in
:mod:`repro.core.nearly_maximal_is`, which reuses this program.

Node outputs: ``"in"``, ``"dominated"``, or ``"residual"`` (still active
when the iteration budget ran out — the nodes Theorem 3.1 bounds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Set, Tuple

import networkx as nx

from ..congest import NodeContext, NodeProgram, SynchronousNetwork
from ..graphs import check_independent_set

IN_IS = "in"
DOMINATED = "dominated"
RESIDUAL = "residual"


@dataclass
class GoldenRoundStats:
    """Instrumentation for Lemma B.1/B.2: golden-round counts per node.

    A *type-1* golden round has ``d_t(v) < 2`` and ``p_t(v) = 1/K``; a
    *type-2* golden round has ``d_t(v) >= 1`` with at least a
    ``1/(2K²)`` fraction of ``d_t(v)`` contributed by low-degree
    (``d_t(u) < 2``) neighbors.  Lemma B.1 proves one of the counters
    reaches Θ(T) before the budget ends; the decay benchmark plots these.
    """

    type1: Dict[Hashable, int] = field(default_factory=dict)
    type2: Dict[Hashable, int] = field(default_factory=dict)

    def bump(self, table: Dict[Hashable, int], node: Hashable) -> None:
        table[node] = table.get(node, 0) + 1


class GhaffariProgram(NodeProgram):
    """One node of the dynamic-probability nearly-maximal IS.

    Two communication rounds per iteration:

    * even round — retire if a neighbor announced joining; otherwise
      broadcast ``(p, marked, was_low_degree)``;
    * odd round — resolve markings (a marked node with no marked active
      neighbor joins and announces) and update ``p`` from the received
      effective degree.

    After ``iterations`` full iterations a still-active node halts with
    ``"residual"``.
    """

    def __init__(self, k: float, iterations: int,
                 stats: Optional[GoldenRoundStats] = None):
        if k < 2:
            raise ValueError(f"K must be at least 2, got {k}")
        self.k = float(k)
        self.iterations = iterations
        self.stats = stats

    def on_start(self, ctx: NodeContext) -> None:
        # p_t(v) is always K^{-exponent} for an integer exponent >= 1, so
        # nodes exchange the exponent — an O(log round)-bit integer —
        # instead of a 64-bit float (CONGEST sizing).
        self.exponent = 1
        self.marked = False
        self.low_degree = True  # d_0(v) = deg/K; refreshed each iteration.

    @property
    def p(self) -> float:
        return float(self.k) ** (-self.exponent)

    def on_round(self, ctx: NodeContext) -> None:
        if ctx.round % 2 == 0:
            for payload in ctx.inbox.values():
                if payload and payload[0] == "join":
                    ctx.halt(DOMINATED)
                    return
            if ctx.round // 2 >= self.iterations:
                ctx.halt(RESIDUAL)
                return
            self.marked = ctx.rng.random() < self.p
            ctx.broadcast("p", self.exponent, self.marked, self.low_degree)
        else:
            effective_degree = 0.0
            low_degree_mass = 0.0
            neighbor_marked = False
            for payload in ctx.inbox.values():
                if not payload or payload[0] != "p":
                    continue
                _, exponent_u, marked_u, low_u = payload
                p_u = float(self.k) ** (-exponent_u)
                effective_degree += p_u
                if low_u:
                    low_degree_mass += p_u
                neighbor_marked = neighbor_marked or marked_u
            self._record_golden(ctx, effective_degree, low_degree_mass)
            if self.marked and not neighbor_marked:
                ctx.broadcast("join")
                ctx.halt(IN_IS)
                return
            self.low_degree = effective_degree < 2
            if effective_degree >= 2:
                self.exponent += 1
            else:
                self.exponent = max(1, self.exponent - 1)

    def _record_golden(self, ctx: NodeContext, effective_degree: float,
                       low_degree_mass: float) -> None:
        if self.stats is None:
            return
        if effective_degree < 2 and self.p >= 1.0 / self.k - 1e-12:
            self.stats.bump(self.stats.type1, ctx.node)
        if (effective_degree >= 1
                and low_degree_mass >= effective_degree / (2 * self.k ** 2)):
            self.stats.bump(self.stats.type2, ctx.node)


def nearly_maximal_is(
    graph: nx.Graph,
    iterations: int,
    k: float = 2.0,
    seed: int = 0,
    network: Optional[SynchronousNetwork] = None,
    participants=None,
    stats: Optional[GoldenRoundStats] = None,
    label: str = "ghaffari-nmis",
) -> Tuple[Set[Hashable], Set[Hashable], int]:
    """Run the nearly-maximal IS; return ``(in_set, residual, rounds)``.

    ``residual`` holds the unlucky nodes that are neither in the set nor
    dominated — the quantity Theorem 3.1 bounds by δ per node.
    """

    if network is None:
        network = SynchronousNetwork(graph, seed=seed)
    result = network.run(
        lambda node: GhaffariProgram(k=k, iterations=iterations, stats=stats),
        participants=participants,
        max_rounds=2 * iterations + 4,
        label=label,
    )
    independent = result.output_set(IN_IS)
    residual = result.output_set(RESIDUAL)
    scope = set(graph.nodes) if participants is None else set(participants)
    check_independent_set(graph.subgraph(scope), independent)
    return independent, residual, result.rounds
