"""Sequential MIS / MaxIS baselines and the exact MWIS oracle.

These are the comparators the evaluation needs:

* :func:`greedy_mis` — the minimum-degree greedy of [HR97], a
  (Δ+2)/3-approximation for unweighted MaxIS;
* :func:`greedy_mwis` — weight/(degree+1) greedy for weighted MaxIS;
* :func:`exact_mwis` — branch-and-bound maximum-weight independent set,
  the optimum oracle used to measure approximation ratios on small
  instances (exponential time; keep n below ~40).
"""

from __future__ import annotations

from typing import Dict, Hashable, Set

import networkx as nx

from ..graphs import node_weight


def greedy_mis(graph: nx.Graph) -> Set[Hashable]:
    """Minimum-degree greedy independent set [HR97]."""

    remaining = {v: set(graph.neighbors(v)) for v in graph.nodes}
    chosen: Set[Hashable] = set()
    while remaining:
        v = min(remaining, key=lambda u: (len(remaining[u]), repr(u)))
        chosen.add(v)
        dead = remaining.pop(v)
        for u in list(dead):
            neighbors = remaining.pop(u, None)
            if neighbors is None:
                continue
            for w in neighbors:
                if w in remaining:
                    remaining[w].discard(u)
        for u in list(remaining):
            remaining[u].discard(v)
    return chosen


def greedy_mwis(graph: nx.Graph) -> Set[Hashable]:
    """Greedy weighted independent set ordered by w(v)/(deg(v)+1)."""

    order = sorted(
        graph.nodes,
        key=lambda v: (-node_weight(graph, v) / (graph.degree(v) + 1),
                       repr(v)),
    )
    chosen: Set[Hashable] = set()
    blocked: Set[Hashable] = set()
    for v in order:
        if v in blocked:
            continue
        chosen.add(v)
        blocked.add(v)
        blocked.update(graph.neighbors(v))
    return chosen


def exact_mwis(graph: nx.Graph) -> Set[Hashable]:
    """Exact maximum-weight independent set by branch and bound.

    Branches on a maximum-degree vertex v: either exclude v, or include v
    and delete N[v].  Prunes with the trivial total-weight upper bound.
    Intended for evaluation oracles on small graphs.
    """

    weights: Dict[Hashable, int] = {
        v: node_weight(graph, v) for v in graph.nodes
    }
    adjacency: Dict[Hashable, Set[Hashable]] = {
        v: set(graph.neighbors(v)) for v in graph.nodes
    }

    best: Dict[str, object] = {"weight": -1, "set": set()}

    def search(active: Set[Hashable], current: Set[Hashable],
               current_weight: int) -> None:
        remaining_weight = sum(weights[v] for v in active)
        if current_weight + remaining_weight <= best["weight"]:
            return
        if not active:
            if current_weight > best["weight"]:
                best["weight"] = current_weight
                best["set"] = set(current)
            return
        # Peel isolated-in-subgraph vertices greedily: always optimal.
        isolated = [v for v in active if not (adjacency[v] & active)]
        if isolated:
            search(active - set(isolated), current | set(isolated),
                   current_weight + sum(weights[v] for v in isolated))
            return
        v = max(active, key=lambda u: (len(adjacency[u] & active), repr(u)))
        # Branch 1: include v.
        search(active - {v} - adjacency[v], current | {v},
               current_weight + weights[v])
        # Branch 2: exclude v.
        search(active - {v}, current, current_weight)

    search(set(graph.nodes), set(), 0)
    return set(best["set"])


def mwis_weight(graph: nx.Graph, nodes) -> int:
    """Total weight of a node set under the graph's node weights."""

    return sum(node_weight(graph, v) for v in nodes)
