"""Luby's randomized maximal independent set algorithm [Lub86].

This is the classical MIS black box plugged into Algorithm 2 in the
CONGEST model: each phase, every active node draws a random priority and
joins the MIS when it beats all active neighbors; MIS members and their
neighbors retire.  With high probability the algorithm ends after
O(log n) phases; each phase costs two communication rounds here.

Node outputs: ``"in"`` (joined the MIS) or ``"out"`` (dominated).
"""

from __future__ import annotations

from typing import Hashable, Optional, Set, Tuple

import networkx as nx

from ..congest import NodeContext, NodeProgram, SynchronousNetwork
from ..graphs import check_independent_set

IN_MIS = "in"
OUT_MIS = "out"


class LubyProgram(NodeProgram):
    """One node's behaviour in Luby's MIS.

    Protocol structure (two rounds per phase):

    * even round — process join-announcements from the previous phase,
      then broadcast a fresh random draw;
    * odd round — a node whose draw beats every active neighbor's draw
      (ties broken by node id) joins the MIS, announces, and halts.

    A node that hears an announcement halts with ``"out"``; a node that
    stops hearing a neighbor's draws knows that neighbor has retired.
    """

    def on_start(self, ctx: NodeContext) -> None:
        self._draw = None

    def on_round(self, ctx: NodeContext) -> None:
        if ctx.round % 2 == 0:
            for payload in ctx.inbox.values():
                if payload and payload[0] == "join":
                    ctx.halt(OUT_MIS)
                    return
            # O(log n)-bit priorities keep messages CONGEST-sized; n³
            # values make collisions unlikely and ids break ties anyway.
            self._draw = ctx.rng.randrange(max(2, ctx.n) ** 3)
            ctx.broadcast("draw", self._draw)
        else:
            best = (self._draw, repr(ctx.node))
            for src, payload in ctx.inbox.items():
                if payload and payload[0] == "draw":
                    challenger = (payload[1], repr(src))
                    if challenger > best:
                        best = challenger
            if best == (self._draw, repr(ctx.node)):
                ctx.broadcast("join")
                ctx.halt(IN_MIS)


def luby_mis(
    graph: nx.Graph,
    seed: int = 0,
    network: Optional[SynchronousNetwork] = None,
    participants=None,
    max_rounds: int = 10_000,
    label: str = "luby-mis",
) -> Tuple[Set[Hashable], int]:
    """Run Luby's MIS and return ``(mis_nodes, rounds)``.

    When ``network`` is provided the protocol runs on it (accumulating into
    its metrics), restricted to ``participants``; otherwise a fresh CONGEST
    network over ``graph`` is created.
    """

    if network is None:
        network = SynchronousNetwork(graph, seed=seed)
    result = network.run(lambda node: LubyProgram(),
                         participants=participants,
                         max_rounds=max_rounds, label=label)
    mis = result.output_set(IN_MIS)
    subgraph_nodes = (
        set(graph.nodes) if participants is None else set(participants)
    )
    check_independent_set(graph.subgraph(subgraph_nodes), mis,
                          require_maximal=True)
    return mis, result.rounds
