"""``repro.mpc`` — the sublinear-memory MPC execution model.

The third execution model beside the object and array CONGEST
simulators: the input graph is partitioned across ``m`` machines with
``S = O(n^δ)`` budgets, computation is partition-local, and all
cross-machine traffic moves through one shuffle per round with a hard
per-machine ``sent + received <= O(S)`` sublinearity check
(:class:`~repro.errors.MPCCapacityError` on violation) and per-machine
:class:`MachineLedger` accounting.  Adaptive sparsification — a
peak-hold load estimator plus a lowest-weight-first dropper for
messages the protocol marked outcome-neutral — keeps dense rounds
under budget without changing results.

Run algorithms in this model through the facade::

    from repro.api import Instance, solve

    report = solve(Instance(graph, model="mpc", machines=8, delta=0.5),
                   "matching-proposal")
    report.extras["mpc"]          # capacity, per-machine peaks, drops

``matching-proposal`` (Lemma B.14) and ``maxis-greedy`` are ported;
both have exact objective parity with their default-model runs.
"""

from .greedy import mpc_greedy_mis
from .ledger import MachineLedger, aggregate_ledgers
from .machine import Machine, build_machines
from .network import MPCMessage, MPCNetwork
from .partition import default_topology, partition_nodes
from .proposal import (
    mpc_general_proposal_matching,
    mpc_general_proposal_phases,
    run_bipartite_proposal,
)
from .sparsify import AdaptiveSparsifier, PeakHoldEstimator, SparsifyStats

__all__ = [
    "AdaptiveSparsifier",
    "Machine",
    "MachineLedger",
    "MPCMessage",
    "MPCNetwork",
    "PeakHoldEstimator",
    "SparsifyStats",
    "aggregate_ledgers",
    "build_machines",
    "default_topology",
    "mpc_general_proposal_matching",
    "mpc_general_proposal_phases",
    "mpc_greedy_mis",
    "partition_nodes",
    "run_bipartite_proposal",
]
