"""Greedy weighted MIS on the MPC runtime.

Message-passing form of :mod:`repro.core.greedy_mis`: every node keeps
a *view* of which neighbors it still believes undecided, joins once it
beats every viewed neighbor, and announces decisions — ``joined`` to
knock neighbors out, ``excluded`` so neighbors shrink their views.
The joined/excluded protocol converges to exactly the central greedy
set (a node only joins after every higher-priority neighbor is known
excluded; a higher-priority neighbor that joins knocks it out first),
so the MPC run has exact objective parity with
``solve(instance, "maxis-greedy")`` — the acceptance check the
``mpc_scaling`` experiment pins per configuration.

Sparsification hooks: ``joined`` notices targeting one recipient are
redundant as a group (one suffices to knock the recipient out — group
key ``("excl", dst)``), and ``excluded`` notices to nodes that already
decided are outcome-neutral (decided nodes ignore their inbox), so
both may be shed under load.  Message weight is the sender's node
weight, so the sparsifier sheds the lowest-weight edges first.  On a
dense graph the one round where every knocked-out node broadcasts its
exclusion is Θ(n²) traffic — entirely droppable — which is the
configuration that passes the sublinearity check *only* because
adaptive sparsification engages.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Set, Tuple

import networkx as nx

from ..core.greedy_mis import greedy_priorities
from ..graphs import check_independent_set, node_weight
from .network import MPCMessage, MPCNetwork

JOINED = "joined"
EXCLUDED = "excluded"


def mpc_greedy_mis(
    graph: nx.Graph,
    network: Optional[MPCNetwork] = None,
    seed: int = 0,
) -> Tuple[frozenset, int, int, MPCNetwork]:
    """Run the peeling protocol over an MPC fleet.

    Returns ``(independent_set, weight, rounds, network)`` where the
    set and weight equal :func:`repro.core.greedy_mis.greedy_mis` on
    the same graph (round counts differ: decision news travels one
    shuffle per hop here, while the central peeling sweeps globally).
    """

    if network is None:
        network = MPCNetwork(graph, seed=seed)
    order = sorted(graph.nodes, key=repr)
    priority = greedy_priorities(graph)
    view: Dict[Hashable, Set[Hashable]] = {
        v: set(graph.neighbors(v)) for v in order
    }
    status: Dict[Hashable, Optional[str]] = {v: None for v in order}
    inboxes: Dict[Hashable, Dict[Hashable, Tuple]] = {}
    rounds = 0

    while any(status[v] is None for v in order):
        newly_excluded = []
        for v in order:
            if status[v] is not None:
                continue
            for src, payload in inboxes.get(v, {}).items():
                view[v].discard(src)
                if payload[0] == JOINED and status[v] is None:
                    status[v] = EXCLUDED
                    newly_excluded.append(v)
        newly_joined = []
        for v in order:
            if status[v] is None and all(
                priority[v] > priority[u] for u in view[v]
            ):
                status[v] = JOINED
                newly_joined.append(v)

        messages = []
        for v in newly_joined:
            for u in sorted(view[v], key=repr):
                # One surviving notice per recipient knocks it out, so
                # the group key marks the rest redundant under load.
                messages.append(MPCMessage(
                    v, u, (JOINED,),
                    weight=float(node_weight(graph, v)),
                    group=("excl", u),
                ))
        for v in newly_excluded:
            for u in sorted(view[v], key=repr):
                messages.append(MPCMessage(
                    v, u, (EXCLUDED,),
                    weight=float(node_weight(graph, v)),
                    droppable=status[u] is not None,
                ))
        halted = frozenset(
            v for v in order if status[v] is not None
        )
        inboxes = network.exchange(messages, halted=halted)
        rounds += 1

    chosen = frozenset(v for v in order if status[v] == JOINED)
    check_independent_set(graph, chosen)
    weight = sum(node_weight(graph, v) for v in chosen)
    return chosen, weight, rounds, network


__all__ = ["mpc_greedy_mis"]
