"""Per-machine accounting for the MPC runtime.

Each machine owns one :class:`MachineLedger`.  The shuffle charges it
once per round with the cross-machine traffic the machine moved (sent
and received messages/bits, counted at *send* time exactly like the
CONGEST simulator's ``NetworkMetrics.bits``, so the two accountings are
directly comparable) plus the resident memory footprint in words.  The
per-round rows are what the sublinearity check and the ``mpc_scaling``
experiment's load curves read; the cumulative counters summarize a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass
class MachineLedger:
    """Communication and memory accounting for one machine.

    ``load`` of a round is the machine's cross-machine messages sent
    plus received in that round — the quantity the runtime's hard
    ``load <= capacity`` sublinearity check is enforced on.  Local
    (same-machine) deliveries are free, as in the MPC model.
    """

    machine: int
    rounds: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    bits_sent: int = 0
    bits_received: int = 0
    local_messages: int = 0
    peak_load: int = 0
    peak_memory_words: int = 0
    dropped_messages: int = 0
    per_round: List[Dict[str, int]] = field(default_factory=list)

    def charge_round(self, round_index: int, sent: int, sent_bits: int,
                     received: int, received_bits: int, local: int,
                     memory_words: int, dropped: int = 0) -> None:
        """Record one round of traffic and the resident memory."""

        load = sent + received
        self.rounds += 1
        self.messages_sent += sent
        self.messages_received += received
        self.bits_sent += sent_bits
        self.bits_received += received_bits
        self.local_messages += local
        self.dropped_messages += dropped
        if load > self.peak_load:
            self.peak_load = load
        if memory_words > self.peak_memory_words:
            self.peak_memory_words = memory_words
        self.per_round.append({
            "round": round_index,
            "sent": sent,
            "received": received,
            "bits_sent": sent_bits,
            "bits_received": received_bits,
            "load": load,
        })

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe summary (per-round rows included)."""

        return {
            "machine": self.machine,
            "rounds": self.rounds,
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
            "bits_sent": self.bits_sent,
            "bits_received": self.bits_received,
            "local_messages": self.local_messages,
            "peak_load": self.peak_load,
            "peak_memory_words": self.peak_memory_words,
            "dropped_messages": self.dropped_messages,
            "per_round": [dict(row) for row in self.per_round],
        }


def aggregate_ledgers(ledgers: Sequence[MachineLedger]) -> Dict[str, int]:
    """Fleet-level totals over a set of machine ledgers.

    ``bits_sent``/``messages_sent`` sum to the CONGEST simulator's
    global counters on a machines-per-node run (every message is then
    cross-machine), which is the ledger-invariant the test suite pins.
    """

    return {
        "machines": len(ledgers),
        "rounds": max((led.rounds for led in ledgers), default=0),
        "messages_sent": sum(led.messages_sent for led in ledgers),
        "bits_sent": sum(led.bits_sent for led in ledgers),
        "bits_received": sum(led.bits_received for led in ledgers),
        "local_messages": sum(led.local_messages for led in ledgers),
        "max_load": max((led.peak_load for led in ledgers), default=0),
        "max_peak_memory": max(
            (led.peak_memory_words for led in ledgers), default=0
        ),
        "dropped_messages": sum(led.dropped_messages for led in ledgers),
    }
