"""One MPC machine: a node block, its adjacency slice, its ledger.

A :class:`Machine` owns the contiguous block of repr-sorted nodes the
partitioner assigned it, stores only the adjacency incident to that
block (the ``O(n^δ)``-word slice of the input), and carries the
:class:`~repro.mpc.ledger.MachineLedger` the shuffle charges every
round.  Memory is accounted in *words*: one per resident node, one per
stored adjacency entry, one per word of buffered inbound payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Tuple

from .ledger import MachineLedger


@dataclass
class Machine:
    """A single machine's resident state."""

    index: int
    nodes: Tuple[Hashable, ...]
    #: node -> repr-sorted tuple of its neighbors (full incident
    #: adjacency — each cross-partition edge is stored on both sides,
    #: like a distributed edge list).
    adjacency: Dict[Hashable, Tuple[Hashable, ...]] = field(
        default_factory=dict
    )
    ledger: MachineLedger = field(init=False)

    def __post_init__(self) -> None:
        self.ledger = MachineLedger(machine=self.index)

    @property
    def node_set(self) -> FrozenSet[Hashable]:
        return frozenset(self.nodes)

    def base_memory_words(self) -> int:
        """Resident words before any round buffers: one word per node
        plus one per adjacency entry."""

        return len(self.nodes) + sum(
            len(neigh) for neigh in self.adjacency.values()
        )

    def round_memory_words(self, buffered_payload_words: int) -> int:
        """Words resident during a round: base + inbound buffers."""

        return self.base_memory_words() + buffered_payload_words


def build_machines(graph, assignment: Dict[Hashable, int],
                   machines: int) -> List[Machine]:
    """Materialize the machine fleet for a partitioned graph."""

    blocks: List[List[Hashable]] = [[] for _ in range(machines)]
    for node in sorted(graph.nodes, key=repr):
        blocks[assignment[node]].append(node)
    fleet = []
    for index, block in enumerate(blocks):
        adjacency = {
            node: tuple(sorted(graph.neighbors(node), key=repr))
            for node in block
        }
        fleet.append(Machine(index=index, nodes=tuple(block),
                             adjacency=adjacency))
    return fleet


__all__ = ["Machine", "build_machines"]
