"""The MPC runtime: machines, shuffle, and the sublinearity check.

:class:`MPCNetwork` partitions the input graph across ``m`` machines
with ``S = O(n^δ)`` budgets and routes every inter-machine message
through :meth:`MPCNetwork.exchange` — the shuffle step that ends each
round.  The shuffle

1. splits the round's messages into local (same machine, free) and
   remote traffic,
2. lets the :class:`~repro.mpc.sparsify.AdaptiveSparsifier` thin
   droppable/redundant remote messages when the peak-hold estimator
   projects a machine at or above its guard line,
3. enforces the hard MPC budget — every machine's cross-machine
   ``sent + received`` message count must stay ``<= capacity`` where
   ``capacity = ceil(capacity_factor * n^δ)`` — raising
   :class:`~repro.errors.MPCCapacityError` otherwise,
4. charges each machine's :class:`~repro.mpc.ledger.MachineLedger`
   (bits at send time, mirroring the CONGEST simulator's accounting,
   so machines-per-node runs sum to ``NetworkMetrics.bits``), and
5. delivers the surviving messages as per-node inboxes for the next
   round, skipping halted recipients exactly like the object simulator
   (the traffic was still moved, so it is still charged).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
)

from ..congest.message import payload_bits
from ..errors import MPCCapacityError
from .ledger import aggregate_ledgers
from .machine import Machine, build_machines
from .partition import default_topology, partition_nodes
from .sparsify import AdaptiveSparsifier, PeakHoldEstimator


@dataclass
class MPCMessage:
    """One routed message.

    ``weight`` and ``droppable`` feed the sparsifier: only messages the
    protocol marked droppable (outcome-neutral by construction) may be
    dropped, lightest first.  ``group`` marks redundancy — of all
    messages sharing a group key, only the heaviest must arrive.
    """

    src: Hashable
    dst: Hashable
    payload: Tuple
    weight: float = 0.0
    droppable: bool = False
    group: Optional[Tuple] = field(default=None)


class MPCNetwork:
    """A fleet of sublinear-memory machines over one input graph."""

    def __init__(self, graph, machines: Optional[int] = None,
                 delta: Optional[float] = None, seed: int = 0,
                 capacity_factor: float = 8.0, sparsify: bool = True,
                 guard: float = 0.8):
        self.graph = graph
        self.seed = seed
        n = graph.number_of_nodes()
        self.machines, self.delta = default_topology(n, machines, delta)
        self.capacity = max(
            1, math.ceil(capacity_factor * max(2, n) ** self.delta)
        )
        self.capacity_factor = capacity_factor
        self.assignment = partition_nodes(graph.nodes, self.machines)
        self.fleet: List[Machine] = build_machines(
            graph, self.assignment, self.machines
        )
        self.estimator = PeakHoldEstimator(self.machines)
        self.sparsifier = (
            AdaptiveSparsifier(self.capacity, self.estimator, guard=guard)
            if sparsify else None
        )
        self.round = 0

    # -- routing -------------------------------------------------------
    def machine_of(self, node: Hashable) -> int:
        return self.assignment[node]

    def exchange(self, messages: Iterable[MPCMessage],
                 halted: FrozenSet[Hashable] = frozenset(),
                 ) -> Dict[Hashable, Dict[Hashable, Tuple]]:
        """Run one shuffle step; returns next-round inboxes.

        The inbox of node ``v`` maps sender -> payload (one payload per
        sender per round, overwrite semantics, like the object
        simulator's outbox).  Messages to halted recipients are charged
        but not delivered.
        """

        round_index = self.round
        local: List[MPCMessage] = []
        remote: List[MPCMessage] = []
        for msg in messages:
            if self.assignment[msg.src] == self.assignment[msg.dst]:
                local.append(msg)
            else:
                remote.append(msg)

        planned: Dict[int, int] = {m: 0 for m in range(self.machines)}
        for msg in remote:
            planned[self.assignment[msg.src]] += 1
            planned[self.assignment[msg.dst]] += 1

        dropped_by_machine = [0] * self.machines
        if self.sparsifier is not None and remote:
            if any(load > self.capacity for load in planned.values()):
                self.sparsifier.stats.would_violate_without = True
            before = {id(m): m for m in remote}
            remote = self.sparsifier.thin_round(
                round_index, remote, planned, self.machine_of
            )
            for key, msg in before.items():
                if all(id(kept) != key for kept in remote):
                    dropped_by_machine[self.assignment[msg.src]] += 1

        for machine in sorted(planned):
            if planned[machine] > self.capacity:
                raise MPCCapacityError(
                    machine, round_index, planned[machine], self.capacity
                )

        # -- charge ledgers and deliver --------------------------------
        sent = [0] * self.machines
        sent_bits = [0] * self.machines
        received = [0] * self.machines
        received_bits = [0] * self.machines
        local_count = [0] * self.machines
        buffered_words = [0] * self.machines
        inboxes: Dict[Hashable, Dict[Hashable, Tuple]] = {}

        for msg in remote:
            src_m = self.assignment[msg.src]
            dst_m = self.assignment[msg.dst]
            bits = payload_bits(msg.payload)
            sent[src_m] += 1
            sent_bits[src_m] += bits
            received[dst_m] += 1
            received_bits[dst_m] += bits
            buffered_words[dst_m] += len(msg.payload)
            if msg.dst not in halted:
                inboxes.setdefault(msg.dst, {})[msg.src] = msg.payload
        for msg in local:
            machine = self.assignment[msg.src]
            local_count[machine] += 1
            buffered_words[machine] += len(msg.payload)
            if msg.dst not in halted:
                inboxes.setdefault(msg.dst, {})[msg.src] = msg.payload

        for machine in self.fleet:
            index = machine.index
            load = sent[index] + received[index]
            machine.ledger.charge_round(
                round_index,
                sent=sent[index], sent_bits=sent_bits[index],
                received=received[index],
                received_bits=received_bits[index],
                local=local_count[index],
                memory_words=machine.round_memory_words(
                    buffered_words[index]
                ),
                dropped=dropped_by_machine[index],
            )
            self.estimator.observe(index, load)

        self.round += 1
        return inboxes

    # -- reporting -----------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """JSON-safe run summary for reports and experiment rows.

        ``sublinear_ok`` is true by construction for any run that got
        here — a violation raises :class:`MPCCapacityError` inside the
        shuffle instead.
        """

        totals = aggregate_ledgers([m.ledger for m in self.fleet])
        summary: Dict[str, object] = {
            "machines": self.machines,
            "delta": self.delta,
            "capacity": self.capacity,
            "rounds": self.round,
            "sublinear_ok": totals["max_load"] <= self.capacity,
        }
        summary.update(totals)
        summary["peak_loads"] = [
            machine.ledger.peak_load for machine in self.fleet
        ]
        summary["peak_memory_words"] = [
            machine.ledger.peak_memory_words for machine in self.fleet
        ]
        if self.sparsifier is not None:
            summary["sparsify"] = self.sparsifier.stats.as_dict()
        else:
            summary["sparsify"] = None
        return summary

    def ledgers(self) -> List[Dict[str, object]]:
        return [machine.ledger.as_dict() for machine in self.fleet]


__all__ = ["MPCMessage", "MPCNetwork"]
