"""Deterministic node-to-machine partitioning.

The MPC runtime splits the input graph's nodes across ``m`` machines
in contiguous, balanced blocks of the repr-sorted node order — the
same total order every deterministic tie-break in the repo uses, so a
given (graph, machines) pair always yields the same placement and the
per-machine ledgers are byte-reproducible.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Sequence, Tuple


def default_topology(n: int, machines: Optional[int],
                     delta: Optional[float]) -> Tuple[int, float]:
    """Resolve the (machines, delta) pair for an ``n``-node input.

    ``delta`` defaults to 0.5 and ``machines`` to ``ceil(n^(1-delta))``
    — the textbook layout where ``m * S = O(n)`` words overall.  Either
    can be pinned independently via :class:`repro.api.Instance`.
    """

    if delta is None:
        delta = 0.5
    if machines is None:
        machines = max(1, math.ceil(max(1, n) ** (1.0 - delta)))
    return machines, delta


def partition_nodes(nodes: Sequence[Hashable],
                    machines: int) -> Dict[Hashable, int]:
    """Map each node to its machine (contiguous balanced blocks).

    Node ``i`` of the repr-sorted order goes to machine
    ``(i * machines) // n``, which balances block sizes to within one
    node and keeps the assignment independent of dict/set iteration
    order.
    """

    ordered: List[Hashable] = sorted(nodes, key=repr)
    n = len(ordered)
    if n == 0:
        return {}
    return {node: (index * machines) // n
            for index, node in enumerate(ordered)}


__all__ = ["default_topology", "partition_nodes"]
