"""Lemma B.14 proposal matching ported to the MPC runtime.

The port re-runs the exact protocol of
:mod:`repro.core.proposal_matching` — same per-node RNG streams
(``stable_rng(seed, node, 1)``, the stream the object simulator hands
the first protocol on a fresh network), same propose/respond dynamics,
same B.14 bipartition splits — but executes it on an
:class:`~repro.mpc.network.MPCNetwork`: partition-local compute plus
one shuffle per simulator round.  Matchings *and* round counts are
therefore bit-identical to ``solve(instance, "matching-proposal")``;
what changes is the accounting (per-machine ledgers, the sublinearity
check) and the adaptive sparsification of outcome-neutral traffic
(``retired`` notices addressed to nodes that already halted — the
object simulator drops those at delivery anyway).

One :class:`MPCNetwork` is shared across the B.14 repetitions so the
machine ledgers accumulate the whole run.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Optional, Set, Tuple

import networkx as nx

from ..congest import RoundLedger
from ..core.proposal_matching import (
    ISOLATED,
    MATCHED,
    UNLUCKY,
    lemma_b13_rounds,
    optimal_k,
)
from ..graphs import check_matching, max_degree
from ..utils import stable_rng
from .network import MPCMessage, MPCNetwork


def run_bipartite_proposal(
    network: MPCNetwork,
    sub: nx.Graph,
    left: Set[Hashable],
    eps: float = 0.25,
    k: Optional[int] = None,
    seed: int = 0,
    phases: Optional[int] = None,
) -> Tuple[Set[frozenset], Set[Hashable], int]:
    """One Lemma B.13 run on ``sub`` over the MPC fleet.

    Returns ``(matching, unlucky, rounds)`` — bit-identical to
    :func:`~repro.core.proposal_matching.bipartite_proposal_matching`
    with ``seed`` (each node draws from ``stable_rng(seed, node, 1)``,
    matching the fresh-network stream of the object simulator).
    """

    delta = max_degree(sub)
    if k is None:
        k = optimal_k(delta, eps)
    if phases is None:
        phases = lemma_b13_rounds(delta, eps, k)
    cap = 2 * phases + 4
    order = sorted(sub.nodes, key=repr)
    sides = {v: ("L" if v in left else "R") for v in order}
    neighbors = {
        v: tuple(sorted(sub.neighbors(v), key=repr)) for v in order
    }
    live: Dict[Hashable, Set[Hashable]] = {
        v: set(neighbors[v]) for v in order
    }
    rngs = {v: stable_rng(seed, v, 1) for v in order}
    halted: Set[Hashable] = set()
    outcome: Dict[Hashable, Tuple] = {}
    inboxes: Dict[Hashable, Dict[Hashable, Tuple]] = {}
    rounds = 0

    for round_index in range(cap):
        if len(halted) == len(order):
            break
        outbox: Dict[Hashable, Dict[Hashable, Tuple]] = {}

        def send(sender, dst, payload):
            outbox.setdefault(sender, {})[dst] = payload

        for v in order:
            if v in halted:
                continue
            inbox = inboxes.get(v, {})
            for src, payload in inbox.items():
                if payload and payload[0] == "retired":
                    live[v].discard(src)
            if round_index % 2 == 0:
                accepted = None
                for src, payload in inbox.items():
                    if payload and payload[0] == "accept":
                        accepted = src
                        break
                if accepted is not None:
                    for u in neighbors[v]:
                        send(v, u, ("retired",))
                    halted.add(v)
                    outcome[v] = (MATCHED, accepted)
                elif not live[v]:
                    halted.add(v)
                    outcome[v] = (ISOLATED, None)
                elif round_index // 2 >= phases:
                    halted.add(v)
                    outcome[v] = (UNLUCKY, None)
                elif sides[v] == "L":
                    target = rngs[v].choice(sorted(live[v], key=repr))
                    send(v, target, ("propose",))
            else:
                if sides[v] == "L":
                    continue
                proposers = sorted(
                    (src for src, payload in inbox.items()
                     if payload and payload[0] == "propose"),
                    key=repr,
                )
                if proposers:
                    winner = proposers[-1]
                    for u in neighbors[v]:
                        send(v, u, ("retired",))
                    send(v, winner, ("accept",))
                    halted.add(v)
                    outcome[v] = (MATCHED, winner)

        messages = []
        for sender in sorted(outbox, key=repr):
            for dst in sorted(outbox[sender], key=repr):
                payload = outbox[sender][dst]
                # Retirement notices to halted nodes never get
                # delivered (the object simulator skips them too), so
                # the sparsifier may shed them under load.
                droppable = payload[0] == "retired" and dst in halted
                messages.append(MPCMessage(
                    sender, dst, payload, weight=0.0,
                    droppable=droppable,
                ))
        inboxes = network.exchange(messages, halted=frozenset(halted))
        rounds = round_index + 1

    matching = {
        frozenset((v, out[1]))
        for v, out in outcome.items() if out[0] == MATCHED
    }
    unlucky = {v for v, out in outcome.items() if out[0] == UNLUCKY}
    return matching, unlucky, rounds


def mpc_general_proposal_phases(
    graph: nx.Graph,
    eps: float = 0.25,
    k: Optional[int] = None,
    seed: int = 0,
    repetitions: Optional[int] = None,
    max_rounds: Optional[int] = None,
    capture_state: bool = False,
    resume: Optional[dict] = None,
    network: Optional[MPCNetwork] = None,
):
    """Anytime Lemma B.14 over the MPC fleet.

    A structural twin of
    :func:`~repro.core.proposal_matching.general_proposal_phases` —
    same split RNG (``stable_rng(seed, "b14-splits")``), repetition
    budget, ledger charges, yield tuples
    ``(rounds, matching, final, state)`` and resume payloads — with the
    object-simulator bipartite run swapped for
    :func:`run_bipartite_proposal`.  Draining it yields the exact
    matching and round count of the object simulator; the network's
    machine ledgers accumulate across repetitions.  After a resume the
    protocol state is replayed verbatim but the (freshly built)
    machine ledgers restart at zero — ledgers describe the machines
    that actually ran, not the pre-truncation fleet.
    """

    if network is None:
        network = MPCNetwork(graph, seed=seed)
    if repetitions is None:
        repetitions = max(1, math.ceil(2.0 * math.log(2.0 / eps))) + 1
    rng = stable_rng(seed, "b14-splits")
    ledger = RoundLedger()
    matching: Set[frozenset] = set()
    remaining: Set[Hashable] = set(graph.nodes)
    start_rep = 0
    if resume is not None:
        start_rep = resume["repetition"]
        repetitions = resume["repetitions"]
        matching = set(resume["matching"])
        survivors = resume["remaining"]
        for v in graph.nodes:
            if v not in survivors:
                remaining.discard(v)
        ledger.total = resume["ledger"]["total"]
        ledger.breakdown = dict(resume["ledger"]["breakdown"])
        version, internals, gauss = resume["rng"]
        rng.setstate((version, tuple(internals), gauss))

    def snapshot(next_rep):
        state = None
        if capture_state:
            version, internals, gauss = rng.getstate()
            state = {
                "rounds": ledger.total,
                "repetition": next_rep,
                "repetitions": repetitions,
                "matching": set(matching),
                "remaining": set(remaining),
                "ledger": {"total": ledger.total,
                           "breakdown": dict(ledger.breakdown)},
                "rng": [version, list(internals), gauss],
            }
        return ledger.total, frozenset(matching), \
            next_rep >= repetitions, state

    yield snapshot(start_rep)
    for repetition in range(start_rep, repetitions):
        if max_rounds is not None and ledger.total >= max_rounds:
            return None
        left = {v for v in remaining if rng.random() < 0.5}
        right = remaining - left
        sub = nx.Graph()
        sub.add_nodes_from(remaining)
        sub.add_edges_from(
            (u, v) for u, v in graph.edges
            if (u in left and v in right) or (u in right and v in left)
        )
        ledger.charge(1, "bipartition")
        if sub.number_of_edges() > 0:
            rep_matching, _unlucky, rep_rounds = run_bipartite_proposal(
                network, sub, left, eps=eps, k=k,
                seed=seed + 13 * (repetition + 1),
            )
            ledger.charge(rep_rounds, "bipartite-proposals")
            matching |= rep_matching
            for e in rep_matching:
                remaining -= set(e)
        yield snapshot(repetition + 1)
    check_matching(graph, [tuple(e) for e in matching])
    return matching, ledger.total, ledger


def mpc_general_proposal_matching(
    graph: nx.Graph,
    eps: float = 0.25,
    k: Optional[int] = None,
    seed: int = 0,
    repetitions: Optional[int] = None,
    network: Optional[MPCNetwork] = None,
) -> Tuple[Set[frozenset], int, RoundLedger]:
    """Drained form of :func:`mpc_general_proposal_phases`."""

    from ..utils import drain

    return drain(mpc_general_proposal_phases(
        graph, eps=eps, k=k, seed=seed, repetitions=repetitions,
        network=network,
    ))


__all__ = [
    "mpc_general_proposal_matching",
    "mpc_general_proposal_phases",
    "run_bipartite_proposal",
]
