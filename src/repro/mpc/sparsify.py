"""Adaptive sparsification for the MPC shuffle.

Two cooperating pieces:

* :class:`PeakHoldEstimator` — a per-machine load estimator that holds
  the highest round load seen so far (a "peak hold" meter).  The
  projected load of the next round is ``max(planned, held_peak)``:
  bursty protocols are judged by their worst round, so sparsification
  engages *before* a machine first exceeds its budget rather than one
  round after.
* :class:`AdaptiveSparsifier` — when a machine's projected traffic
  reaches ``guard * capacity`` it drops droppable messages (lowest
  weight first) addressed to or from that machine until the projection
  is back under the guard line, and thins redundant message groups
  (``group`` key: only the heaviest member of a group must survive).

A message is only ever dropped when the producing protocol marked it
``droppable=True`` — i.e. outcome-neutral by construction — so
sparsification trades ledger load, never correctness.  The stats object
records trigger counts and whether any round *would have* violated the
hard capacity check without sparsification (the acceptance criterion
for the dense ``mpc_scaling`` configurations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .ledger import MachineLedger  # noqa: F401  (re-export convenience)


@dataclass
class SparsifyStats:
    """Counters surfaced in reports and the ``mpc_scaling`` rows."""

    triggers: int = 0
    dropped_messages: int = 0
    would_violate_without: bool = False
    rounds_engaged: List[int] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "triggers": self.triggers,
            "dropped_messages": self.dropped_messages,
            "would_violate_without": self.would_violate_without,
            "rounds_engaged": list(self.rounds_engaged),
        }


class PeakHoldEstimator:
    """Per-machine peak-hold load estimator.

    ``project(machine, planned)`` returns the load the sparsifier
    should plan against; ``observe(machine, actual)`` latches the
    realized load after the round's shuffle so the hold ratchets up
    but never decays.
    """

    def __init__(self, machines: int):
        self._peaks = [0] * machines

    def project(self, machine: int, planned: int) -> int:
        return max(planned, self._peaks[machine])

    def observe(self, machine: int, actual: int) -> None:
        if actual > self._peaks[machine]:
            self._peaks[machine] = actual

    def peaks(self) -> List[int]:
        return list(self._peaks)


class AdaptiveSparsifier:
    """Drops droppable low-weight traffic when a machine runs hot.

    ``guard`` is the fraction of capacity at which sparsification
    engages (default 0.8): projecting at or above ``guard * capacity``
    marks the machine hot.  Dropping order is deterministic — ascending
    ``(weight, repr(src), repr(dst))`` — so runs are byte-reproducible.
    """

    def __init__(self, capacity: int, estimator: PeakHoldEstimator,
                 guard: float = 0.8):
        self.capacity = capacity
        self.estimator = estimator
        self.guard = guard
        self.stats = SparsifyStats()
        self._threshold = max(1, int(guard * capacity))

    def thin_round(self, round_index: int, remote: list,
                   planned: Dict[int, int],
                   assignment_of) -> list:
        """Filter one round's remote messages.

        ``remote`` is the list of cross-machine :class:`MPCMessage`
        objects, ``planned`` maps machine -> planned load (sent +
        received), ``assignment_of`` maps a node to its machine.
        Returns the surviving messages; mutates ``planned`` in place to
        reflect the drops and updates :attr:`stats`.
        """

        hot = {m for m, load in planned.items()
               if self.estimator.project(m, load) >= self._threshold}
        if not hot:
            return remote

        self.stats.triggers += 1
        self.stats.rounds_engaged.append(round_index)

        # Redundant groups first: keep only the heaviest member of each
        # group whose endpoints touch a hot machine.
        survivors = []
        best_of_group: Dict[object, object] = {}
        grouped: Dict[object, list] = {}
        for msg in remote:
            if msg.group is None:
                survivors.append(msg)
                continue
            if (assignment_of(msg.src) not in hot
                    and assignment_of(msg.dst) not in hot):
                survivors.append(msg)
                continue
            grouped.setdefault(msg.group, []).append(msg)
        for key in sorted(grouped, key=repr):
            members = sorted(
                grouped[key],
                key=lambda m: (m.weight, repr(m.src), repr(m.dst)),
            )
            keeper = members[-1]
            best_of_group[key] = keeper
            survivors.append(keeper)
            for msg in members[:-1]:
                self._account_drop(msg, planned, assignment_of)

        # Then plain droppables, lightest first, while a touched
        # machine still projects hot.
        droppable = sorted(
            (m for m in survivors if m.droppable
             and best_of_group.get(m.group) is not m),
            key=lambda m: (m.weight, repr(m.src), repr(m.dst)),
        )
        dropped = set()
        for msg in droppable:
            src_m = assignment_of(msg.src)
            dst_m = assignment_of(msg.dst)
            if (self._projects_hot(src_m, planned)
                    or self._projects_hot(dst_m, planned)):
                dropped.add(id(msg))
                self._account_drop(msg, planned, assignment_of)
        if dropped:
            survivors = [m for m in survivors if id(m) not in dropped]
        return survivors

    def _projects_hot(self, machine: int, planned: Dict[int, int]) -> bool:
        load = planned.get(machine, 0)
        return self.estimator.project(machine, load) >= self._threshold

    def _account_drop(self, msg, planned, assignment_of) -> None:
        self.stats.dropped_messages += 1
        planned[assignment_of(msg.src)] -= 1
        planned[assignment_of(msg.dst)] -= 1


__all__ = ["AdaptiveSparsifier", "PeakHoldEstimator", "SparsifyStats"]
