"""``repro.serve`` — the long-lived solver service (NUM-2).

An asyncio HTTP daemon over the anytime/resume stack, started with
``python -m repro serve``.  Clients submit an instance *spec* (the
same deterministic workload recipe the CLI uses) plus optional SLA
budgets and get a job id back; jobs execute on a thread pool through
the shared batch engine (:func:`repro.api.execute_indexed`), stream
per-phase checkpoints, land in a fingerprint-keyed LRU result cache,
and journal their latest ``resume_state`` to ``--state-dir`` so a
killed daemon restarts and finishes **bit-identically** to a run that
was never interrupted.

Module map:

* :mod:`~repro.serve.cache` — bounded LRU result cache with hit/miss
  counters;
* :mod:`~repro.serve.journal` — crash-safe per-job journal files
  (atomic writes via :func:`repro.api.persist.write_envelope`);
* :mod:`~repro.serve.protocol` — request validation and JSON record
  shapes (specs in, job/result records out);
* :mod:`~repro.serve.jobs` — the job manager: queue, worker pool,
  budget enforcement, checkpoint capture, retry/watchdog/drain
  resilience, recovery;
* :mod:`~repro.serve.health` — the degraded-health circuit breaker
  behind ``/healthz``;
* :mod:`~repro.serve.http` — the minimal stdlib HTTP/1.1 layer
  (``asyncio.start_server``) and route table;
* :mod:`~repro.serve.daemon` — configuration, startup recovery,
  graceful drain and the ``serve`` CLI entry point.

The deterministic fault-injection plane that exercises all of this
lives in :mod:`repro.faults` and is wired in through
``JobManager(fault_plan=...)`` / ``serve --fault-plan FILE``.
"""

from .cache import ResultCache
from .daemon import ServerConfig, main, run_server
from .health import HealthMonitor
from .jobs import DrainingError, Job, JobManager
from .protocol import SpecError, validate_spec

__all__ = [
    "DrainingError",
    "HealthMonitor",
    "Job",
    "JobManager",
    "ResultCache",
    "ServerConfig",
    "SpecError",
    "main",
    "run_server",
    "validate_spec",
]
