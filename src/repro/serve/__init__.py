"""``repro.serve`` — the long-lived solver service (NUM-2).

An asyncio HTTP daemon over the anytime/resume stack, started with
``python -m repro serve``.  Clients submit an instance *spec* (the
same deterministic workload recipe the CLI uses) plus optional SLA
budgets and get a job id back; jobs execute on a thread pool through
the shared batch engine (:func:`repro.api.execute_indexed`), stream
per-phase checkpoints, land in a fingerprint-keyed LRU result cache,
and journal their latest ``resume_state`` to ``--state-dir`` so a
killed daemon restarts and finishes **bit-identically** to a run that
was never interrupted.

Module map:

* :mod:`~repro.serve.cache` — bounded LRU result cache with hit/miss
  counters;
* :mod:`~repro.serve.journal` — crash-safe per-job journal files
  (atomic writes via :func:`repro.api.persist.write_envelope`);
* :mod:`~repro.serve.protocol` — request validation and JSON record
  shapes (specs in, job/result records out);
* :mod:`~repro.serve.jobs` — the job manager: queue, worker pool,
  budget enforcement, checkpoint capture, recovery;
* :mod:`~repro.serve.http` — the minimal stdlib HTTP/1.1 layer
  (``asyncio.start_server``) and route table;
* :mod:`~repro.serve.daemon` — configuration, startup recovery and
  the ``serve`` CLI entry point.
"""

from .cache import ResultCache
from .daemon import ServerConfig, main, run_server
from .jobs import Job, JobManager
from .protocol import SpecError, validate_spec

__all__ = [
    "Job",
    "JobManager",
    "ResultCache",
    "ServerConfig",
    "SpecError",
    "main",
    "run_server",
    "validate_spec",
]
