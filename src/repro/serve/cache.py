"""Bounded LRU result cache for the solver service.

Results are keyed by the submitting spec's identity — the
budget-agnostic instance fingerprint plus the algorithm name, round
budget and option set — so two clients asking for the same
deterministic workload share one solve.  The cache is a plain
``OrderedDict`` under a lock (the service's HTTP handlers and worker
threads both touch it), bounded with least-recently-used eviction, and
counts hits/misses/evictions for ``GET /stats`` and the ``serve_load``
experiment.
"""

from __future__ import annotations

from collections import OrderedDict
from threading import Lock
from typing import Any, Dict, Optional


class ResultCache:
    """Thread-safe LRU mapping of cache key → terminal result record."""

    def __init__(self, maxsize: int = 128):
        if maxsize < 0:
            raise ValueError(f"cache maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._data: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Optional[Any]:
        """The cached record for ``key`` (refreshed as most recent), or
        ``None`` — counting the lookup either way."""

        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key]
            self.misses += 1
            return None

    def put(self, key: str, value: Any) -> None:
        """Insert/refresh ``key``, evicting the LRU entry when full."""

        if self.maxsize == 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._data

    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""

        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> Dict[str, Any]:
        """The counter snapshot the ``/stats`` endpoint publishes."""

        with self._lock:
            size = len(self._data)
        return {
            "size": size,
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate(),
        }


__all__ = ["ResultCache"]
