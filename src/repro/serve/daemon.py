"""Configuration, startup recovery and the ``serve`` CLI entry point.

``python -m repro serve --state-dir DIR`` boots in three steps:

1. **recover** — replay the journal in ``--state-dir``: finished jobs
   re-register (re-seeding the result cache), interrupted jobs re-enter
   the queue warm-started from their last journaled checkpoint, so a
   ``kill -9`` mid-solve costs only the rounds since that boundary and
   the final result is bit-identical to an uninterrupted run;
2. **start** — spin up the worker pool, dispatcher, and the asyncio
   HTTP server (``--port 0`` binds an ephemeral port);
3. **announce** — print one machine-parsable ready line::

       repro-serve listening on http://127.0.0.1:43211 (recovered 0, requeued 1)

   then serve until SIGINT/SIGTERM.
"""

from __future__ import annotations

import asyncio
import signal
import sys
from dataclasses import dataclass
from typing import Optional

from .http import ServiceHandler
from .jobs import JobManager


@dataclass
class ServerConfig:
    """Everything ``python -m repro serve`` accepts."""

    host: str = "127.0.0.1"
    port: int = 8765
    workers: int = 2
    state_dir: Optional[str] = None
    cache_size: int = 128
    #: Sleep after every checkpoint — a test/experiment knob that makes
    #: "kill the daemon mid-solve" scenarios deterministic to aim.
    phase_delay_s: float = 0.0


def build_manager(config: ServerConfig) -> JobManager:
    """A configured (not yet started) manager for the daemon or tests."""

    return JobManager(
        workers=config.workers,
        state_dir=config.state_dir,
        cache_size=config.cache_size,
        phase_delay_s=config.phase_delay_s,
    )


async def run_server(config: ServerConfig,
                     manager: Optional[JobManager] = None) -> None:
    """Recover, start, announce, and serve until signalled."""

    if manager is None:
        manager = build_manager(config)
    recovered = manager.recover()
    manager.start()
    handler = ServiceHandler(manager)
    server = await asyncio.start_server(handler.handle, config.host,
                                        config.port)
    port = server.sockets[0].getsockname()[1]
    print(
        f"repro-serve listening on http://{config.host}:{port} "
        f"(recovered {recovered['restored']}, "
        f"requeued {recovered['requeued']})",
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            # Platforms/loops without signal support (or non-main
            # threads in tests) fall back to KeyboardInterrupt.
            pass
    try:
        async with server:
            await stop.wait()
    finally:
        manager.shutdown(wait=False)


def main(args) -> int:
    """CLI glue: argparse namespace → asyncio lifetime → exit code."""

    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        state_dir=args.state_dir,
        cache_size=args.cache_size,
        phase_delay_s=args.phase_delay,
    )
    try:
        asyncio.run(run_server(config))
    except KeyboardInterrupt:
        pass
    except OSError as exc:
        print(f"serve: cannot bind {config.host}:{config.port}: {exc}",
              file=sys.stderr)
        return 1
    return 0


__all__ = ["ServerConfig", "build_manager", "main", "run_server"]
