"""Configuration, startup recovery and the ``serve`` CLI entry point.

``python -m repro serve --state-dir DIR`` boots in three steps:

1. **recover** — sweep stale temp files, then replay the journal in
   ``--state-dir``: finished jobs re-register (re-seeding the result
   cache), interrupted jobs re-enter the queue warm-started from their
   last journaled checkpoint, so a ``kill -9`` mid-solve costs only
   the rounds since that boundary and the final result is
   bit-identical to an uninterrupted run;
2. **start** — spin up the worker pool, dispatcher, the optional
   watchdog, and the asyncio HTTP server (``--port 0`` binds an
   ephemeral port);
3. **announce** — print one machine-parsable ready line::

       repro-serve listening on http://127.0.0.1:43211 (recovered 0, requeued 1)

   then serve until SIGINT/SIGTERM.

Shutdown is a *graceful drain*: on the first signal the daemon stops
accepting jobs (``POST /jobs`` → 503), asks every running job to stop
at its next checkpoint boundary, journals each one's final resume
envelope, and only then exits — so a restarted daemon on the same
state dir finishes the interrupted work bit-identically.  The exit
code is nonzero when the drain misses its budget or the dispatcher
thread fails to stop (a hang a supervisor should treat as a crash).

``--fault-plan FILE`` arms the deterministic fault-injection plane
(:mod:`repro.faults`) for chaos drills against a live daemon.
"""

from __future__ import annotations

import asyncio
import signal
import sys
from dataclasses import dataclass
from typing import Optional, Union

from ..errors import FaultPlanError
from ..faults import FaultPlan
from .http import ServiceHandler
from .jobs import JobManager


@dataclass
class ServerConfig:
    """Everything ``python -m repro serve`` accepts."""

    host: str = "127.0.0.1"
    port: int = 8765
    workers: int = 2
    state_dir: Optional[str] = None
    cache_size: int = 128
    #: Sleep after every checkpoint — a test/experiment knob that makes
    #: "kill the daemon mid-solve" scenarios deterministic to aim.
    phase_delay_s: float = 0.0
    #: Fault-injection plan: a :class:`FaultPlan`, or the path of a
    #: ``repro-fault-plan/1`` JSON file to load one from.
    fault_plan: Optional[Union[FaultPlan, str]] = None
    #: Per-job stall watchdog (seconds without a progress beat before
    #: the job is truncated to its best certified partial).
    watchdog_s: Optional[float] = None
    #: Budget for the SIGTERM graceful drain.
    drain_timeout_s: float = 10.0
    #: Journal compaction: keep at most this many terminal-job journal
    #: files across restarts (``None`` = unbounded).
    journal_retain: Optional[int] = None


def build_manager(config: ServerConfig) -> JobManager:
    """A configured (not yet started) manager for the daemon or tests.

    Raises :class:`~repro.errors.FaultPlanError` when
    ``config.fault_plan`` names an unreadable/malformed plan file.
    """

    plan = config.fault_plan
    if isinstance(plan, str):
        plan = FaultPlan.load(plan)
    return JobManager(
        workers=config.workers,
        state_dir=config.state_dir,
        cache_size=config.cache_size,
        phase_delay_s=config.phase_delay_s,
        fault_plan=plan,
        watchdog_s=config.watchdog_s,
        journal_retain=config.journal_retain,
    )


async def run_server(config: ServerConfig,
                     manager: Optional[JobManager] = None) -> bool:
    """Recover, start, announce, serve until signalled, then drain.

    Returns ``True`` when the wind-down was clean (every in-flight job
    reached a journaled stopping point inside the drain budget and the
    dispatcher thread stopped).
    """

    if manager is None:
        manager = build_manager(config)
    recovered = manager.recover()
    manager.start()
    handler = ServiceHandler(manager)
    server = await asyncio.start_server(handler.handle, config.host,
                                        config.port)
    port = server.sockets[0].getsockname()[1]
    print(
        f"repro-serve listening on http://{config.host}:{port} "
        f"(recovered {recovered['restored']}, "
        f"requeued {recovered['requeued']})",
        flush=True,
    )
    if recovered["skipped"] or recovered["swept_tmp"]:
        print(
            f"repro-serve recovery: skipped {recovered['skipped']} "
            f"unreadable journal file(s), swept "
            f"{recovered['swept_tmp']} stale temp file(s)",
            file=sys.stderr, flush=True,
        )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            # Platforms/loops without signal support (or non-main
            # threads in tests) fall back to KeyboardInterrupt.
            pass
    clean = True
    try:
        async with server:
            await stop.wait()
            # Graceful drain: journal a resumable stopping point for
            # every in-flight job before the process goes away.  The
            # server stays up while it runs, so submissions get a real
            # 503 and pollers can watch jobs park — the drain itself
            # polls worker threads, so run it off the event loop.
            stats = await asyncio.to_thread(
                manager.drain, config.drain_timeout_s)
            print(
                f"repro-serve drained: {stats['drained']} job(s) "
                f"checkpointed, {stats['queued']} still queued, "
                f"clean={stats['clean']}",
                flush=True,
            )
            clean = stats["clean"]
    finally:
        clean = manager.shutdown(wait=False) and clean
        if not clean:
            print("repro-serve shutdown was not clean (drain timeout "
                  "or hung dispatcher)", file=sys.stderr, flush=True)
    return clean


def main(args) -> int:
    """CLI glue: argparse namespace → asyncio lifetime → exit code."""

    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        state_dir=args.state_dir,
        cache_size=args.cache_size,
        phase_delay_s=args.phase_delay,
        fault_plan=args.fault_plan,
        watchdog_s=args.watchdog,
        drain_timeout_s=args.drain_timeout,
        journal_retain=args.journal_retain,
    )
    try:
        clean = asyncio.run(run_server(config))
    except KeyboardInterrupt:
        return 0
    except FaultPlanError as exc:
        print(f"serve: bad --fault-plan: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"serve: cannot bind {config.host}:{config.port}: {exc}",
              file=sys.stderr)
        return 1
    return 0 if clean else 3


__all__ = ["ServerConfig", "build_manager", "main", "run_server"]
