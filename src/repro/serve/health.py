"""Degraded-health tracking for the solver service.

The service used to swallow persistence failures: a journal write that
raised ``OSError`` either killed the job (write path) or vanished
silently (remove path), and a dead dispatcher left the daemon
accepting jobs it would never run.  :class:`HealthMonitor` is the
circuit breaker those paths now report into — ``/healthz`` serves 503
with the reasons while the breaker is open, so supervisors and load
balancers see "up but degraded" instead of silent data loss.

States:

* ``ok`` — everything green (the boot state);
* ``degraded`` — journal writes failing persistently (``threshold``
  consecutive failures), repeated worker crashes, or a dead
  dispatcher.

Journal degradation is self-healing: one successful write closes the
breaker again (half-open semantics come free because every checkpoint
retries the write path).  A dead dispatcher is latched — only a
restart brings the service back, which is exactly what a supervisor
watching ``/healthz`` should do.
"""

from __future__ import annotations

import threading
from typing import Any, Dict

OK = "ok"
DEGRADED = "degraded"


class HealthMonitor:
    """Failure counters plus the breaker verdict they imply."""

    def __init__(self, journal_failure_threshold: int = 3,
                 worker_crash_threshold: int = 5):
        self.journal_failure_threshold = journal_failure_threshold
        self.worker_crash_threshold = worker_crash_threshold
        self._lock = threading.Lock()
        self._journal_errors_total = 0
        self._journal_consecutive = 0
        self._journal_last_error = None
        self._worker_crashes = 0
        self._dispatcher_dead = False

    # -- reporting hooks ----------------------------------------------
    def journal_error(self, exc: BaseException) -> None:
        """A journal write/remove failed (called by :class:`Journal`)."""

        with self._lock:
            self._journal_errors_total += 1
            self._journal_consecutive += 1
            self._journal_last_error = f"{type(exc).__name__}: {exc}"

    def journal_ok(self) -> None:
        """A journal write succeeded — closes the journal breaker."""

        with self._lock:
            self._journal_consecutive = 0

    def worker_crash(self) -> None:
        """A job attempt raised (transient or terminal)."""

        with self._lock:
            self._worker_crashes += 1

    def dispatcher_dead(self) -> None:
        """The dispatcher thread died or hung — latched until restart."""

        with self._lock:
            self._dispatcher_dead = True

    # -- verdict -------------------------------------------------------
    def _reasons(self) -> list:
        reasons = []
        if self._dispatcher_dead:
            reasons.append("dispatcher-dead")
        if self._journal_consecutive >= self.journal_failure_threshold:
            reasons.append(
                f"journal-degraded ({self._journal_consecutive} "
                f"consecutive failures; last: "
                f"{self._journal_last_error})")
        if self._worker_crashes >= self.worker_crash_threshold:
            reasons.append(
                f"worker-crashes ({self._worker_crashes} attempts "
                "failed)")
        return reasons

    @property
    def degraded(self) -> bool:
        with self._lock:
            return bool(self._reasons())

    def snapshot(self) -> Dict[str, Any]:
        """The ``/healthz`` and ``/stats`` health block."""

        with self._lock:
            reasons = self._reasons()
            return {
                "state": DEGRADED if reasons else OK,
                "reasons": reasons,
                "journal_errors_total": self._journal_errors_total,
                "journal_consecutive_failures":
                    self._journal_consecutive,
                "worker_crashes": self._worker_crashes,
                "dispatcher_dead": self._dispatcher_dead,
            }


__all__ = ["DEGRADED", "OK", "HealthMonitor"]
