"""Minimal stdlib HTTP/1.1 layer of the solver service.

``asyncio.start_server`` plus a hand-rolled request parser — no new
runtime dependencies.  One request per connection (``Connection:
close``), JSON bodies both ways.  Routes:

========  ======================  =======================================
method    path                    purpose
========  ======================  =======================================
GET       ``/healthz``            health probe: 200 while ok, 503 with
                                  reasons while degraded or draining
GET       ``/stats``              the :meth:`JobManager.stats` snapshot
POST      ``/jobs``               submit a spec → 201 + job record
GET       ``/jobs``               list job records (no results inline)
GET       ``/jobs/<id>``          poll one job: status, latest
                                  checkpoint (with its resume payload),
                                  terminal result when done
GET       ``/jobs/<id>/stream``   chunked checkpoint stream: one JSON
                                  line per job update, closing after
                                  the terminal record
========  ======================  =======================================

The job manager's locks are cheap dict/counters operations, so
handlers call it inline; only the stream route awaits between polls.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from .jobs import DrainingError, JobManager
from .protocol import SpecError

#: Largest request body accepted (a spec is tiny; anything bigger is
#: either a mistake or abuse).
MAX_BODY = 1 << 20

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _BadRequest(Exception):
    """Malformed HTTP input (maps to a 400 response)."""


class _PayloadTooLarge(_BadRequest):
    """Body over :data:`MAX_BODY` (maps to 413, body never read)."""


def _encode_response(status: int, payload: Any,
                     extra_headers: Tuple[str, ...] = ()) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    head = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
        *extra_headers,
        "",
        "",
    ]
    return "\r\n".join(head).encode("ascii") + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> Tuple[str, str, Dict[str, str], bytes]:
    """Parse one request: ``(method, path, headers, body)``."""

    line = await reader.readline()
    if not line:
        raise _BadRequest("empty request")
    try:
        method, target, _version = line.decode("ascii").split(None, 2)
    except ValueError as exc:
        raise _BadRequest(f"malformed request line {line!r}") from exc
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        try:
            name, _sep, value = raw.decode("latin-1").partition(":")
        except UnicodeDecodeError as exc:
            raise _BadRequest("undecodable header") from exc
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY:
        raise _PayloadTooLarge(f"body of {length} bytes exceeds the "
                               f"{MAX_BODY}-byte limit")
    body = await reader.readexactly(length) if length else b""
    path = target.split("?", 1)[0]
    return method.upper(), path, headers, body


class ServiceHandler:
    """Route table bound to one :class:`JobManager`."""

    def __init__(self, manager: JobManager,
                 stream_poll_s: float = 0.02):
        self.manager = manager
        self.stream_poll_s = stream_poll_s

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        """One connection: parse, route, respond, close."""

        try:
            try:
                method, path, _headers, body = await _read_request(reader)
            except _PayloadTooLarge as exc:
                writer.write(_encode_response(
                    413, {"error": str(exc)}))
                return
            except (_BadRequest, asyncio.IncompleteReadError,
                    ValueError) as exc:
                writer.write(_encode_response(
                    400, {"error": f"bad request: {exc}"}))
                return
            if method == "GET" and path.startswith("/jobs/") \
                    and path.endswith("/stream"):
                await self._stream(writer, path[len("/jobs/"):
                                                -len("/stream")])
                return
            status, payload = self._route(method, path, body)
            writer.write(_encode_response(status, payload))
        except Exception as exc:  # noqa: BLE001 — connection isolation
            try:
                writer.write(_encode_response(
                    500, {"error": f"{type(exc).__name__}: {exc}"}))
            except Exception:  # noqa: BLE001 — writer may be gone
                pass
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    # -- plain routes --------------------------------------------------
    def _route(self, method: str, path: str,
               body: bytes) -> Tuple[int, Any]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "healthz is GET-only"}
            health = self.manager.health.snapshot()
            jobs = len(self.manager.jobs())
            if self.manager.draining:
                return 503, {"ok": False, "state": "draining",
                             "reasons": ["draining"], "jobs": jobs}
            if health["state"] != "ok":
                return 503, {"ok": False, "state": health["state"],
                             "reasons": health["reasons"], "jobs": jobs}
            return 200, {"ok": True, "state": "ok", "jobs": jobs}
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "stats is GET-only"}
            return 200, self.manager.stats()
        if path == "/jobs":
            if method == "POST":
                return self._submit(body)
            if method == "GET":
                return 200, {"jobs": [
                    job.record(include_result=False)
                    for job in self.manager.jobs()
                ]}
            return 405, {"error": "jobs supports GET and POST"}
        if path.startswith("/jobs/"):
            if method != "GET":
                return 405, {"error": "job views are GET-only"}
            job = self.manager.get(path[len("/jobs/"):])
            if job is None:
                return 404, {"error": f"no job {path[len('/jobs/'):]!r}"}
            return 200, job.record()
        return 404, {"error": f"no route {path!r}"}

    def _submit(self, body: bytes) -> Tuple[int, Any]:
        try:
            parsed = json.loads(body.decode("utf-8") or "null")
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, {"error": f"body is not JSON: {exc}"}
        try:
            job = self.manager.submit(parsed)
        except SpecError as exc:
            return 400, {"error": str(exc)}
        except DrainingError as exc:
            return 503, {"error": str(exc)}
        return 201, job.record()

    # -- checkpoint streaming ------------------------------------------
    async def _stream(self, writer: asyncio.StreamWriter,
                      job_id: str) -> None:
        """Chunked transfer: one JSON line per observed job update
        (new checkpoint or status flip), ending with the terminal
        record.

        A client hanging up mid-stream is routine, not an error: the
        write loop stops, the writer is released, and the job itself
        keeps running to its terminal record.  The ``stream.disconnect``
        fault site rehearses exactly that by dropping the connection
        from the server side.
        """

        job = self.manager.get(job_id)
        if job is None:
            writer.write(_encode_response(
                404, {"error": f"no job {job_id!r}"}))
            return
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n"
        )

        def chunk(record: Dict[str, Any]) -> bytes:
            line = (json.dumps(record, sort_keys=True) + "\n").encode(
                "utf-8")
            return f"{len(line):x}\r\n".encode("ascii") + line + b"\r\n"

        faults = self.manager.faults
        try:
            writer.write(head.encode("ascii"))
            seen = (-1, "")
            while True:
                if faults is not None and faults.roll(
                        "stream.disconnect", scope=job_id):
                    return
                record = job.record()
                marker = (record["checkpoints"], record["status"])
                if marker != seen:
                    seen = marker
                    writer.write(chunk(record))
                    await writer.drain()
                if job.done:
                    break
                await asyncio.sleep(self.stream_poll_s)
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except (ConnectionError, TimeoutError):
            # The peer went away; nothing to clean up beyond the
            # writer, which handle()'s finally already closes.
            return


__all__ = ["MAX_BODY", "ServiceHandler"]
