"""The solver service's job manager.

Lifecycle (the state machine ``docs/ARCHITECTURE.md`` documents)::

    submit ──cache hit──────────────► complete/truncated  (terminal)
      │
      └─► queued ─► running ─┬─► complete   (terminal)
             ▲               ├─► truncated  (terminal: round or wall
             │               │               budget exhausted; best
             │               │               certified partial result)
             │               └─► failed     (terminal)
             │
        (restart recovery: journaled non-terminal jobs re-enter the
         queue, warm-started from their last journaled checkpoint)

Execution fans out through the shared batch engine: a dispatcher
thread drains the submission queue into batches and runs each batch
via :func:`repro.api.execute_indexed` over one long-lived
``ThreadPoolExecutor`` — the same fan-out core the experiment runner
and ``solve_many`` use, with its per-task failure isolation.  Each
task drives :func:`repro.api.solve_iter` so the job streams per-phase
checkpoints, journals every captured ``resume_state`` (crash safety),
and can stop at a wall-clock deadline with the best certified partial
solution (SLA truncation).
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..api import execute_indexed, solve_iter
from ..api.persist import instance_from_workload
from .cache import ResultCache
from .journal import TERMINAL_STATUSES, Journal, job_record
from .protocol import (
    result_record,
    spec_cache_key,
    truncated_result_record,
    validate_spec,
)

QUEUED = "queued"
RUNNING = "running"
COMPLETE = "complete"
TRUNCATED = "truncated"
FAILED = "failed"
STATUSES = (QUEUED, RUNNING, COMPLETE, TRUNCATED, FAILED)


@dataclass
class Job:
    """One submitted solve and everything observable about it."""

    id: str
    spec: Dict[str, Any]
    status: str = QUEUED
    checkpoints: int = 0
    rounds: int = 0
    latest: Optional[Dict[str, Any]] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    cache_hit: bool = False
    recovered: bool = False
    seconds: Optional[float] = None
    #: Warm-start payload a recovered job continues from (not exposed).
    warm_payload: Optional[Dict[str, Any]] = field(default=None,
                                                  repr=False)

    @property
    def done(self) -> bool:
        return self.status in TERMINAL_STATUSES

    def record(self, include_result: bool = True) -> Dict[str, Any]:
        """The job as the HTTP layer reports it."""

        out: Dict[str, Any] = {
            "id": self.id,
            "status": self.status,
            "spec": self.spec,
            "checkpoints": self.checkpoints,
            "rounds": self.rounds,
            "latest": self.latest,
            "error": self.error,
            "cache_hit": self.cache_hit,
            "recovered": self.recovered,
        }
        if include_result:
            out["result"] = self.result
        return out


def _checkpoint_record(checkpoint) -> Dict[str, Any]:
    """The poll/stream view of one checkpoint (payload included, so a
    client can persist its own resume file at any boundary)."""

    return {
        "phase": checkpoint.phase,
        "rounds": checkpoint.rounds,
        "objective": checkpoint.objective,
        "valid": checkpoint.valid,
        "final": checkpoint.final,
        "resume": checkpoint.resume_state,
    }


class JobManager:
    """Queue, worker pool, cache, journal and observability counters."""

    def __init__(self, workers: int = 2,
                 state_dir: Optional[str] = None,
                 cache_size: int = 128,
                 phase_delay_s: float = 0.0):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        #: Test/experiment knob: sleep this long after every checkpoint
        #: so kill-mid-solve scenarios can aim between phases.
        self.phase_delay_s = phase_delay_s
        self.cache = ResultCache(maxsize=cache_size)
        self.journal = Journal(state_dir)
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._lock = threading.RLock()
        self._inbox: "queue.Queue[Optional[str]]" = queue.Queue()
        self._stop = threading.Event()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._dispatcher: Optional[threading.Thread] = None
        self._batches = 0
        self._latencies: List[float] = []
        self._seq = itertools.count(1)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Spin up the worker pool and dispatcher (idempotent)."""

        if self._pool is not None:
            return
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve",
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch",
            daemon=True,
        )
        self._dispatcher.start()

    def shutdown(self, wait: bool = False) -> None:
        """Stop dispatching; optionally wait for in-flight jobs."""

        self._stop.set()
        self._inbox.put(None)
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=5)
        if self._pool is not None:
            self._pool.shutdown(wait=wait)

    # -- recovery ------------------------------------------------------
    def recover(self) -> Dict[str, int]:
        """Replay the journal into the manager (call before
        :meth:`start`).

        Terminal records re-register as finished jobs and re-seed the
        result cache; non-terminal records re-enter the queue, warm-
        started from their last journaled checkpoint when one was
        captured (otherwise the deterministic cold rerun *is* the
        uninterrupted run).  Returns ``{"restored": n, "requeued": m}``.
        """

        restored = requeued = 0
        max_seq = 0
        with self._lock:
            for job_id, record in self.journal.replay():
                try:
                    seq = int(job_id.split("-")[1])
                except (IndexError, ValueError):
                    seq = 0
                max_seq = max(max_seq, seq)
                job = Job(id=job_id, spec=record["spec"],
                          status=record["status"],
                          rounds=record.get("rounds", 0),
                          result=record.get("result"),
                          error=record.get("error"),
                          recovered=True)
                self._jobs[job_id] = job
                self._order.append(job_id)
                if job.done:
                    deterministic = (
                        job.result is not None
                        and not (job.result.get("status") == TRUNCATED
                                 and job.spec.get("time_budget_s")
                                 is not None)
                    )
                    if deterministic:
                        self.cache.put(spec_cache_key(job.spec),
                                       job.result)
                    restored += 1
                    continue
                envelope = record.get("envelope")
                if isinstance(envelope, dict):
                    job.warm_payload = envelope.get("payload")
                job.status = QUEUED
                self._inbox.put(job_id)
                requeued += 1
            self._seq = itertools.count(max_seq + 1)
        return {"restored": restored, "requeued": requeued}

    # -- submission ----------------------------------------------------
    def submit(self, body: Any) -> Job:
        """Validate a spec and enqueue (or instantly serve) its job.

        Raises :class:`~repro.serve.protocol.SpecError` on a bad spec.
        A result-cache hit never queues: the job is born terminal with
        the cached record.
        """

        spec = validate_spec(body)
        key = spec_cache_key(spec)
        cached = self.cache.get(key)
        with self._lock:
            job_id = f"job-{next(self._seq):06d}-{key.split(':')[0]}"
            job = Job(id=job_id, spec=spec)
            self._jobs[job_id] = job
            self._order.append(job_id)
            if cached is not None:
                job.status = cached["status"]
                job.result = cached
                job.rounds = cached["rounds"]
                job.cache_hit = True
                job.seconds = 0.0
                self._journal_terminal(job)
                return job
            self._journal_running(job, payload=None)
        self._inbox.put(job_id)
        return job

    # -- views ---------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def stats(self) -> Dict[str, Any]:
        """The ``GET /stats`` payload (and the load experiment's raw
        material): job/queue/cache/latency/round counters."""

        from ..experiments.runner import percentile

        with self._lock:
            by_status = {status: 0 for status in STATUSES}
            rounds = checkpoints = 0
            for job in self._jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
                rounds += job.rounds
                checkpoints += job.checkpoints
            latencies = list(self._latencies)
            batches = self._batches
            total = len(self._jobs)
        latency = {"count": len(latencies), "p50_ms": 0.0, "p95_ms": 0.0}
        if latencies:
            latency["p50_ms"] = percentile(latencies, 50.0) * 1000.0
            latency["p95_ms"] = percentile(latencies, 95.0) * 1000.0
        return {
            "jobs": {"total": total, "by_status": by_status},
            "queue_depth": by_status[QUEUED],
            "batches_active": batches,
            "workers": self.workers,
            "cache": self.cache.stats(),
            "latency": latency,
            "rounds_total": rounds,
            "checkpoints_total": checkpoints,
        }

    # -- journaling ----------------------------------------------------
    def _journal_running(self, job: Job,
                         payload: Optional[Dict[str, Any]]) -> None:
        self.journal.write(job_record(
            job.id, job.spec, job.status, rounds=job.rounds,
            payload=payload,
        ))

    def _journal_terminal(self, job: Job) -> None:
        payload = None
        if job.result is not None:
            payload = job.result.get("resume")
        self.journal.write(job_record(
            job.id, job.spec, job.status, rounds=job.rounds,
            payload=payload, result=job.result, error=job.error,
        ))

    # -- dispatch ------------------------------------------------------
    def _dispatch_loop(self) -> None:
        """Drain submissions into batches; each batch fans out through
        :func:`execute_indexed` on the shared pool (its own thread, so
        a slow batch never blocks the next one)."""

        while not self._stop.is_set():
            try:
                first = self._inbox.get(timeout=0.05)
            except queue.Empty:
                continue
            if first is None:
                break
            batch = [first]
            while True:
                try:
                    item = self._inbox.get_nowait()
                except queue.Empty:
                    break
                if item is None:
                    self._stop.set()
                    break
                batch.append(item)
            with self._lock:
                self._batches += 1
            threading.Thread(
                target=self._run_batch, args=(batch,),
                name="repro-serve-batch", daemon=True,
            ).start()

    def _run_batch(self, batch: List[str]) -> None:
        try:
            execute_indexed(self._execute_task, batch,
                            executor=self._pool, workers=self.workers)
        finally:
            with self._lock:
                self._batches -= 1

    # -- execution -----------------------------------------------------
    def _execute_task(self, job_id: str) -> str:
        """Worker body for one job (exceptions land on the job, not
        the batch — belt to ``execute_indexed``'s braces)."""

        job = self.get(job_id)
        if job is None or job.done:
            return job_id
        try:
            self._execute(job)
        except Exception as exc:  # noqa: BLE001 — jobs must not sink pool
            with self._lock:
                job.error = f"{type(exc).__name__}: {exc}"
            # Journal before flipping the status: the moment a poller
            # sees the job terminal, the journal already agrees.
            self.journal.write(job_record(
                job.id, job.spec, FAILED, rounds=job.rounds,
                error=job.error,
            ))
            with self._lock:
                job.status = FAILED
        return job_id

    def _execute(self, job: Job) -> None:
        """Drive one job's checkpoint stream to a terminal record."""

        spec = job.spec
        with self._lock:
            job.status = RUNNING
        self._journal_running(job, payload=job.warm_payload)
        problem = spec["workload"]["problem"]
        instance = instance_from_workload(
            spec["workload"], max_rounds=spec["max_rounds"],
        )
        deadline = None
        if spec["time_budget_s"] is not None:
            deadline = time.monotonic() + spec["time_budget_s"]
        started = time.perf_counter()
        stream = solve_iter(instance, spec["algorithm"], problem=problem,
                            warm_start=job.warm_payload,
                            **spec["options"])
        best = None
        last_payload = job.warm_payload
        report = None
        while True:
            try:
                checkpoint = next(stream)
            except StopIteration as stop:
                report = stop.value
                break
            with self._lock:
                job.checkpoints += 1
                job.rounds = checkpoint.rounds
                job.latest = _checkpoint_record(checkpoint)
            if checkpoint.valid:
                best = checkpoint
                if checkpoint.resume_state is not None:
                    last_payload = checkpoint.resume_state
                    # Crash safety: the journal always holds the
                    # newest resumable boundary.
                    self._journal_running(job, payload=last_payload)
            if self.phase_delay_s:
                time.sleep(self.phase_delay_s)
            if deadline is not None and time.monotonic() >= deadline:
                # SLA truncation: stop the run cooperatively and adopt
                # the best certified checkpoint the deadline admitted.
                stream.close()
                record = truncated_result_record(
                    spec, best, last_payload, problem,
                )
                # Where a wall-clock deadline lands is timing-dependent,
                # so the record is not deterministic — keep it out of
                # the cache (whose key deliberately ignores the wall
                # budget).
                self._finish(job, record, time.perf_counter() - started,
                             cacheable=False)
                return
        record = result_record(report)
        self._finish(job, record, time.perf_counter() - started)

    def _finish(self, job: Job, record: Dict[str, Any],
                seconds: float, cacheable: bool = True) -> None:
        if cacheable:
            self.cache.put(spec_cache_key(job.spec), record)
        with self._lock:
            job.result = record
            job.rounds = record["rounds"]
            job.seconds = seconds
            self._latencies.append(seconds)
        # Journal before flipping the status: the status change is the
        # commit point pollers observe, so once ``job.done`` is true the
        # terminal record is already durable.
        self.journal.write(job_record(
            job.id, job.spec, record["status"], rounds=record["rounds"],
            payload=record.get("resume"), result=record, error=job.error,
        ))
        with self._lock:
            job.status = record["status"]


__all__ = ["Job", "JobManager", "COMPLETE", "FAILED", "QUEUED",
           "RUNNING", "STATUSES", "TRUNCATED"]
