"""The solver service's job manager.

Lifecycle (the state machine ``docs/ARCHITECTURE.md`` documents)::

    submit ──cache hit──────────────► complete/truncated  (terminal)
      │
      └─► queued ─► running ─┬─► complete   (terminal)
             ▲               ├─► truncated  (terminal: round, wall or
             │               │               watchdog budget exhausted;
             │               │               best certified partial)
             │               ├─► failed     (terminal, after bounded
             │               │               retries for transient
             │               │               faults)
             │               └─► queued     (graceful drain: final
             │                               checkpoint journaled, job
             │                               resumes on restart)
             │
        (restart recovery: journaled non-terminal jobs re-enter the
         queue, warm-started from their last journaled checkpoint)

Execution fans out through the shared batch engine: a dispatcher
thread drains the submission queue into batches and runs each batch
via :func:`repro.api.execute_indexed` over one long-lived
``ThreadPoolExecutor`` — the same fan-out core the experiment runner
and ``solve_many`` use, with its per-task failure isolation.  Each
task drives :func:`repro.api.solve_iter` so the job streams per-phase
checkpoints, journals every captured ``resume_state`` (crash safety),
and can stop at a wall-clock deadline with the best certified partial
solution (SLA truncation).

Resilience plane (PR 8): a seeded
:class:`~repro.faults.FaultPlan` injects deterministic failures at the
compiled-in sites (transient worker exceptions, stalls, journal I/O
errors, dispatcher death); the hardening it exercises is always on —
bounded :class:`~repro.faults.RetryPolicy` retries for transient
failures (each attempt warm-starts from the last journaled checkpoint,
so a retried run stays bit-identical to a fault-free one), a per-job
watchdog that converts stalls into certified ``truncated`` partials,
a :class:`~repro.serve.health.HealthMonitor` circuit breaker behind
``/healthz``, and :meth:`JobManager.drain` for SIGTERM.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..api import execute_indexed, solve_iter
from ..api.persist import instance_from_workload
from ..faults import DEFAULT_RETRY, FaultPlan, RetryPolicy
from .cache import ResultCache
from .health import HealthMonitor
from .journal import TERMINAL_STATUSES, Journal, job_record
from .protocol import (
    result_record,
    spec_cache_key,
    truncated_result_record,
    validate_spec,
)

QUEUED = "queued"
RUNNING = "running"
COMPLETE = "complete"
TRUNCATED = "truncated"
FAILED = "failed"
STATUSES = (QUEUED, RUNNING, COMPLETE, TRUNCATED, FAILED)


class DrainingError(RuntimeError):
    """Submission rejected because the manager is draining (the HTTP
    layer maps this to 503)."""


@dataclass
class Job:
    """One submitted solve and everything observable about it."""

    id: str
    spec: Dict[str, Any]
    status: str = QUEUED
    checkpoints: int = 0
    rounds: int = 0
    latest: Optional[Dict[str, Any]] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    cache_hit: bool = False
    recovered: bool = False
    seconds: Optional[float] = None
    #: Execution attempts consumed (1 for a clean first run; transient
    #: failures increment it up to the retry policy's bound).
    attempts: int = 0
    #: Per-attempt error strings, oldest first (empty on a clean run).
    attempt_errors: List[str] = field(default_factory=list)
    #: Warm-start payload a recovered/retried job continues from.
    warm_payload: Optional[Dict[str, Any]] = field(default=None,
                                                  repr=False)
    #: Cooperative-cancellation signal (watchdog / drain), with the
    #: reason recorded so the runner knows how to wind the job down.
    abort_event: threading.Event = field(default_factory=threading.Event,
                                         repr=False, compare=False)
    abort_reason: Optional[str] = field(default=None, repr=False)
    #: Monotonic timestamp of the last observed progress (checkpoint
    #: or state flip) — what the watchdog ages against.
    last_beat: Optional[float] = field(default=None, repr=False)
    #: Guard so exactly one of {worker, watchdog} finishes the job.
    finishing: bool = field(default=False, repr=False)
    #: Best certified checkpoint seen so far (in-memory only; the
    #: watchdog adopts it when it truncates a stalled job externally).
    best_checkpoint: Any = field(default=None, repr=False, compare=False)

    @property
    def done(self) -> bool:
        return self.status in TERMINAL_STATUSES

    def beat(self) -> None:
        self.last_beat = time.monotonic()

    def abort(self, reason: str) -> None:
        """Request cooperative cancellation (first reason wins)."""

        if not self.abort_event.is_set():
            self.abort_reason = reason
            self.abort_event.set()

    def record(self, include_result: bool = True) -> Dict[str, Any]:
        """The job as the HTTP layer reports it."""

        out: Dict[str, Any] = {
            "id": self.id,
            "status": self.status,
            "spec": self.spec,
            "checkpoints": self.checkpoints,
            "rounds": self.rounds,
            "latest": self.latest,
            "error": self.error,
            "cache_hit": self.cache_hit,
            "recovered": self.recovered,
            "attempts": self.attempts,
            "attempt_errors": list(self.attempt_errors),
        }
        if include_result:
            out["result"] = self.result
        return out


def _checkpoint_record(checkpoint) -> Dict[str, Any]:
    """The poll/stream view of one checkpoint (payload included, so a
    client can persist its own resume file at any boundary)."""

    return {
        "phase": checkpoint.phase,
        "rounds": checkpoint.rounds,
        "objective": checkpoint.objective,
        "valid": checkpoint.valid,
        "final": checkpoint.final,
        "resume": checkpoint.resume_state,
    }


class JobManager:
    """Queue, worker pool, cache, journal, health and fault plane."""

    def __init__(self, workers: int = 2,
                 state_dir: Optional[str] = None,
                 cache_size: int = 128,
                 phase_delay_s: float = 0.0,
                 fault_plan: Optional[FaultPlan] = None,
                 retry: Optional[RetryPolicy] = DEFAULT_RETRY,
                 watchdog_s: Optional[float] = None,
                 journal_retain: Optional[int] = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if watchdog_s is not None and watchdog_s <= 0:
            raise ValueError(
                f"watchdog_s must be positive, got {watchdog_s}")
        if journal_retain is not None and journal_retain < 0:
            raise ValueError(
                f"journal_retain must be >= 0, got {journal_retain}")
        self.workers = workers
        #: Test/experiment knob: sleep this long after every checkpoint
        #: so kill-mid-solve scenarios can aim between phases.
        self.phase_delay_s = phase_delay_s
        self.faults = fault_plan
        self.retry = retry
        self.watchdog_s = watchdog_s
        #: Journal compaction cap: keep at most this many terminal-job
        #: journal files across restarts (``None`` = keep everything).
        self.journal_retain = journal_retain
        self.health = HealthMonitor()
        self.cache = ResultCache(maxsize=cache_size)
        self.journal = Journal(state_dir, health=self.health,
                               fault_plan=fault_plan)
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._lock = threading.RLock()
        self._inbox: "queue.Queue[Optional[str]]" = queue.Queue()
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._dispatcher: Optional[threading.Thread] = None
        self._watchdog: Optional[threading.Thread] = None
        self._batches = 0
        self._latencies: List[float] = []
        self._seq = itertools.count(1)
        self._recovery = {"restored": 0, "requeued": 0, "skipped": 0,
                          "swept_tmp": 0, "pruned": 0}

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Spin up the worker pool, dispatcher and watchdog
        (idempotent)."""

        if self._pool is not None:
            return
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve",
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch",
            daemon=True,
        )
        self._dispatcher.start()
        if self.watchdog_s is not None:
            self._watchdog = threading.Thread(
                target=self._watchdog_loop, name="repro-serve-watchdog",
                daemon=True,
            )
            self._watchdog.start()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def drain(self, timeout_s: float = 10.0) -> Dict[str, Any]:
        """Graceful wind-down: stop accepting, stop dispatching, and
        bring every in-flight job to a journaled stopping point.

        Running jobs are asked to stop at their next checkpoint
        boundary; each journals a final ``queued`` record carrying its
        freshest resume envelope and re-enters (in-memory) ``queued``
        state, so a restart on the same state dir requeues and
        finishes it **bit-identically** to a never-stopped run.  Jobs
        still waiting in the queue keep the ``queued`` record they
        were journaled with at submission.  Returns drain stats
        (``clean`` is False if a job missed the timeout).
        """

        started = time.monotonic()
        self._draining.set()
        self._stop.set()
        self._inbox.put(None)
        with self._lock:
            running = [job for job in self._jobs.values()
                       if job.status == RUNNING]
            queued = [job for job in self._jobs.values()
                      if job.status == QUEUED]
        for job in running:
            job.abort("drain")
        deadline = started + timeout_s
        clean = True
        for job in running:
            while job.status == RUNNING:
                if time.monotonic() > deadline:
                    clean = False
                    break
                time.sleep(0.005)
        if self._dispatcher is not None:
            self._dispatcher.join(
                timeout=max(0.1, deadline - time.monotonic()))
            clean = clean and not self._dispatcher.is_alive()
        drained = sum(1 for job in running if job.status == QUEUED)
        return {
            "drained": drained,
            "queued": len(queued),
            "terminal": sum(1 for job in running if job.done),
            "clean": clean,
            "seconds": time.monotonic() - started,
        }

    def shutdown(self, wait: bool = False) -> bool:
        """Stop dispatching; optionally wait for in-flight jobs.

        Returns ``True`` for a clean stop.  A dispatcher thread that
        fails to exit within the join timeout is a hang: health is
        degraded and ``False`` comes back so the daemon can exit
        nonzero and get itself restarted by a supervisor.
        """

        self._stop.set()
        self._inbox.put(None)
        clean = True
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=5)
            if self._dispatcher.is_alive():
                self.health.dispatcher_dead()
                clean = False
        if self._watchdog is not None:
            self._watchdog.join(timeout=5)
            clean = clean and not self._watchdog.is_alive()
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
        return clean

    # -- recovery ------------------------------------------------------
    def recover(self) -> Dict[str, int]:
        """Replay the journal into the manager (call before
        :meth:`start`).

        Terminal records re-register as finished jobs and re-seed the
        result cache; non-terminal records re-enter the queue, warm-
        started from their last journaled checkpoint when one was
        captured (otherwise the deterministic cold rerun *is* the
        uninterrupted run).  Stale ``*.tmp.<pid>`` leftovers of
        crashed atomic writes are swept first, and unreadable/foreign
        journal files are counted, not silently skipped.  When
        ``journal_retain`` is set, the journal is compacted: only the
        newest ``N`` terminal-job files survive on disk (the in-memory
        jobs are all kept — only their crash-recovery records go).
        Returns ``{"restored", "requeued", "skipped", "swept_tmp",
        "pruned"}``.
        """

        restored = requeued = 0
        swept = self.journal.sweep_stale_tmp()
        max_seq = 0
        terminal_ids: List[str] = []
        with self._lock:
            for job_id, record in self.journal.replay():
                try:
                    seq = int(job_id.split("-")[1])
                except (IndexError, ValueError):
                    seq = 0
                max_seq = max(max_seq, seq)
                job = Job(id=job_id, spec=record["spec"],
                          status=record["status"],
                          rounds=record.get("rounds", 0),
                          result=record.get("result"),
                          error=record.get("error"),
                          recovered=True)
                self._jobs[job_id] = job
                self._order.append(job_id)
                if job.done:
                    deterministic = (
                        job.result is not None
                        and not (job.result.get("status") == TRUNCATED
                                 and job.spec.get("time_budget_s")
                                 is not None)
                    )
                    if deterministic:
                        self.cache.put(spec_cache_key(job.spec),
                                       job.result)
                    restored += 1
                    terminal_ids.append(job_id)
                    continue
                envelope = record.get("envelope")
                if isinstance(envelope, dict):
                    job.warm_payload = envelope.get("payload")
                job.status = QUEUED
                self._inbox.put(job_id)
                requeued += 1
            self._seq = itertools.count(max_seq + 1)
        pruned = 0
        if self.journal_retain is not None:
            # Replay order is job-id order, so the front of the list is
            # the oldest terminal work: compact those files first.
            excess = len(terminal_ids) - self.journal_retain
            for job_id in terminal_ids[:max(0, excess)]:
                self.journal.remove(job_id)
                pruned += 1
        stats = {"restored": restored, "requeued": requeued,
                 "skipped": self.journal.last_skipped,
                 "swept_tmp": swept, "pruned": pruned}
        self._recovery = stats
        return stats

    # -- submission ----------------------------------------------------
    def submit(self, body: Any) -> Job:
        """Validate a spec and enqueue (or instantly serve) its job.

        Raises :class:`~repro.serve.protocol.SpecError` on a bad spec
        and :class:`DrainingError` once :meth:`drain` has begun.  A
        result-cache hit never queues: the job is born terminal with
        the cached record.
        """

        if self._draining.is_set():
            raise DrainingError("service is draining; not accepting jobs")
        spec = validate_spec(body)
        key = spec_cache_key(spec)
        cached = self.cache.get(key)
        with self._lock:
            job_id = f"job-{next(self._seq):06d}-{key.split(':')[0]}"
            job = Job(id=job_id, spec=spec)
            self._jobs[job_id] = job
            self._order.append(job_id)
            if cached is not None:
                job.status = cached["status"]
                job.result = cached
                job.rounds = cached["rounds"]
                job.cache_hit = True
                job.seconds = 0.0
                self._journal_terminal(job)
                return job
            self._journal_running(job, payload=None)
        self._inbox.put(job_id)
        return job

    # -- views ---------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def stats(self) -> Dict[str, Any]:
        """The ``GET /stats`` payload (and the load/faults
        experiments' raw material): job/queue/cache/latency/round
        counters plus health, retry and recovery observability."""

        from ..experiments.runner import percentile

        with self._lock:
            by_status = {status: 0 for status in STATUSES}
            rounds = checkpoints = retries = 0
            for job in self._jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
                rounds += job.rounds
                checkpoints += job.checkpoints
                retries += max(0, job.attempts - 1)
            latencies = list(self._latencies)
            batches = self._batches
            total = len(self._jobs)
        latency = {"count": len(latencies), "p50_ms": 0.0, "p95_ms": 0.0}
        if latencies:
            latency["p50_ms"] = percentile(latencies, 50.0) * 1000.0
            latency["p95_ms"] = percentile(latencies, 95.0) * 1000.0
        return {
            "jobs": {"total": total, "by_status": by_status},
            "queue_depth": by_status[QUEUED],
            "batches_active": batches,
            "workers": self.workers,
            "cache": self.cache.stats(),
            "latency": latency,
            "rounds_total": rounds,
            "checkpoints_total": checkpoints,
            "retries_total": retries,
            "health": self.health.snapshot(),
            "recovery": dict(self._recovery),
            "journal_errors": self.journal.errors,
            "draining": self._draining.is_set(),
        }

    # -- journaling ----------------------------------------------------
    def _journal_running(self, job: Job,
                         payload: Optional[Dict[str, Any]]) -> None:
        self.journal.write(job_record(
            job.id, job.spec, job.status, rounds=job.rounds,
            payload=payload,
        ))

    def _journal_terminal(self, job: Job) -> None:
        payload = None
        if job.result is not None:
            payload = job.result.get("resume")
        self.journal.write(job_record(
            job.id, job.spec, job.status, rounds=job.rounds,
            payload=payload, result=job.result, error=job.error,
        ))

    # -- dispatch ------------------------------------------------------
    def _dispatch_loop(self) -> None:
        """Drain submissions into batches; each batch fans out through
        :func:`execute_indexed` on the shared pool (its own thread, so
        a slow batch never blocks the next one).

        A dispatcher crash (real, or the ``dispatcher.death`` fault
        site) must not be invisible: the exception degrades health, so
        ``/healthz`` turns 503 while queued jobs — still journaled —
        wait for the restart that recovers them.
        """

        try:
            while not self._stop.is_set():
                try:
                    first = self._inbox.get(timeout=0.05)
                except queue.Empty:
                    continue
                if first is None:
                    break
                batch = [first]
                while True:
                    try:
                        item = self._inbox.get_nowait()
                    except queue.Empty:
                        break
                    if item is None:
                        self._stop.set()
                        break
                    batch.append(item)
                if self.faults is not None:
                    self.faults.maybe_raise("dispatcher.death",
                                            scope="dispatch")
                with self._lock:
                    self._batches += 1
                threading.Thread(
                    target=self._run_batch, args=(batch,),
                    name="repro-serve-batch", daemon=True,
                ).start()
        except Exception:  # noqa: BLE001 — dying loudly, not silently
            self.health.dispatcher_dead()

    def _run_batch(self, batch: List[str]) -> None:
        try:
            execute_indexed(self._execute_task, batch,
                            executor=self._pool, workers=self.workers)
        finally:
            with self._lock:
                self._batches -= 1

    # -- watchdog ------------------------------------------------------
    def _watchdog_loop(self) -> None:
        """Convert stalled jobs into certified ``truncated`` partials.

        A running job whose last progress beat is older than
        ``watchdog_s`` is aborted cooperatively *and* finished
        externally from its best certified checkpoint — so even a
        phase the runner cannot interrupt yields a valid partial
        result instead of hanging the client forever (the abandoned
        worker thread's late result is discarded by the finish guard).
        """

        interval = min(0.05, self.watchdog_s / 4.0)
        while not self._stop.wait(interval):
            now = time.monotonic()
            with self._lock:
                stalled = [
                    job for job in self._jobs.values()
                    if job.status == RUNNING
                    and job.last_beat is not None
                    and now - job.last_beat > self.watchdog_s
                ]
            for job in stalled:
                job.abort("watchdog")
                record = truncated_result_record(
                    job.spec, job.best_checkpoint, job.warm_payload,
                    job.spec["workload"]["problem"],
                )
                # Watchdog records are timing-dependent (where the
                # stall hit): never cache them.
                self._finish(job, record, seconds=0.0, cacheable=False)

    # -- execution -----------------------------------------------------
    def _execute_task(self, job_id: str) -> str:
        """Worker body for one job: bounded retries around
        :meth:`_execute` (exceptions land on the job, not the batch —
        belt to ``execute_indexed``'s braces)."""

        job = self.get(job_id)
        if job is None or job.done:
            return job_id
        if self._draining.is_set():
            # Never started: the submit-time ``queued`` journal record
            # already describes this job for the restart to pick up.
            return job_id
        max_attempts = (self.retry.max_attempts
                        if self.retry is not None else 1)
        for attempt in range(1, max_attempts + 1):
            try:
                self._execute(job, attempt)
                return job_id
            except Exception as exc:  # noqa: BLE001 — jobs must not sink pool
                self.health.worker_crash()
                error = f"{type(exc).__name__}: {exc}"
                with self._lock:
                    job.attempts = attempt
                    job.attempt_errors.append(error)
                    job.error = error
                retryable = (self.retry is not None
                             and self.retry.retryable(exc)
                             and attempt < max_attempts)
                if retryable:
                    # Deterministically jittered backoff, interruptible
                    # by drain/watchdog.
                    aborted = job.abort_event.wait(
                        self.retry.delay(attempt, key=job.id))
                    if aborted and job.abort_reason == "drain":
                        self._drain_requeue(job, job.warm_payload)
                        return job_id
                    continue
                # Journal before flipping the status: the moment a
                # poller sees the job terminal, the journal agrees.
                self.journal.write(job_record(
                    job.id, job.spec, FAILED, rounds=job.rounds,
                    error=job.error,
                ))
                with self._lock:
                    job.status = FAILED
                return job_id
        return job_id

    def _execute(self, job: Job, attempt: int = 1) -> None:
        """Drive one job's checkpoint stream to a terminal record."""

        spec = job.spec
        with self._lock:
            job.status = RUNNING
            job.attempts = attempt
            job.beat()
        if self.faults is not None:
            self.faults.maybe_raise("worker.transient",
                                    scope=f"{job.id}:a{attempt}")
        self._journal_running(job, payload=job.warm_payload)
        problem = spec["workload"]["problem"]
        instance = instance_from_workload(
            spec["workload"], max_rounds=spec["max_rounds"],
        )
        deadline = None
        if spec["time_budget_s"] is not None:
            deadline = time.monotonic() + spec["time_budget_s"]
        started = time.perf_counter()
        stream = solve_iter(instance, spec["algorithm"], problem=problem,
                            warm_start=job.warm_payload,
                            **spec["options"])
        best = job.best_checkpoint
        last_payload = job.warm_payload
        report = None
        while True:
            try:
                checkpoint = next(stream)
            except StopIteration as stop:
                report = stop.value
                break
            with self._lock:
                if job.done:
                    # The watchdog finished this job externally while a
                    # phase ran long; the late stream is abandoned.
                    stream.close()
                    return
                job.checkpoints += 1
                job.rounds = checkpoint.rounds
                job.latest = _checkpoint_record(checkpoint)
                job.beat()
            if checkpoint.valid:
                best = checkpoint
                job.best_checkpoint = checkpoint
                if checkpoint.resume_state is not None:
                    last_payload = checkpoint.resume_state
                    # Crash safety: the journal always holds the
                    # newest resumable boundary — and a retried or
                    # drained attempt warm-starts from it.
                    job.warm_payload = last_payload
                    self._journal_running(job, payload=last_payload)
            if self.faults is not None and self.faults.roll(
                    "worker.stall", scope=f"{job.id}:c{job.checkpoints}"):
                # The stall waits on the abort event, so watchdog and
                # drain can cut it short.
                job.abort_event.wait(
                    self.faults.rule("worker.stall").stall_s)
            if self.phase_delay_s:
                job.abort_event.wait(self.phase_delay_s)
            if job.abort_event.is_set():
                stream.close()
                if job.abort_reason == "drain":
                    self._drain_requeue(job, last_payload)
                    return
                # Watchdog abort: adopt the best certified checkpoint
                # (the watchdog usually beat us to _finish; the guard
                # makes the second call a no-op).
                record = truncated_result_record(
                    spec, best, last_payload, problem,
                )
                self._finish(job, record,
                             time.perf_counter() - started,
                             cacheable=False)
                return
            if deadline is not None and time.monotonic() >= deadline:
                # SLA truncation: stop the run cooperatively and adopt
                # the best certified checkpoint the deadline admitted.
                stream.close()
                record = truncated_result_record(
                    spec, best, last_payload, problem,
                )
                # Where a wall-clock deadline lands is timing-dependent,
                # so the record is not deterministic — keep it out of
                # the cache (whose key deliberately ignores the wall
                # budget).
                self._finish(job, record, time.perf_counter() - started,
                             cacheable=False)
                return
        record = result_record(report)
        self._finish(job, record, time.perf_counter() - started)

    def _drain_requeue(self, job: Job,
                       payload: Optional[Dict[str, Any]]) -> None:
        """Wind one running job down for drain: journal a final
        non-terminal record with its freshest resume envelope, then
        park it back in ``queued`` so restart recovery resumes it."""

        if payload is None:
            payload = job.warm_payload
        self.journal.write(job_record(
            job.id, job.spec, QUEUED, rounds=job.rounds,
            payload=payload,
        ))
        with self._lock:
            job.warm_payload = payload
            job.status = QUEUED

    def _finish(self, job: Job, record: Dict[str, Any],
                seconds: float, cacheable: bool = True) -> bool:
        with self._lock:
            if job.done or job.finishing:
                return False
            job.finishing = True
        if cacheable:
            self.cache.put(spec_cache_key(job.spec), record)
        with self._lock:
            job.result = record
            job.rounds = record["rounds"]
            job.seconds = seconds
            if job.attempts == 0:
                job.attempts = 1
            self._latencies.append(seconds)
        # Journal before flipping the status: the status change is the
        # commit point pollers observe, so once ``job.done`` is true the
        # terminal record is already durable.
        self.journal.write(job_record(
            job.id, job.spec, record["status"], rounds=record["rounds"],
            payload=record.get("resume"), result=record, error=job.error,
        ))
        with self._lock:
            job.status = record["status"]
        return True


__all__ = ["DrainingError", "Job", "JobManager", "COMPLETE", "FAILED",
           "QUEUED", "RUNNING", "STATUSES", "TRUNCATED"]
