"""Crash-safe per-job journal for the solver service.

Every job owns one JSON file under ``--state-dir``, rewritten at each
checkpoint through the shared atomic-write helper
(:func:`repro.api.persist.write_envelope`: temp file + ``os.replace``
+ fsync), so a ``kill -9`` at any instant leaves either the previous
or the next complete record on disk — never a torn one.

A journal record wraps the CLI's resume-file envelope (the workload
recipe + the facade's resume payload) with the job's service-level
identity::

    {
      "format": "repro-serve-job/1",
      "job_id": "job-000001-<fingerprint>",
      "spec": { ...the submitted spec, verbatim... },
      "status": "running" | "complete" | "truncated" | "failed",
      "rounds": <rounds consumed at the last checkpoint>,
      "envelope": { ...repro-resume-file/1... } | null,
      "result": { ...terminal result record... } | null,
      "error": <string> | null
    }

On restart the daemon replays the directory: terminal records are
re-registered (and re-seed the result cache); non-terminal records are
re-queued, warm-started from their envelope when one was captured —
the resume contract then makes the finished job bit-identical to the
uninterrupted run.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, Optional, Tuple

from ..api.persist import resume_envelope, write_envelope

#: Self-describing marker of the journal record format.
JOB_FILE_FORMAT = "repro-serve-job/1"

#: Statuses after which a job never runs again.
TERMINAL_STATUSES = ("complete", "truncated", "failed")


def job_record(job_id: str, spec: Dict[str, Any], status: str,
               rounds: int = 0,
               payload: Optional[Dict[str, Any]] = None,
               result: Optional[Dict[str, Any]] = None,
               error: Optional[str] = None) -> Dict[str, Any]:
    """Assemble one journal record (the resume payload is wrapped into
    the shared CLI envelope so either entry point can consume it)."""

    envelope = None
    if payload is not None:
        envelope = resume_envelope(spec["workload"], payload)
    return {
        "format": JOB_FILE_FORMAT,
        "job_id": job_id,
        "spec": spec,
        "status": status,
        "rounds": rounds,
        "envelope": envelope,
        "result": result,
        "error": error,
    }


class Journal:
    """The state directory: one atomic JSON file per job."""

    def __init__(self, state_dir: Optional[str]):
        self.state_dir = state_dir
        if state_dir is not None:
            os.makedirs(state_dir, exist_ok=True)

    @property
    def enabled(self) -> bool:
        """Whether persistence is on (``--state-dir`` was passed)."""

        return self.state_dir is not None

    def path(self, job_id: str) -> str:
        return os.path.join(self.state_dir, f"{job_id}.json")

    def write(self, record: Dict[str, Any]) -> None:
        """Atomically persist one job record (no-op when disabled)."""

        if not self.enabled:
            return
        write_envelope(self.path(record["job_id"]), record)

    def remove(self, job_id: str) -> None:
        """Forget one job (no-op when disabled or already gone)."""

        if not self.enabled:
            return
        try:
            os.remove(self.path(job_id))
        except OSError:
            pass

    def replay(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Yield ``(job_id, record)`` for every well-formed journal
        file, in job-id order (deterministic recovery order).

        Unreadable or foreign files are skipped — a half-written temp
        file left by a crash must not poison the restart.
        """

        if not self.enabled:
            return
        try:
            names = sorted(os.listdir(self.state_dir))
        except OSError:
            return
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(self.state_dir, name),
                          encoding="utf-8") as handle:
                    record = json.load(handle)
            except (OSError, ValueError):
                continue
            if (not isinstance(record, dict)
                    or record.get("format") != JOB_FILE_FORMAT
                    or not isinstance(record.get("job_id"), str)
                    or not isinstance(record.get("spec"), dict)):
                continue
            yield record["job_id"], record


__all__ = ["JOB_FILE_FORMAT", "TERMINAL_STATUSES", "Journal",
           "job_record"]
