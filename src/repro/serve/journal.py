"""Crash-safe per-job journal for the solver service.

Every job owns one JSON file under ``--state-dir``, rewritten at each
checkpoint through the shared atomic-write helper
(:func:`repro.api.persist.write_envelope`: temp file + ``os.replace``
+ fsync), so a ``kill -9`` at any instant leaves either the previous
or the next complete record on disk — never a torn one.

A journal record wraps the CLI's resume-file envelope (the workload
recipe + the facade's resume payload) with the job's service-level
identity::

    {
      "format": "repro-serve-job/1",
      "job_id": "job-000001-<fingerprint>",
      "spec": { ...the submitted spec, verbatim... },
      "status": "running" | "queued" | "complete" | "truncated"
                | "failed",
      "rounds": <rounds consumed at the last checkpoint>,
      "envelope": { ...repro-resume-file/1... } | null,
      "result": { ...terminal result record... } | null,
      "error": <string> | null
    }

On restart the daemon replays the directory: terminal records are
re-registered (and re-seed the result cache); non-terminal records are
re-queued, warm-started from their envelope when one was captured —
the resume contract then makes the finished job bit-identical to the
uninterrupted run.

Failure routing: a journal I/O error is *reported*, never swallowed
and never fatal to the job.  Write/remove failures land on the
:class:`~repro.serve.health.HealthMonitor` the manager wires in, which
flips ``/healthz`` to ``degraded`` after persistent failure; the job
itself keeps running on in-memory state (best-effort persistence,
loud).  ``replay`` counts unreadable/foreign files instead of silently
skipping them, and :meth:`sweep_stale_tmp` clears the ``*.tmp.<pid>``
leftovers a crash mid-atomic-write leaves behind.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, Optional, Tuple

from ..api.persist import resume_envelope, write_envelope

#: Self-describing marker of the journal record format.
JOB_FILE_FORMAT = "repro-serve-job/1"

#: Statuses after which a job never runs again.
TERMINAL_STATUSES = ("complete", "truncated", "failed")


def job_record(job_id: str, spec: Dict[str, Any], status: str,
               rounds: int = 0,
               payload: Optional[Dict[str, Any]] = None,
               result: Optional[Dict[str, Any]] = None,
               error: Optional[str] = None) -> Dict[str, Any]:
    """Assemble one journal record (the resume payload is wrapped into
    the shared CLI envelope so either entry point can consume it)."""

    envelope = None
    if payload is not None:
        envelope = resume_envelope(spec["workload"], payload)
    return {
        "format": JOB_FILE_FORMAT,
        "job_id": job_id,
        "spec": spec,
        "status": status,
        "rounds": rounds,
        "envelope": envelope,
        "result": result,
        "error": error,
    }


class Journal:
    """The state directory: one atomic JSON file per job.

    ``health`` is the degraded-health sink for I/O errors (optional —
    standalone journals just count them); ``fault_plan`` arms the
    ``journal.write`` / ``journal.tmp`` injection sites.
    """

    def __init__(self, state_dir: Optional[str], health=None,
                 fault_plan=None):
        self.state_dir = state_dir
        self.health = health
        self.fault_plan = fault_plan
        #: Unreadable/foreign files seen by the most recent `replay`.
        self.last_skipped = 0
        #: Journal I/O errors observed over this journal's lifetime.
        self.errors = 0
        if state_dir is not None:
            os.makedirs(state_dir, exist_ok=True)

    @property
    def enabled(self) -> bool:
        """Whether persistence is on (``--state-dir`` was passed)."""

        return self.state_dir is not None

    def path(self, job_id: str) -> str:
        return os.path.join(self.state_dir, f"{job_id}.json")

    def _report_error(self, exc: BaseException) -> None:
        self.errors += 1
        if self.health is not None:
            self.health.journal_error(exc)

    def write(self, record: Dict[str, Any]) -> bool:
        """Atomically persist one job record (no-op when disabled).

        Returns whether the record is durable.  An ``OSError`` (real
        or injected) is routed to the health monitor and degrades the
        service instead of killing the job: the run continues on
        in-memory state and the *next* successful write restores
        health.
        """

        if not self.enabled:
            return False
        path = self.path(record["job_id"])
        try:
            if self.fault_plan is not None:
                if self.fault_plan.roll("journal.tmp",
                                        scope=record["job_id"]):
                    # A simulated crash between temp-write and replace:
                    # the stale file recovery must sweep.
                    with open(f"{path}.tmp.99999", "w",
                              encoding="utf-8") as handle:
                        handle.write('{"torn": ')
                self.fault_plan.maybe_raise("journal.write",
                                            scope=record["job_id"])
            write_envelope(path, record)
        except OSError as exc:
            self._report_error(exc)
            return False
        if self.health is not None:
            self.health.journal_ok()
        return True

    def remove(self, job_id: str) -> None:
        """Forget one job (no-op when disabled or already gone).

        Only ``FileNotFoundError`` is expected; any other ``OSError``
        (permissions, I/O) is a persistence defect and degrades
        health like a failed write.
        """

        if not self.enabled:
            return
        try:
            os.remove(self.path(job_id))
        except FileNotFoundError:
            pass
        except OSError as exc:
            self._report_error(exc)

    def sweep_stale_tmp(self) -> int:
        """Delete ``*.json.tmp.<pid>`` leftovers of crashed atomic
        writes (run during recovery, before replay).  Returns the
        number swept."""

        if not self.enabled:
            return 0
        swept = 0
        try:
            names = os.listdir(self.state_dir)
        except OSError as exc:
            self._report_error(exc)
            return 0
        for name in names:
            if ".json.tmp." not in name:
                continue
            try:
                os.remove(os.path.join(self.state_dir, name))
                swept += 1
            except FileNotFoundError:
                pass
            except OSError as exc:
                self._report_error(exc)
        return swept

    def replay(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Yield ``(job_id, record)`` for every well-formed journal
        file, in job-id order (deterministic recovery order).

        Unreadable or foreign files must not poison the restart, but
        they are no longer invisible either: the count lands in
        :attr:`last_skipped`, which ``recover()`` surfaces in its
        stats and ``/stats`` reports.
        """

        self.last_skipped = 0
        if not self.enabled:
            return
        try:
            names = sorted(os.listdir(self.state_dir))
        except OSError as exc:
            self._report_error(exc)
            return
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(self.state_dir, name),
                          encoding="utf-8") as handle:
                    record = json.load(handle)
            except (OSError, ValueError):
                self.last_skipped += 1
                continue
            if (not isinstance(record, dict)
                    or record.get("format") != JOB_FILE_FORMAT
                    or not isinstance(record.get("job_id"), str)
                    or not isinstance(record.get("spec"), dict)):
                self.last_skipped += 1
                continue
            yield record["job_id"], record


__all__ = ["JOB_FILE_FORMAT", "TERMINAL_STATUSES", "Journal",
           "job_record"]
