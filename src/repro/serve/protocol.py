"""Wire shapes of the solver service: specs in, records out.

A *spec* is the body of ``POST /jobs`` — the deterministic workload
recipe the CLI already uses (so a journaled job and a
``--save-state`` file describe instances the same way) plus the
algorithm, optional SLA budgets and solve options::

    {
      "workload": {"problem": "matching", "nodes": 60,
                   "edge_probability": 0.12, "max_weight": 64,
                   "seed": 7, "eps": 0.5},
      "algorithm": "matching-oneeps-congest",
      "max_rounds": 24,          # optional hard round budget
      "time_budget_s": 0.25,     # optional wall-clock budget (seconds)
      "options": {"k": 2.0}      # optional solve() keywords
    }

Budget mapping: ``max_rounds`` becomes ``Instance.max_rounds`` (the
anytime protocol's cooperative budget — this is also what arms
checkpoint state capture, so only round-budgeted jobs journal mid-run
resume payloads); ``time_budget_s`` is enforced by the job runner
between phase checkpoints, closing the stream and adopting the best
certified partial solution when the deadline passes.  Either budget
exhausting yields ``status="truncated"`` instead of an error.

Result records are deliberately wall-clock-free: two runs of the same
spec — interrupted or not — must produce byte-identical records under
``canonical_json``, which is the bit-identity the kill-and-restart
tests compare.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from ..api import get_algorithm, instance_fingerprint
from ..api.persist import WORKLOAD_KEYS, instance_from_workload

#: Defaults merged into a submitted workload recipe (matching the CLI
#: flag defaults, so a minimal spec is ``{"problem", "nodes"}``).
WORKLOAD_DEFAULTS = {
    "edge_probability": 0.12,
    "max_weight": 64,
    "seed": 0,
    "eps": 0.5,
}


class SpecError(ValueError):
    """A malformed job spec (the HTTP layer maps it to 400)."""


def validate_spec(body: Any) -> Dict[str, Any]:
    """Normalize and validate one submitted spec.

    Returns the canonical spec dict (workload defaults filled in,
    algorithm resolved to its registry name) or raises
    :class:`SpecError` with a client-presentable message.
    """

    if not isinstance(body, dict):
        raise SpecError("job spec must be a JSON object")
    workload = body.get("workload")
    if not isinstance(workload, dict):
        raise SpecError('spec needs a "workload" object '
                        '(problem/nodes/... recipe)')
    unknown = set(workload) - set(WORKLOAD_KEYS)
    if unknown:
        raise SpecError(f"unknown workload keys: {sorted(unknown)} "
                        f"(expected a subset of {list(WORKLOAD_KEYS)})")
    merged = {**WORKLOAD_DEFAULTS, **workload}
    missing = [key for key in WORKLOAD_KEYS if key not in merged]
    if missing:
        raise SpecError(f"workload is missing {missing}")
    if merged["problem"] not in ("maxis", "matching", "mis"):
        raise SpecError(f"unknown problem {merged['problem']!r}")
    if not isinstance(merged["nodes"], int) or merged["nodes"] < 0:
        raise SpecError('"nodes" must be a non-negative integer')
    algorithm = body.get("algorithm")
    if not isinstance(algorithm, str):
        raise SpecError('spec needs an "algorithm" registry name '
                        "(see python -m repro info --json)")
    try:
        spec = get_algorithm(algorithm, problem=merged["problem"])
    except KeyError as exc:
        message = exc.args[0] if exc.args else str(exc)
        raise SpecError(str(message)) from exc
    max_rounds = body.get("max_rounds")
    if max_rounds is not None and (
            not isinstance(max_rounds, int) or max_rounds < 0):
        raise SpecError('"max_rounds" must be a non-negative integer')
    time_budget = body.get("time_budget_s")
    if time_budget is not None and (
            not isinstance(time_budget, (int, float)) or time_budget < 0):
        raise SpecError('"time_budget_s" must be a non-negative number')
    options = body.get("options") or {}
    if not isinstance(options, dict) or not all(
            isinstance(key, str) for key in options):
        raise SpecError('"options" must be an object of keyword '
                        "arguments")
    extra = set(body) - {"workload", "algorithm", "max_rounds",
                         "time_budget_s", "options"}
    if extra:
        raise SpecError(f"unknown spec keys: {sorted(extra)}")
    return {
        "workload": {key: merged[key] for key in WORKLOAD_KEYS},
        "algorithm": spec.name,
        "max_rounds": max_rounds,
        "time_budget_s": time_budget,
        "options": dict(sorted(options.items())),
    }


def spec_cache_key(spec: Dict[str, Any]) -> str:
    """The result-cache identity of a spec.

    Built on the *instance fingerprint* (which covers the rebuilt
    graph, seed, ε and the round budget) plus the algorithm and option
    set.  The wall-clock budget is deliberately excluded — it cannot
    change a deterministic result, only whether one is reached — so a
    generous-deadline hit can serve a tight-deadline request.
    """

    instance = instance_from_workload(spec["workload"],
                                      max_rounds=spec["max_rounds"])
    options = json.dumps(spec["options"], sort_keys=True)
    return f"{instance_fingerprint(instance)}:{spec['algorithm']}:{options}"


def encode_solution(solution) -> list:
    """A solution set as deterministic JSON: nodes (or edge pairs)
    sorted by ``repr``, edges listed endpoint-sorted."""

    def _key(value):
        return repr(value)

    out = []
    for member in solution:
        if isinstance(member, frozenset):
            out.append(sorted(member, key=_key))
        else:
            out.append(member)
    out.sort(key=_key)
    return out


def result_record(report) -> Dict[str, Any]:
    """The terminal record of one solve — cached, journaled, and byte-
    compared by the crash-recovery tests (no wall-clock inside)."""

    return {
        "algorithm": report.algorithm,
        "problem": report.problem,
        "status": report.status,
        "objective": report.objective,
        "size": report.size,
        "rounds": report.rounds,
        "bound": report.bound,
        "solution": encode_solution(report.solution),
        "ledger": report.ledger_counts(),
        "resume": report.resume_state,
    }


def truncated_result_record(spec: Dict[str, Any], checkpoint,
                            payload: Optional[Dict[str, Any]],
                            problem: str) -> Dict[str, Any]:
    """The record of a wall-clock-truncated solve: the best certified
    checkpoint the deadline admitted, same shape as a full record."""

    return {
        "algorithm": spec["algorithm"],
        "problem": problem,
        "status": "truncated",
        "objective": checkpoint.objective if checkpoint else 0,
        "size": len(checkpoint.solution) if checkpoint else 0,
        "rounds": checkpoint.rounds if checkpoint else 0,
        "bound": None,
        "solution": encode_solution(
            checkpoint.solution if checkpoint else frozenset()),
        "ledger": {},
        "resume": payload,
    }


def canonical_json(record: Any) -> str:
    """The canonical byte form records are compared in."""

    return json.dumps(record, sort_keys=True, separators=(",", ":"))


__all__ = [
    "SpecError",
    "WORKLOAD_DEFAULTS",
    "canonical_json",
    "encode_solution",
    "result_record",
    "spec_cache_key",
    "truncated_result_record",
    "validate_spec",
]
