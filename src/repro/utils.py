"""Small shared utilities: stable RNG derivation and integer math helpers."""

from __future__ import annotations

import hashlib
import math
import random
from typing import Iterable


def stable_rng(seed: int, *parts) -> random.Random:
    """Return a :class:`random.Random` derived deterministically from parts.

    Python's built-in ``hash`` is salted per process for strings, so we
    derive the stream from a SHA-256 digest instead.  The same
    ``(seed, *parts)`` always yields the same stream, across processes and
    platforms, which makes every simulation in this library reproducible.
    """

    key = "|".join([str(seed)] + [repr(p) for p in parts])
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def drain(generator):
    """Consume a generator for its return value (``StopIteration.value``).

    The anytime execution layer is built on generators that yield
    per-phase snapshots and *return* the final result; every
    non-anytime entry point drains its generator twin through this one
    helper so the idiom lives in exactly one place.
    """

    while True:
        try:
            next(generator)
        except StopIteration as stop:
            return stop.value


def ilog2(x: int) -> int:
    """Return ``ceil(log2(x))`` for a positive integer, with ilog2(1) == 0."""

    if x <= 0:
        raise ValueError(f"ilog2 requires a positive integer, got {x}")
    return (x - 1).bit_length()


def log_star(x: float) -> int:
    """Return the iterated logarithm log* of ``x`` (base 2)."""

    if x <= 1:
        return 0
    count = 0
    while x > 1:
        x = math.log2(x)
        count += 1
    return count


def is_prime(n: int) -> bool:
    """Deterministic primality test, adequate for the small primes we need."""

    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    i = 3
    while i * i <= n:
        if n % i == 0:
            return False
        i += 2
    return True


def next_prime(n: int) -> int:
    """Return the smallest prime that is >= ``n``."""

    candidate = max(2, n)
    while not is_prime(candidate):
        candidate += 1
    return candidate


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean of a non-empty iterable."""

    values = list(values)
    if not values:
        raise ValueError("mean() of empty sequence")
    return sum(values) / len(values)


def geometric_layers(weight: int) -> int:
    """Return the weight layer index used by Algorithm 2.

    Layer ``i`` holds nodes with ``2^(i-1) < w <= 2^i``; equivalently the
    layer of a positive integer weight ``w`` is ``ceil(log2(w))`` with
    weight 1 mapping to layer 0.
    """

    if weight <= 0:
        raise ValueError(f"weights must be positive, got {weight}")
    return ilog2(weight)
