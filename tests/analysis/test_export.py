"""Tests for CSV/JSON experiment export."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import read_rows, rows_to_csv, rows_to_json, write_rows

ROWS = [
    {"alg": "alg2", "rounds": 12, "ratio": 1.25},
    {"alg": "alg3", "rounds": 7, "ratio": 1.08, "extra": "det"},
]


class TestCsv:
    def test_header_order_is_first_appearance(self):
        text = rows_to_csv(ROWS)
        assert text.splitlines()[0] == "alg,rounds,ratio,extra"

    def test_ragged_rows_fill_empty(self):
        lines = rows_to_csv(ROWS).splitlines()
        assert lines[1].endswith(",")  # alg2 has no 'extra'

    def test_roundtrip(self, tmp_path):
        path = write_rows(ROWS, tmp_path / "out.csv")
        back = read_rows(path)
        assert back[0]["alg"] == "alg2"
        assert back[1]["extra"] == "det"

    @given(st.lists(
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]),
            st.integers(min_value=0, max_value=99),
            min_size=1,
        ),
        min_size=1, max_size=5,
    ))
    @settings(max_examples=20, deadline=None)
    def test_property_roundtrip_counts(self, rows):
        text = rows_to_csv(rows)
        assert len(text.splitlines()) == len(rows) + 1


class TestJson:
    def test_roundtrip(self, tmp_path):
        path = write_rows(ROWS, tmp_path / "out.json")
        back = read_rows(path)
        assert back[0]["rounds"] == 12

    def test_pretty_printed(self):
        assert "\n" in rows_to_json(ROWS)


class TestWriteRows:
    def test_creates_parent_dirs(self, tmp_path):
        path = write_rows(ROWS, tmp_path / "nested" / "dir" / "x.csv")
        assert path.exists()

    def test_unknown_suffix_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_rows(ROWS, tmp_path / "out.xml")
        with pytest.raises(ValueError):
            read_rows(tmp_path / "out.xml")
