"""Tests for the experiment statistics helpers."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    approximation_ratio,
    empirical_rate,
    growth_exponent,
    pearson,
    summarize,
)


class TestSummarize:
    def test_basic(self):
        s = summarize([1, 2, 3, 4])
        assert s.mean == 2.5
        assert s.minimum == 1 and s.maximum == 4
        assert s.n == 4

    def test_single_value_has_zero_ci(self):
        s = summarize([5])
        assert s.ci95 == 0.0
        assert s.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1,
                    max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_mean_within_bounds(self, values):
        s = summarize(values)
        assert s.minimum - 1e-9 <= s.mean <= s.maximum + 1e-9


class TestApproximationRatio:
    def test_ratio_is_opt_over_found(self):
        assert approximation_ratio(10, 5) == 2.0

    def test_perfect_solution(self):
        assert approximation_ratio(7, 7) == 1.0

    def test_empty_optimum(self):
        assert approximation_ratio(0, 0) == 1.0

    def test_zero_found_is_infinite(self):
        assert math.isinf(approximation_ratio(5, 0))


class TestRatesAndShapes:
    def test_empirical_rate(self):
        assert empirical_rate([True, False, True, False]) == 0.5
        assert empirical_rate([]) == 0.0

    def test_growth_exponent_linear(self):
        xs = [1, 2, 4, 8, 16]
        ys = [3 * x for x in xs]
        assert growth_exponent(xs, ys) == pytest.approx(1.0)

    def test_growth_exponent_quadratic(self):
        xs = [1, 2, 4, 8]
        ys = [x * x for x in xs]
        assert growth_exponent(xs, ys) == pytest.approx(2.0)

    def test_growth_exponent_flat(self):
        assert growth_exponent([1, 2, 4], [5, 5, 5]) == pytest.approx(0.0)

    def test_pearson_perfect(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_pearson_inverse(self):
        assert pearson([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)

    def test_pearson_needs_two_points(self):
        with pytest.raises(ValueError):
            pearson([1], [2])
