"""Tests for ASCII table/series rendering."""

from repro.analysis import render_series, render_table


class TestRenderTable:
    def test_renders_rows_and_header(self):
        rows = [{"alg": "alg2", "rounds": 12}, {"alg": "alg3", "rounds": 7}]
        out = render_table(rows, title="Table 1")
        assert "Table 1" in out
        assert "alg2" in out and "alg3" in out
        assert "rounds" in out

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        out = render_table(rows, columns=["b"])
        assert "b" in out and "a" not in out.splitlines()[0]

    def test_empty(self):
        assert render_table([]) == "(empty table)"

    def test_floats_formatted(self):
        out = render_table([{"x": 1.23456}])
        assert "1.235" in out


class TestRenderSeries:
    def test_bars_scale(self):
        out = render_series([1, 2], [1, 10], title="decay")
        lines = out.splitlines()
        assert lines[0] == "decay"
        assert lines[2].count("#") > lines[1].count("#")

    def test_zero_series(self):
        out = render_series([1], [0])
        assert "#" not in out
